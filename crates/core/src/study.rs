//! The ask–tell study state machine.
//!
//! [`Study`] factors the single-GPU optimization loop of
//! [`crate::executor`] into an explicit state machine with no embedded
//! objective call: [`Study::ask`] plans proposals and hands out **leased**
//! candidate batches, the caller evaluates them however it likes (inline,
//! on worker threads, on another machine), and [`Study::tell`] ingests the
//! observations and commits samples to the trace. The committed trace is
//! **byte-identical** to the embedded loop's — `crate::executor` itself now
//! drives a `Study` — which is what lets a serving layer
//! (`hyperpower-server`) host many concurrent studies, lose workers,
//! receive duplicated or reordered tells, and crash-restart without ever
//! perturbing a single trace byte.
//!
//! # Why leases keep the trace exact
//!
//! Evaluation is a pure function of `(decoded, eval_seed)`, and the eval
//! seed is derived from the proposal's trace slot alone
//! (`seed × SEED_MIX + query`). So *who* evaluates a candidate, *when* the
//! result arrives, and *how many times* the work is re-issued after a lost
//! worker are all unobservable in the trace. A lease records one issuance
//! of a candidate to a worker, with a deadline on the **caller's scheduler
//! clock** (never the study's virtual trace clock):
//!
//! * expiry ([`Study::reclaim_expired`]) returns the candidate to the pool;
//!   the next [`Study::ask`] re-issues it under a fresh lease with the
//!   attempt count bumped and the deadline grown by the PR 4 retry/backoff
//!   machinery ([`RetryPolicy::backoff_secs`] with a seeded jitter draw in
//!   the `FaultPlan` style);
//! * a tell against an expired lease is rejected with the typed
//!   [`Error::LeaseExpired`] and leaves every byte of state untouched;
//! * a duplicate tell (same lease, already ingested) is absorbed as
//!   [`TellOutcome::Duplicate`];
//! * out-of-order tells are buffered on their planned slot and commit only
//!   when every earlier proposal has committed — commits happen in strict
//!   proposal order, exactly like the embedded loop.
//!
//! # Commit discipline
//!
//! All clock advances and sensor reads happen at *commit* points, in
//! proposal order, so the trace is a pure function of the committed prefix
//! — the same scheme DESIGN.md §5a proves for the executor. Budgets are
//! re-checked before every commit; a budget hit discards the planned tail
//! unseen (its RNG consumption is unobservable) and voids its leases as
//! [`TellOutcome::Discarded`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use hyperpower_gpu_sim::{FaultPlan, FaultProfile, Gpu, TrainingCostModel, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::CheckpointSink;
use crate::constraints::ConstraintOracle;
use crate::drift::{DriftConfig, DriftMonitor};
use crate::driver::{Budget, Sample, SampleKind, Trace, MAX_CONSECUTIVE_REJECTIONS};
use crate::methods::{make_searcher, Conditioning, History, Searcher};
use crate::objective::EvaluationResult;
use crate::recovery::{plan_trial, RetryPolicy, TrialFailure, TrialOutcome, LIAR_ERROR};
use crate::space::Decoded;
use crate::{Budgets, Config, EarlyTermination, Error, Method, Mode, Result, SearchSpace, Watts};

/// The multiplier in the per-candidate seed derivation
/// `eval_seed = seed × SEED_MIX + query_index` (golden-ratio mixing
/// constant; the same derivation the sequential driver has always used).
pub(crate) const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt for the lease-deadline jitter stream (disjoint from the fault
/// salts `0xFA17_000x` so lease lifecycle can never collide with fault
/// draws — not that either is ever visible in the trace).
const SALT_LEASE: u64 = 0x1EA5_E001;

/// Salt for the hedge-deadline jitter stream: disjoint from
/// [`SALT_LEASE`] so the speculative re-dispatch schedule can never
/// collide with the lease-TTL draws (both are keyed by `(seed, query,
/// attempt)`).
const SALT_HEDGE: u64 = 0x1EA5_E002;

/// Everything that defines a study's run identity and schedule: the exact
/// information [`crate::driver::RunSetup`] carries minus the borrowed
/// evaluation context (space, objective, GPU), which the caller supplies
/// per call so a server can own many studies side by side.
#[derive(Debug, Clone)]
pub struct StudySpec {
    /// Search method.
    pub method: Method,
    /// Enhancement mode.
    pub mode: Mode,
    /// Stop criterion.
    pub budget: Budget,
    /// Run seed (searcher proposals, objective noise, sensor noise order).
    pub seed: u64,
    /// Hardware budgets used to judge feasibility.
    pub budgets: Budgets,
    /// Virtual-time cost model.
    pub cost: TrainingCostModel,
    /// Early-termination policy handed to evaluators; `Some` in
    /// HyperPower mode. The study itself never calls the objective — this
    /// is carried so [`Study::early_termination`] can tell workers what to
    /// run.
    pub early_termination: Option<EarlyTermination>,
    /// Fault-injection profile (semantic knob, part of run identity).
    pub fault_profile: FaultProfile,
    /// Retry/backoff policy applied when faults abort an attempt.
    pub retry: RetryPolicy,
    /// Self-healing configuration.
    pub drift: DriftConfig,
}

/// One candidate issued to a worker under a lease.
#[derive(Debug, Clone)]
pub struct LeasedCandidate {
    /// Unique (per study, monotonically increasing) lease identifier.
    pub lease_id: u64,
    /// Trace slot of the proposal the lease covers.
    pub query: u64,
    /// 1-based issuance count for this candidate (bumped on re-issue
    /// after expiry).
    pub attempt: u32,
    /// The proposed configuration.
    pub config: Config,
    /// Its decoded architecture (what the objective evaluates).
    pub decoded: Decoded,
    /// The evaluation seed — a pure function of `(run seed, query)`, so a
    /// re-issued lease computes the identical result.
    pub eval_seed: u64,
    /// Scheduler-clock deadline: past this instant the lease is eligible
    /// for [`Study::reclaim_expired`]. Never compared against the study's
    /// virtual trace clock.
    pub deadline_s: f64,
}

/// What happened to an observation handed to [`Study::tell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TellOutcome {
    /// The observation was ingested; `committed` samples (this one plus
    /// any unblocked successors, or zero if it is buffered behind an
    /// earlier pending proposal) reached the trace.
    Accepted {
        /// Samples committed by this tell's drain.
        committed: usize,
    },
    /// The lease was already fulfilled — a duplicate delivery, absorbed
    /// without touching any state.
    Duplicate,
    /// The run ended (budget hit) before this proposal could commit; the
    /// observation is absorbed and discarded, exactly as the embedded
    /// loop discards a prefetched tail.
    Discarded,
}

/// Where a study streams its durable observations: the write-ahead
/// journal hook. [`CheckpointSink`] implements it (the executor's
/// periodic checkpoints), and `hyperpower-server` implements it with an
/// append-only journal. Calls arrive in commit order — `record_eval`
/// immediately before the commit that consumed the evaluation — so any
/// sink sees the exact byte stream of the embedded loop.
pub trait ObservationSink {
    /// Records one raw objective evaluation, keyed by its eval seed.
    fn record_eval(&mut self, eval_seed: u64, result: &EvaluationResult);

    /// Records one committed sample.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures; the study aborts the commit loop and
    /// surfaces the error to the caller.
    fn record_commit(&mut self, sample: &Sample) -> Result<()>;
}

impl ObservationSink for CheckpointSink {
    fn record_eval(&mut self, eval_seed: u64, result: &EvaluationResult) {
        CheckpointSink::record_eval(self, eval_seed, result);
    }

    fn record_commit(&mut self, sample: &Sample) -> Result<()> {
        CheckpointSink::record_commit(self, sample)
    }
}

/// A sink that records nothing (for callers without durability).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObservationSink for NullSink {
    fn record_eval(&mut self, _eval_seed: u64, _result: &EvaluationResult) {}

    fn record_commit(&mut self, _sample: &Sample) -> Result<()> {
        Ok(())
    }
}

/// Lifecycle state of one issued lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaseState {
    /// Issued, awaiting its tell.
    Outstanding,
    /// Its tell was ingested (further tells are duplicates).
    Fulfilled,
    /// Reclaimed after its deadline passed; tells are rejected.
    Expired,
    /// Voided because the run ended before the proposal committed; tells
    /// are absorbed.
    Discarded,
}

/// Bookkeeping for one issued lease.
#[derive(Debug, Clone, Copy)]
struct LeaseRecord {
    query: u64,
    state: LeaseState,
    /// Scheduler-clock instant the lease was issued (hedge deadlines are
    /// measured from issuance, not from the run start).
    issued_s: f64,
    deadline_s: f64,
}

/// A proposal planned ahead of its commit.
#[derive(Debug)]
struct Planned {
    config: Config,
    decoded: Decoded,
    rejected: bool,
    query: u64,
    eval_seed: u64,
    degradations: Vec<crate::drift::DegradationEvent>,
    /// The observation, once told (buffered until this item reaches the
    /// front of the commit queue).
    result: Option<EvaluationResult>,
    /// Every currently outstanding lease on this item. More than one only
    /// while a hedged duplicate is in flight; the first fulfilment wins
    /// and supersedes the rest.
    leases: Vec<u64>,
    /// Leases issued for this item so far.
    attempt: u32,
    /// Speculative (hedged) duplicate leases issued for this item.
    hedged: u32,
    /// Leases on this item reclaimed (deadline expiry or shedding) before
    /// a worker delivered.
    reclaimed: u32,
}

/// The quarantine key of a configuration: its unit-cube coordinates by
/// exact bit pattern (the study re-proposes bit-identical configs, so no
/// tolerance is wanted).
pub(crate) fn config_key(config: &Config) -> Vec<u64> {
    config.unit().iter().map(|u| u.to_bits()).collect()
}

/// Predicted memory pressure of a candidate: the noise-free memory
/// analysis as a fraction of device capacity. Consumes no RNG — fault
/// decisions must never perturb the sensor stream.
pub(crate) fn memory_pressure_frac(gpu: &Gpu, decoded: &Decoded) -> f64 {
    let predicted_mib = gpu.analyze(&decoded.arch).memory.get();
    let capacity_mib = gpu.device().memory_capacity_gib * 1024.0;
    predicted_mib / capacity_mib
}

/// Selects the rejection-screening oracle exactly as the sequential loop
/// does: model-free methods in HyperPower mode screen; BO methods carry the
/// constraints inside their acquisition instead (paper §3.4–3.5).
pub(crate) fn screening_oracle(
    mode: Mode,
    method: Method,
    oracle: Option<&ConstraintOracle>,
) -> Option<&ConstraintOracle> {
    match (mode, oracle) {
        (Mode::HyperPower, Some(oracle)) if method.is_model_free() => Some(oracle),
        _ => None,
    }
}

/// The self-healing outcome of one measured commit, ready to attach to
/// its [`Sample`].
pub(crate) struct CommitHealing {
    pub(crate) drift_events: Vec<crate::drift::DriftEvent>,
    pub(crate) drift_rmspe: Option<f64>,
    /// Penalize this observation as a liar (a measured violation of a
    /// predicted-feasible candidate while safety margins are on).
    pub(crate) liar: bool,
}

impl CommitHealing {
    fn inert() -> Self {
        CommitHealing {
            drift_events: Vec::new(),
            drift_rmspe: None,
            liar: false,
        }
    }
}

/// Feeds one measured commit through the drift monitor (when active) and
/// applies the outcome: on any model/margin change the live oracle is
/// rebuilt and the searcher notified. Runs at commit points only, so the
/// whole self-healing state is a pure function of the committed prefix.
#[allow(clippy::too_many_arguments)]
pub(crate) fn heal_on_commit(
    monitor: Option<&mut DriftMonitor>,
    live_oracle: &mut Option<ConstraintOracle>,
    searcher: &mut dyn Searcher,
    safety_margin: f64,
    structural: &[f64],
    power: Watts,
    memory: Option<crate::Mebibytes>,
    latency: crate::Seconds,
    feasible: bool,
) -> CommitHealing {
    let Some(monitor) = monitor else {
        return CommitHealing::inert();
    };
    let predicted_ok = live_oracle
        .as_ref()
        .is_some_and(|o| o.predicted_feasible(structural));
    let violation = predicted_ok && !feasible;
    let obs = monitor.observe_commit(structural, power, memory, Some(latency), violation);
    if obs.oracle_changed {
        let oracle = monitor.oracle();
        searcher.update_oracle(&oracle);
        *live_oracle = Some(oracle);
    }
    CommitHealing {
        drift_events: obs.events,
        drift_rmspe: obs.drift_rmspe,
        liar: violation && safety_margin > 0.0,
    }
}

/// Feeds one committed screening rejection through the drift monitor's
/// starvation valve (when active): a long unbroken run of rejections under
/// an active margin relaxes it one step, and the live oracle is swapped so
/// the very next screening decision sees the widened region.
pub(crate) fn heal_on_rejection(
    monitor: Option<&mut DriftMonitor>,
    live_oracle: &mut Option<ConstraintOracle>,
    searcher: &mut dyn Searcher,
) -> Vec<crate::drift::DriftEvent> {
    let Some(monitor) = monitor else {
        return Vec::new();
    };
    let obs = monitor.observe_rejection();
    if obs.oracle_changed {
        let oracle = monitor.oracle();
        searcher.update_oracle(&oracle);
        *live_oracle = Some(oracle);
    }
    obs.events
}

/// One hyper-parameter study as an explicit ask–tell state machine. See
/// the module docs for the protocol and its exactness argument.
pub struct Study {
    spec: StudySpec,
    plan: FaultPlan,
    searcher: Box<dyn Searcher>,
    rng: StdRng,
    clock: VirtualClock,
    history: History,
    samples: Vec<Sample>,
    evaluations: usize,
    consecutive_rejections: usize,
    quarantine: BTreeSet<Vec<u64>>,
    screen_active: bool,
    live_oracle: Option<ConstraintOracle>,
    monitor: Option<DriftMonitor>,
    queue: VecDeque<Planned>,
    leases: BTreeMap<u64, LeaseRecord>,
    next_lease: u64,
    lease_policy: RetryPolicy,
    finished: bool,
    hedges_issued: u64,
    hedges_superseded: u64,
}

// Manual impl: `searcher` is a trait object, so only its presence is
// reported.
impl std::fmt::Debug for Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Study")
            .field("spec", &self.spec)
            .field("committed", &self.samples.len())
            .field("evaluations", &self.evaluations)
            .field("pending", &self.queue.len())
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl Study {
    /// Creates a study from its spec, the profiling-time constraint oracle
    /// (cloned; `Some` in HyperPower mode) and an optional custom searcher.
    pub fn new(
        spec: StudySpec,
        oracle: Option<&ConstraintOracle>,
        searcher_override: Option<Box<dyn Searcher>>,
    ) -> Self {
        let searcher = searcher_override
            .unwrap_or_else(|| make_searcher(spec.method, spec.mode, oracle.cloned()));
        let screen_active = screening_oracle(spec.mode, spec.method, oracle).is_some();
        let live_oracle = oracle.cloned();
        let monitor = if spec.drift.is_inert() {
            None
        } else {
            oracle.map(|o| DriftMonitor::new(o.models().clone(), o.budgets(), spec.drift))
        };
        let plan = FaultPlan::new(spec.fault_profile.clone(), spec.seed);
        let rng = StdRng::seed_from_u64(spec.seed);
        Study {
            spec,
            plan,
            searcher,
            rng,
            clock: VirtualClock::new(),
            history: History::new(),
            samples: Vec::new(),
            evaluations: 0,
            consecutive_rejections: 0,
            quarantine: BTreeSet::new(),
            screen_active,
            live_oracle,
            monitor,
            queue: VecDeque::new(),
            leases: BTreeMap::new(),
            next_lease: 0,
            // Lease deadlines reuse the retry/backoff machinery: deadline
            // growth per re-issue is exponential with seeded jitter. The
            // defaults give generous first deadlines; servers override via
            // `with_lease_policy`. Execution-only: never part of the trace.
            lease_policy: RetryPolicy {
                max_retries: 0,
                backoff_base_s: 600.0,
                backoff_factor: 2.0,
                backoff_jitter_frac: 0.5,
            },
            finished: false,
            hedges_issued: 0,
            hedges_superseded: 0,
        }
    }

    /// Replaces the lease-deadline policy (builder style). The policy's
    /// `backoff_secs(attempt, jitter)` gives the lease TTL for issuance
    /// `attempt`; `max_retries` is unused (re-issue is unbounded — the
    /// evaluation is pure, so it eventually lands). Trace-neutral.
    pub fn with_lease_policy(mut self, policy: RetryPolicy) -> Self {
        self.lease_policy = policy;
        self
    }

    /// The study's defining spec.
    pub fn spec(&self) -> &StudySpec {
        &self.spec
    }

    /// The early-termination policy evaluators should run under.
    pub fn early_termination(&self) -> Option<EarlyTermination> {
        self.spec.early_termination
    }

    /// Whether the run is over (budget hit or rejection valve tripped).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Committed samples so far.
    pub fn committed(&self) -> usize {
        self.samples.len()
    }

    /// Function evaluations consumed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Outstanding (issued, unfulfilled, unexpired) leases.
    pub fn outstanding_leases(&self) -> usize {
        self.leases
            .values()
            .filter(|r| r.state == LeaseState::Outstanding)
            .count()
    }

    /// The trace committed so far, as a snapshot (the run may continue).
    pub fn trace(&self) -> Trace {
        Trace {
            method: self.spec.method,
            mode: self.spec.mode,
            budgets: self.spec.budgets,
            samples: self.samples.clone(),
            total_time_s: self.clock.seconds(),
        }
    }

    /// Consumes the study and returns its final trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            method: self.spec.method,
            mode: self.spec.mode,
            budgets: self.spec.budgets,
            samples: self.samples,
            total_time_s: self.clock.seconds(),
        }
    }

    /// Plans proposals as needed and returns up to `max` leased candidates
    /// awaiting evaluation, stamping deadlines relative to the caller's
    /// scheduler clock `now_s`. Returns an empty batch when the run is
    /// finished, or when every pending candidate is already out on an
    /// unexpired lease.
    ///
    /// Block planning follows the embedded loop exactly: only
    /// history-independent searchers without an active drift monitor plan
    /// more than one proposal ahead, so the trace stays byte-identical for
    /// every `max` (the executor's worker-count invariance, restated).
    ///
    /// # Errors
    ///
    /// Propagates proposal/decoding errors and sink I/O failures from
    /// commits of screening rejections.
    pub fn ask<S: ObservationSink>(
        &mut self,
        space: &SearchSpace,
        gpu: &mut Gpu,
        max: usize,
        now_s: f64,
        mut sink: Option<&mut S>,
    ) -> Result<Vec<LeasedCandidate>> {
        // Plan blocks until the run ends or a candidate awaits evaluation.
        // (A block can be all screening rejections, which commit right
        // here; the embedded loop spins the same way.)
        while !self.finished && !self.has_pending_eval() {
            if self.budget_exhausted() {
                self.finish();
                break;
            }
            self.plan_block(space, max)?;
            self.drain(gpu, sink.as_deref_mut())?;
        }
        if self.finished {
            return Ok(Vec::new());
        }

        let mut out = Vec::new();
        let policy = self.lease_policy;
        let seed = self.spec.seed;
        let mut next = self.next_lease;
        let mut issued: Vec<LeaseRecord> = Vec::new();
        let cap = max.max(1);
        for item in self.queue.iter_mut() {
            if item.rejected || item.result.is_some() || !item.leases.is_empty() {
                continue;
            }
            if out.len() >= cap {
                break;
            }
            item.attempt += 1;
            let lease_id = next;
            next += 1;
            let ttl = policy.backoff_secs(
                item.attempt,
                lease_jitter_unit(seed, item.query, item.attempt),
            );
            let deadline_s = now_s + ttl;
            item.leases.push(lease_id);
            issued.push(LeaseRecord {
                query: item.query,
                state: LeaseState::Outstanding,
                issued_s: now_s,
                deadline_s,
            });
            out.push(LeasedCandidate {
                lease_id,
                query: item.query,
                attempt: item.attempt,
                config: item.config.clone(),
                decoded: item.decoded.clone(),
                eval_seed: item.eval_seed,
                deadline_s,
            });
        }
        for (offset, record) in issued.into_iter().enumerate() {
            self.leases.insert(self.next_lease + offset as u64, record);
        }
        self.next_lease = next;
        Ok(out)
    }

    /// Ingests one observation for `lease_id` and commits every proposal
    /// the arrival unblocks, in proposal order.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownLease`] for a lease this study never issued;
    /// [`Error::LeaseExpired`] for a reclaimed lease (state untouched);
    /// sink I/O failures from the commits.
    pub fn tell<S: ObservationSink>(
        &mut self,
        gpu: &mut Gpu,
        lease_id: u64,
        result: &EvaluationResult,
        sink: Option<&mut S>,
    ) -> Result<TellOutcome> {
        let Some(record) = self.leases.get_mut(&lease_id) else {
            return Err(Error::UnknownLease { lease_id });
        };
        match record.state {
            LeaseState::Expired => {
                return Err(Error::LeaseExpired {
                    lease_id,
                    query: record.query,
                })
            }
            LeaseState::Fulfilled => return Ok(TellOutcome::Duplicate),
            LeaseState::Discarded => return Ok(TellOutcome::Discarded),
            LeaseState::Outstanding => {}
        }
        record.state = LeaseState::Fulfilled;
        let query = record.query;
        let Some(item) = self.queue.iter_mut().find(|i| i.query == query) else {
            // An outstanding lease always has its item queued: `finish`
            // voids leases when it clears the queue.
            unreachable!("outstanding lease without a queued item");
        };
        item.result = Some(*result);
        // First fulfilment wins: every sibling lease still in flight for
        // this item (hedged duplicates) is superseded — marked fulfilled
        // so its eventual tell is absorbed as `TellOutcome::Duplicate`.
        let siblings: Vec<u64> = item.leases.drain(..).filter(|id| *id != lease_id).collect();
        for sibling in siblings {
            if let Some(other) = self.leases.get_mut(&sibling) {
                if other.state == LeaseState::Outstanding {
                    other.state = LeaseState::Fulfilled;
                    self.hedges_superseded += 1;
                }
            }
        }
        let before = self.samples.len();
        self.drain(gpu, sink)?;
        Ok(TellOutcome::Accepted {
            committed: self.samples.len() - before,
        })
    }

    /// Reclaims every outstanding lease whose deadline has passed on the
    /// caller's scheduler clock, returning how many were reclaimed. The
    /// candidates return to the pool and the next [`Study::ask`] re-issues
    /// them (attempt bumped, deadline grown). Trace-neutral by
    /// construction: reclamation touches lease bookkeeping only.
    pub fn reclaim_expired(&mut self, now_s: f64) -> usize {
        let mut reclaimed = 0;
        for (lease_id, record) in self.leases.iter_mut() {
            if record.state == LeaseState::Outstanding && now_s > record.deadline_s {
                record.state = LeaseState::Expired;
                let query = record.query;
                if let Some(item) = self.queue.iter_mut().find(|i| i.query == query) {
                    item.leases.retain(|id| id != lease_id);
                    item.reclaimed = item.reclaimed.saturating_add(1);
                }
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Issues a speculative duplicate lease for every proposal whose single
    /// outstanding lease has outlived its seeded *hedge deadline* — the
    /// lease-policy backoff curve evaluated on a hedge-salted jitter
    /// stream, measured from issuance — and returns the duplicates for
    /// dispatch to another worker. The first fulfilment commits at the
    /// single commit point; the loser resolves as
    /// [`TellOutcome::Duplicate`]. Hedging never stacks: an item with a
    /// hedge already in flight is left alone until a tell or an expiry
    /// thins its leases.
    ///
    /// Trace-neutral by construction: the duplicate carries the same
    /// `eval_seed` (fixed at planning time), so whichever lease wins
    /// delivers bit-identical bytes.
    pub fn hedge_overdue(&mut self, now_s: f64, hedge: &RetryPolicy) -> Vec<LeasedCandidate> {
        if self.finished {
            return Vec::new();
        }
        let seed = self.spec.seed;
        let policy = self.lease_policy;
        let mut out = Vec::new();
        for item in self.queue.iter_mut() {
            if item.rejected || item.result.is_some() || item.leases.len() != 1 {
                continue;
            }
            let original = item.leases[0];
            let Some(record) = self.leases.get(&original) else {
                continue;
            };
            if record.state != LeaseState::Outstanding {
                continue;
            }
            let hedge_after = hedge.backoff_secs(
                item.attempt,
                hedge_jitter_unit(seed, item.query, item.attempt),
            );
            if now_s - record.issued_s <= hedge_after {
                continue;
            }
            item.attempt += 1;
            let lease_id = self.next_lease;
            self.next_lease += 1;
            let ttl = policy.backoff_secs(
                item.attempt,
                lease_jitter_unit(seed, item.query, item.attempt),
            );
            let deadline_s = now_s + ttl;
            item.leases.push(lease_id);
            item.hedged = item.hedged.saturating_add(1);
            self.hedges_issued += 1;
            self.leases.insert(
                lease_id,
                LeaseRecord {
                    query: item.query,
                    state: LeaseState::Outstanding,
                    issued_s: now_s,
                    deadline_s,
                },
            );
            out.push(LeasedCandidate {
                lease_id,
                query: item.query,
                attempt: item.attempt,
                config: item.config.clone(),
                decoded: item.decoded.clone(),
                eval_seed: item.eval_seed,
                deadline_s,
            });
        }
        out
    }

    /// Speculative (hedged) duplicate leases issued over the study's
    /// lifetime.
    pub fn hedges_issued(&self) -> u64 {
        self.hedges_issued
    }

    /// Hedged leases superseded by a sibling's earlier fulfilment (the
    /// race's losers, eventually absorbed as duplicates).
    pub fn hedges_superseded(&self) -> u64 {
        self.hedges_superseded
    }

    /// Reclaims every outstanding lease regardless of deadline (the
    /// server's shed-lowest-priority backpressure valve). Trace-neutral,
    /// like deadline expiry.
    pub fn reclaim_all(&mut self) -> usize {
        self.reclaim_expired(f64::INFINITY)
    }

    fn has_pending_eval(&self) -> bool {
        self.queue.iter().any(|i| !i.rejected && i.result.is_none())
    }

    fn budget_exhausted(&self) -> bool {
        match self.spec.budget {
            Budget::Evaluations(n) => self.evaluations >= n,
            Budget::VirtualHours(h) => self.clock.hours() >= h,
        }
    }

    /// Ends the run: the planned tail is discarded unseen (exactly as the
    /// embedded loop discards a prefetched tail on a budget hit) and its
    /// leases are voided so late tells are absorbed, not rejected.
    fn finish(&mut self) {
        self.finished = true;
        for item in &self.queue {
            for lease_id in &item.leases {
                if let Some(record) = self.leases.get_mut(lease_id) {
                    if record.state == LeaseState::Outstanding {
                        record.state = LeaseState::Discarded;
                    }
                }
            }
        }
        self.queue.clear();
    }

    /// Plans one block of proposals, mirroring the embedded loop: the
    /// searcher proposes, degradations are drained, the space decodes, and
    /// the screening oracle (when active) marks predicted-infeasible
    /// candidates rejected. Proposals never run past the evaluation budget
    /// (rejected ones occupy no evaluation slot, so the block can only
    /// undershoot, never overshoot).
    fn plan_block(&mut self, space: &SearchSpace, max: usize) -> Result<()> {
        debug_assert!(self.queue.is_empty(), "blocks plan only on a drained queue");
        // Dependent searchers must see each result before the next
        // proposal: their lookahead is 1. An active drift monitor also
        // forces lookahead 1: a commit may swap the screening oracle, so
        // planning a wider block would make screening decisions depend on
        // the batch width.
        let lookahead = if max > 1
            && self.searcher.conditioning() == Conditioning::Independent
            && self.monitor.is_none()
        {
            max
        } else {
            1
        };
        let room = match self.spec.budget {
            Budget::Evaluations(n) => n.saturating_sub(self.evaluations),
            Budget::VirtualHours(_) => lookahead,
        };
        let block = lookahead.min(room).max(1);
        let base_slot = (self.samples.len() + self.queue.len()) as u64;
        for offset in 0..block as u64 {
            let config = self.searcher.propose(space, &self.history, &mut self.rng)?;
            let degradations = self.searcher.drain_degradations();
            let decoded = space.decode(&config)?;
            let rejected = match (self.screen_active, self.live_oracle.as_ref()) {
                (true, Some(oracle)) => !oracle.predicted_feasible(&decoded.structural),
                _ => false,
            };
            // Every committed sample — rejected or trained — occupies one
            // trace slot, and the evaluation seed is derived from that
            // slot exactly as in the sequential loop.
            let query = base_slot + offset;
            let eval_seed = self.spec.seed.wrapping_mul(SEED_MIX).wrapping_add(query);
            self.queue.push_back(Planned {
                config,
                decoded,
                rejected,
                query,
                eval_seed,
                degradations,
                result: None,
                leases: Vec::new(),
                attempt: 0,
                hedged: 0,
                reclaimed: 0,
            });
        }
        Ok(())
    }

    /// Commits every front-of-queue proposal that is ready — screening
    /// rejections unconditionally, evaluated candidates once their result
    /// has been told — re-checking the budget before each commit.
    fn drain<S: ObservationSink>(&mut self, gpu: &mut Gpu, mut sink: Option<&mut S>) -> Result<()> {
        while let Some(front) = self.queue.front() {
            if self.budget_exhausted() {
                self.finish();
                break;
            }
            let ready = front.rejected || front.result.is_some();
            if !ready {
                break;
            }
            let Some(item) = self.queue.pop_front() else {
                // The front was just observed.
                unreachable!("front disappeared between peek and pop");
            };
            if item.rejected {
                self.commit_screen_rejection(item, sink.as_deref_mut())?;
            } else {
                self.commit_evaluated(item, gpu, sink.as_deref_mut())?;
            }
            if self.finished {
                break;
            }
        }
        Ok(())
    }

    /// Commits one screening rejection, advancing the virtual clock with
    /// the exact operation sequence of the embedded loop.
    fn commit_screen_rejection<S: ObservationSink>(
        &mut self,
        item: Planned,
        sink: Option<&mut S>,
    ) -> Result<()> {
        self.clock.advance_secs(self.spec.cost.model_eval_s);
        let Some(oracle) = self.live_oracle.as_ref() else {
            // `rejected` is only ever set by the screening oracle. analyze::allow(R15)
            unreachable!("rejected proposal without a screening oracle");
        };
        let predicted_power = oracle.models().predict_power(&item.decoded.structural);
        let drift_events = heal_on_rejection(
            self.monitor.as_mut(),
            &mut self.live_oracle,
            self.searcher.as_mut(),
        );
        let sample = Sample {
            index: self.samples.len(),
            timestamp_s: self.clock.seconds(),
            kind: SampleKind::Rejected,
            error: None,
            power_w: predicted_power.get(),
            memory_bytes: None,
            latency_s: None,
            feasible: false,
            retries: 0,
            faults: Vec::new(),
            failure: None,
            drift_events,
            degradations: item.degradations,
            drift_rmspe: None,
            hedged: item.hedged,
            reclaimed: item.reclaimed,
            config: item.config,
        };
        if let Some(s) = sink {
            s.record_commit(&sample)?;
        }
        self.samples.push(sample);
        self.consecutive_rejections += 1;
        if self.consecutive_rejections >= MAX_CONSECUTIVE_REJECTIONS {
            self.finish();
        }
        Ok(())
    }

    /// Commits one evaluated proposal: the quarantine circuit breaker may
    /// still reject it (dropping the buffered result), otherwise the fault
    /// schedule replays, sensors are read on the shared stream, and the
    /// sample commits — all exactly as the embedded loop does.
    fn commit_evaluated<S: ObservationSink>(
        &mut self,
        item: Planned,
        gpu: &mut Gpu,
        mut sink: Option<&mut S>,
    ) -> Result<()> {
        let Planned {
            config,
            decoded,
            query,
            eval_seed,
            degradations,
            result,
            hedged,
            reclaimed,
            ..
        } = item;
        let Some(result) = result else {
            // `drain` only pops evaluated items whose result was told. analyze::allow(R15)
            unreachable!("evaluated commit without a told result");
        };
        if self.quarantine.contains(&config_key(&config)) {
            // Circuit breaker: this config already failed terminally.
            // Reject at model-eval cost using the noise-free analysis
            // (no sensor RNG), and drop the buffered result.
            self.clock.advance_secs(self.spec.cost.model_eval_s);
            let sample = Sample {
                index: self.samples.len(),
                timestamp_s: self.clock.seconds(),
                kind: SampleKind::Rejected,
                error: None,
                power_w: gpu.analyze(&decoded.arch).power.get(),
                memory_bytes: None,
                latency_s: None,
                feasible: false,
                retries: 0,
                faults: Vec::new(),
                failure: Some(TrialFailure::Quarantined),
                drift_events: Vec::new(),
                degradations,
                drift_rmspe: None,
                hedged,
                reclaimed,
                config,
            };
            if let Some(s) = sink.as_deref_mut() {
                s.record_commit(&sample)?;
            }
            self.samples.push(sample);
            self.consecutive_rejections += 1;
            if self.consecutive_rejections >= MAX_CONSECUTIVE_REJECTIONS {
                self.finish();
            }
            return Ok(());
        }
        if self.screen_active {
            // Feasibility checks on surviving candidates are billed too.
            self.clock.advance_secs(self.spec.cost.model_eval_s);
        }
        self.consecutive_rejections = 0;
        if let Some(s) = sink.as_deref_mut() {
            s.record_eval(eval_seed, &result);
        }
        let pressure_frac = memory_pressure_frac(gpu, &decoded);
        let trial = plan_trial(&self.plan, &self.spec.retry, query, &result, pressure_frac);
        self.clock.advance_secs(trial.charged_secs);
        let sample = match trial.outcome {
            TrialOutcome::Completed { secondary } => {
                let mut faults = trial.faults;
                let glitched = self.plan.sensor_glitch(query);
                if glitched {
                    // Transient sensor glitch: the first power reading
                    // is garbage — discard it (consuming the draw) and
                    // pay for a repeated measurement pass.
                    let _ = gpu.measure_power(&decoded.arch);
                    faults.push(TrialFailure::SensorGlitch);
                }
                let raw_power = gpu.measure_power(&decoded.arch);
                let memory = gpu.measure_memory(&decoded.arch).ok();
                let latency = gpu.measure_latency(&decoded.arch);
                self.clock.advance_secs(self.spec.cost.measurement_s);
                if glitched {
                    self.clock.advance_secs(self.spec.cost.measurement_s);
                }
                // Systematic sensor miscalibration (the `drifting-hw`
                // profile): the recorded reading is biased by the
                // profile's drift rate × the commit timestamp. A pure
                // function of virtual time — no RNG, no thread state.
                let power =
                    Watts(raw_power.get() + self.plan.profile().power_bias_w(self.clock.seconds()));
                let feasible =
                    self.spec
                        .budgets
                        .satisfied_by_measurements(power, memory, Some(latency));
                let healing = heal_on_commit(
                    self.monitor.as_mut(),
                    &mut self.live_oracle,
                    self.searcher.as_mut(),
                    self.spec.drift.safety_margin,
                    &decoded.structural,
                    power,
                    memory,
                    latency,
                    feasible,
                );
                self.history.push(
                    config.clone(),
                    if healing.liar {
                        LIAR_ERROR
                    } else {
                        result.error
                    },
                );
                self.evaluations += 1;
                Sample {
                    index: self.samples.len(),
                    timestamp_s: self.clock.seconds(),
                    kind: if result.terminated_early {
                        SampleKind::EarlyTerminated
                    } else {
                        SampleKind::Trained
                    },
                    error: Some(result.error),
                    power_w: power.get(),
                    memory_bytes: memory.map(|m| m.as_bytes() as u64),
                    latency_s: Some(latency.get()),
                    feasible,
                    retries: trial.attempts - 1,
                    faults,
                    failure: secondary,
                    drift_events: healing.drift_events,
                    degradations,
                    drift_rmspe: healing.drift_rmspe,
                    hedged,
                    reclaimed,
                    config,
                }
            }
            TrialOutcome::Failed(cause) => {
                // Graceful degradation: the searcher sees a worst-case
                // "liar" observation instead of a silent hole, and the
                // config is circuit-broken. No measurements exist — the
                // job never completed.
                self.history.push(config.clone(), LIAR_ERROR);
                self.evaluations += 1;
                self.quarantine.insert(config_key(&config));
                Sample {
                    index: self.samples.len(),
                    timestamp_s: self.clock.seconds(),
                    kind: SampleKind::Failed,
                    error: None,
                    power_w: gpu.analyze(&decoded.arch).power.get(),
                    memory_bytes: None,
                    latency_s: None,
                    feasible: false,
                    retries: trial.attempts - 1,
                    faults: trial.faults,
                    failure: Some(cause),
                    drift_events: Vec::new(),
                    degradations,
                    drift_rmspe: None,
                    hedged,
                    reclaimed,
                    config,
                }
            }
        };
        if let Some(s) = sink {
            s.record_commit(&sample)?;
        }
        self.samples.push(sample);
        Ok(())
    }
}

/// The `[0, 1)` jitter draw for lease deadline `attempt` of `query` —
/// golden-ratio mixing on a salted stream, a pure function of its inputs
/// in the `FaultPlan` style.
fn lease_jitter_unit(seed: u64, query: u64, attempt: u32) -> f64 {
    use rand::RngExt;
    let mut h = seed ^ SALT_LEASE;
    h = h.wrapping_mul(SEED_MIX).wrapping_add(query);
    h = h.wrapping_mul(SEED_MIX).wrapping_add(u64::from(attempt));
    StdRng::seed_from_u64(h).random_range(0.0..1.0)
}

/// The `[0, 1)` jitter draw for the hedge deadline of issuance `attempt`
/// of `query` — same construction as [`lease_jitter_unit`] on the
/// disjoint [`SALT_HEDGE`] stream, so hedge timing and lease TTLs are
/// independent pure functions of `(seed, query, attempt)`.
fn hedge_jitter_unit(seed: u64, query: u64, attempt: u32) -> f64 {
    use rand::RngExt;
    let mut h = seed ^ SALT_HEDGE;
    h = h.wrapping_mul(SEED_MIX).wrapping_add(query);
    h = h.wrapping_mul(SEED_MIX).wrapping_add(u64::from(attempt));
    StdRng::seed_from_u64(h).random_range(0.0..1.0)
}
