//! Byte-exact golden-trace codec: a dependency-free JSON encoder, a
//! minimal recursive-descent parser and a per-field differ.
//!
//! The golden-trace harness (`tests/golden_traces.rs`) pins full [`Trace`]s
//! — every timestamp, measurement and configuration coordinate — against
//! committed fixtures. That needs three things serde would not give a
//! hermetic workspace:
//!
//! * **Shortest-round-trip floats.** Every `f64` is rendered with `{:?}`,
//!   Rust's shortest representation that parses back to the identical bit
//!   pattern, so "encode, commit, parse, compare bits" is lossless.
//! * **Bit-level comparison.** [`diff`] compares numbers by
//!   `f64::to_bits`, not by epsilon: the determinism contract is *byte*
//!   identity, and a one-ulp drift is a real regression.
//! * **Readable failure reports.** A mismatch names the JSON path
//!   (`samples[3].error`), both values and both bit patterns — not a
//!   2000-character string inequality.

use crate::driver::{Sample, SampleKind, Trace};

/// A parsed JSON value. Object member order is preserved (traces are
/// encoded with a fixed key order, so order mismatches are real diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (plus `NaN` / `inf` / `-inf`, which `{:?}` emits
    /// for non-finite floats).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

/// Stable wire name for a [`SampleKind`] (matches the CSV export).
fn kind_name(kind: SampleKind) -> &'static str {
    match kind {
        SampleKind::Rejected => "rejected",
        SampleKind::EarlyTerminated => "early_terminated",
        SampleKind::Trained => "trained",
        SampleKind::Failed => "failed",
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, x: f64) {
    // `{:?}` is the shortest string that round-trips to the same bits.
    out.push_str(&format!("{x:?}"));
}

fn push_opt_f64(out: &mut String, x: Option<f64>) {
    match x {
        Some(x) => push_f64(out, x),
        None => out.push_str("null"),
    }
}

fn push_sample(out: &mut String, s: &Sample, indent: &str) {
    out.push_str(indent);
    out.push_str("{\"index\": ");
    out.push_str(&s.index.to_string());
    out.push_str(", \"timestamp_s\": ");
    push_f64(out, s.timestamp_s);
    out.push_str(", \"kind\": ");
    push_escaped(out, kind_name(s.kind));
    out.push_str(", \"error\": ");
    push_opt_f64(out, s.error);
    out.push_str(", \"power_w\": ");
    push_f64(out, s.power_w);
    out.push_str(", \"memory_bytes\": ");
    match s.memory_bytes {
        Some(m) => out.push_str(&m.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"latency_s\": ");
    push_opt_f64(out, s.latency_s);
    out.push_str(", \"feasible\": ");
    out.push_str(if s.feasible { "true" } else { "false" });
    // `Sample::hedged` / `Sample::reclaimed` are deliberately NOT encoded:
    // they are operational lease telemetry, not trace identity. Excluding
    // them is what makes hedged and unhedged runs byte-compare equal here
    // (the server's trace-neutrality proof leans on this).
    // Fault-recovery keys are emitted only when non-default, so fault-free
    // traces (and the pre-fault golden fixtures) are byte-identical to the
    // v1 encoding.
    if s.retries > 0 {
        out.push_str(", \"retries\": ");
        out.push_str(&s.retries.to_string());
    }
    if !s.faults.is_empty() {
        out.push_str(", \"faults\": [");
        for (i, f) in s.faults.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_escaped(out, f.wire_name());
        }
        out.push(']');
    }
    if let Some(failure) = s.failure {
        out.push_str(", \"failure\": ");
        push_escaped(out, failure.wire_name());
    }
    // Self-healing keys follow the same only-when-non-default rule: runs
    // with the drift monitor off (the default) encode byte-identically to
    // the pre-drift format.
    if !s.drift_events.is_empty() {
        out.push_str(", \"drift_events\": [");
        for (i, e) in s.drift_events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_escaped(out, e.wire_name());
        }
        out.push(']');
    }
    if !s.degradations.is_empty() {
        out.push_str(", \"degradations\": [");
        for (i, d) in s.degradations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_escaped(out, &d.wire_name());
        }
        out.push(']');
    }
    if let Some(rmspe) = s.drift_rmspe {
        out.push_str(", \"drift_rmspe\": ");
        push_f64(out, rmspe);
    }
    out.push_str(", \"config\": [");
    for (i, u) in s.config.unit().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_f64(out, *u);
    }
    out.push_str("]}");
}

/// Encodes one [`Sample`] as a single JSON object line (the same encoding
/// [`encode_trace`] uses inside `samples`). Used by the run-checkpoint
/// format so resumed traces are byte-compatible with golden fixtures.
pub fn encode_sample(s: &Sample) -> String {
    let mut out = String::new();
    push_sample(&mut out, s, "");
    out
}

/// Encodes a [`Trace`] as deterministic, human-diffable JSON: fixed key
/// order, one sample per line, shortest-round-trip floats, trailing
/// newline.
pub fn encode_trace(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hyperpower-trace-v1\",\n  \"method\": ");
    push_escaped(&mut out, &trace.method.to_string());
    out.push_str(",\n  \"mode\": ");
    push_escaped(&mut out, &trace.mode.to_string());
    out.push_str(",\n  \"budgets\": {\"power_w\": ");
    push_opt_f64(&mut out, trace.budgets.power.map(|p| p.get()));
    out.push_str(", \"memory_mib\": ");
    push_opt_f64(&mut out, trace.budgets.memory.map(|m| m.get()));
    out.push_str(", \"latency_s\": ");
    push_opt_f64(&mut out, trace.budgets.latency.map(|l| l.get()));
    out.push_str("},\n  \"total_time_s\": ");
    push_f64(&mut out, trace.total_time_s);
    out.push_str(",\n  \"samples\": [");
    for (i, s) in trace.samples.iter().enumerate() {
        out.push_str(if i > 0 { ",\n" } else { "\n" });
        push_sample(&mut out, s, "    ");
    }
    if trace.samples.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> std::result::Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Number(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Number(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::Number(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn object(&mut self) -> std::result::Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(c) = hex else {
                                return Err(self.fail("bad \\u escape"));
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are valid UTF-8 (the input is &str); copy the
                    // whole next char.
                    let rest = &self.bytes[self.pos..];
                    let Ok(s) = std::str::from_utf8(rest) else {
                        return Err(self.fail("invalid UTF-8"));
                    };
                    let Some(c) = s.chars().next() else {
                        return Err(self.fail("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.fail("invalid number bytes"));
        };
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.fail(&format!("bad number {text:?}")))
    }
}

/// Parses JSON text (as produced by [`encode_trace`]) into a [`Value`].
///
/// # Errors
///
/// Returns a byte-offset-annotated message on malformed input.
pub fn parse(text: &str) -> std::result::Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Most mismatches reported before the differ truncates; keeps the report
/// readable when a whole trace diverges.
const MAX_DIFFS: usize = 40;

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn diff_into(path: &str, expected: &Value, actual: &Value, out: &mut Vec<String>) {
    if out.len() >= MAX_DIFFS {
        return;
    }
    match (expected, actual) {
        (Value::Number(e), Value::Number(a)) => {
            if e.to_bits() != a.to_bits() {
                out.push(format!(
                    "{path}: expected {e:?} (bits {:016x}), got {a:?} (bits {:016x})",
                    e.to_bits(),
                    a.to_bits()
                ));
            }
        }
        (Value::Null, Value::Null) => {}
        (Value::Bool(e), Value::Bool(a)) => {
            if e != a {
                out.push(format!("{path}: expected {e}, got {a}"));
            }
        }
        (Value::String(e), Value::String(a)) => {
            if e != a {
                out.push(format!("{path}: expected {e:?}, got {a:?}"));
            }
        }
        (Value::Array(e), Value::Array(a)) => {
            if e.len() != a.len() {
                out.push(format!(
                    "{path}: expected {} elements, got {}",
                    e.len(),
                    a.len()
                ));
            }
            for (i, (ev, av)) in e.iter().zip(a.iter()).enumerate() {
                diff_into(&format!("{path}[{i}]"), ev, av, out);
            }
        }
        (Value::Object(e), Value::Object(a)) => {
            for (key, ev) in e {
                match a.iter().find(|(k, _)| k == key) {
                    Some((_, av)) => diff_into(&format!("{path}.{key}"), ev, av, out),
                    None => out.push(format!("{path}.{key}: missing in actual")),
                }
            }
            for (key, _) in a {
                if !e.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: unexpected in actual"));
                }
            }
        }
        (e, a) => {
            out.push(format!(
                "{path}: expected {} ({e:?}), got {} ({a:?})",
                type_name(e),
                type_name(a)
            ));
        }
    }
}

/// Compares two parsed values field by field. Returns one human-readable
/// line per mismatch (empty ⇒ byte-equivalent traces); numbers are
/// compared by exact bit pattern.
pub fn diff(expected: &Value, actual: &Value) -> Vec<String> {
    let mut out = Vec::new();
    diff_into("$", expected, actual, &mut out);
    if out.len() >= MAX_DIFFS {
        out.push(format!("... report truncated at {MAX_DIFFS} mismatches"));
    }
    out
}

/// Parses both texts and diffs them; a parse failure is itself reported as
/// a diff line.
pub fn diff_text(expected: &str, actual: &str) -> Vec<String> {
    match (parse(expected), parse(actual)) {
        (Ok(e), Ok(a)) => diff(&e, &a),
        (Err(e), _) => vec![format!("expected fixture does not parse: {e}")],
        (_, Err(a)) => vec![format!("actual trace does not parse: {a}")],
    }
}

#[cfg(test)]
// Tests assert exact constructed values; strict float equality intended.
#[allow(clippy::float_cmp, clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Budgets, Config, Method, Mode, Watts};

    fn toy_trace() -> Trace {
        Trace {
            method: Method::HwIeci,
            mode: Mode::HyperPower,
            budgets: Budgets::power(Watts(85.0)),
            samples: vec![
                Sample {
                    index: 0,
                    timestamp_s: 0.1 + 0.2, // deliberately not 0.3
                    kind: SampleKind::Rejected,
                    error: None,
                    power_w: 91.25,
                    memory_bytes: None,
                    latency_s: None,
                    feasible: false,
                    retries: 0,
                    faults: Vec::new(),
                    failure: None,
                    drift_events: Vec::new(),
                    degradations: Vec::new(),
                    drift_rmspe: None,
                    hedged: 0,
                    reclaimed: 0,
                    config: Config::new(vec![0.25, 1.0 / 3.0]).unwrap(),
                },
                Sample {
                    index: 1,
                    timestamp_s: 3600.5,
                    kind: SampleKind::Trained,
                    error: Some(0.0123456789),
                    power_w: 80.0,
                    memory_bytes: Some(1_234_567_890),
                    latency_s: Some(1e-3),
                    feasible: true,
                    retries: 0,
                    faults: Vec::new(),
                    failure: None,
                    drift_events: Vec::new(),
                    degradations: Vec::new(),
                    drift_rmspe: None,
                    hedged: 0,
                    reclaimed: 0,
                    config: Config::new(vec![0.5, 0.75]).unwrap(),
                },
            ],
            total_time_s: 3600.5,
        }
    }

    #[test]
    fn encode_parse_roundtrip_is_bit_exact() {
        let trace = toy_trace();
        let text = encode_trace(&trace);
        let value = parse(&text).unwrap();
        // Pull samples[0].timestamp_s back out and compare bits.
        let Value::Object(top) = &value else {
            panic!("not an object")
        };
        let (_, samples) = top.iter().find(|(k, _)| k == "samples").unwrap();
        let Value::Array(samples) = samples else {
            panic!("samples not an array")
        };
        let Value::Object(s0) = &samples[0] else {
            panic!("sample not an object")
        };
        let (_, ts) = s0.iter().find(|(k, _)| k == "timestamp_s").unwrap();
        let Value::Number(ts) = ts else {
            panic!("timestamp not a number")
        };
        assert_eq!(ts.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_ne!(*ts, 0.3);
    }

    #[test]
    fn identical_traces_have_empty_diff() {
        let text = encode_trace(&toy_trace());
        assert_eq!(diff_text(&text, &text), Vec::<String>::new());
    }

    #[test]
    fn one_ulp_drift_is_detected_and_named() {
        let trace = toy_trace();
        let mut drifted = trace.clone();
        let e = drifted.samples[1].error.unwrap();
        drifted.samples[1].error = Some(f64::from_bits(e.to_bits() + 1));
        let report = diff_text(&encode_trace(&trace), &encode_trace(&drifted));
        assert_eq!(report.len(), 1);
        assert!(report[0].starts_with("$.samples[1].error:"), "{report:?}");
        assert!(report[0].contains("bits"), "{report:?}");
    }

    #[test]
    fn sample_count_mismatch_is_reported() {
        let trace = toy_trace();
        let mut short = trace.clone();
        short.samples.pop();
        let report = diff_text(&encode_trace(&trace), &encode_trace(&short));
        assert!(
            report
                .iter()
                .any(|l| l.contains("$.samples") && l.contains("elements")),
            "{report:?}"
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_handles_special_numbers_and_null() {
        let v = parse("[NaN, inf, -inf, null, -1.5e-3]").unwrap();
        let Value::Array(items) = v else {
            panic!("not an array")
        };
        assert!(matches!(items[0], Value::Number(x) if x.is_nan()));
        assert!(matches!(items[1], Value::Number(x) if x == f64::INFINITY));
        assert!(matches!(items[2], Value::Number(x) if x == f64::NEG_INFINITY));
        assert_eq!(items[3], Value::Null);
        assert!(matches!(items[4], Value::Number(x) if x == -1.5e-3));
    }

    #[test]
    fn fault_keys_are_emitted_only_when_non_default() {
        use crate::recovery::TrialFailure;
        let trace = toy_trace();
        // Default (fault-free) samples carry none of the new keys: the
        // encoding is byte-identical to the pre-fault format.
        let clean = encode_trace(&trace);
        assert!(!clean.contains("retries"));
        assert!(!clean.contains("faults"));
        assert!(!clean.contains("failure"));
        let mut faulted = trace.clone();
        faulted.samples[1].retries = 2;
        faulted.samples[1].faults = vec![TrialFailure::Crash, TrialFailure::SensorGlitch];
        faulted.samples[1].failure = Some(TrialFailure::Crash);
        let text = encode_trace(&faulted);
        assert!(text.contains("\"retries\": 2"));
        assert!(text.contains("\"faults\": [\"crash\", \"sensor_glitch\"]"));
        assert!(text.contains("\"failure\": \"crash\""));
        assert!(parse(&text).is_ok());
        // The differ names the new keys on mismatch.
        let report = diff_text(&clean, &text);
        assert!(report.iter().any(|l| l.contains("retries")), "{report:?}");
        // Single-sample encoder matches the in-trace encoding.
        let line = encode_sample(&faulted.samples[1]);
        assert!(text.contains(&line));
    }

    #[test]
    fn drift_keys_are_emitted_only_when_non_default() {
        use crate::drift::{DegradationEvent, DriftEvent, DriftTarget};
        let trace = toy_trace();
        let clean = encode_trace(&trace);
        assert!(!clean.contains("drift_events"));
        assert!(!clean.contains("degradations"));
        assert!(!clean.contains("drift_rmspe"));
        let mut healing = trace.clone();
        healing.samples[1].drift_events = vec![
            DriftEvent::DriftDetected(DriftTarget::Power),
            DriftEvent::Recalibrated,
        ];
        healing.samples[1].degradations = vec![
            DegradationEvent::JitterEscalated { rung: 1 },
            DegradationEvent::RandWalkFallback,
        ];
        healing.samples[1].drift_rmspe = Some(0.25);
        let text = encode_trace(&healing);
        assert!(text.contains("\"drift_events\": [\"drift:power\", \"recalibrated\"]"));
        assert!(text.contains("\"degradations\": [\"jitter:1\", \"rand-walk-fallback\"]"));
        assert!(text.contains("\"drift_rmspe\": 0.25"));
        assert!(parse(&text).is_ok());
        let report = diff_text(&clean, &text);
        assert!(
            report.iter().any(|l| l.contains("drift_events")),
            "{report:?}"
        );
        // Single-sample encoder matches the in-trace encoding.
        let line = encode_sample(&healing.samples[1]);
        assert!(text.contains(&line));
    }

    #[test]
    fn empty_trace_encodes_and_roundtrips() {
        let trace = Trace {
            method: Method::Rand,
            mode: Mode::Default,
            budgets: Budgets::default(),
            samples: vec![],
            total_time_s: 0.0,
        };
        let text = encode_trace(&trace);
        assert!(parse(&text).is_ok());
        assert!(diff_text(&text, &text).is_empty());
    }
}
