//! Predictive power and memory models (paper §3.3, Eq. 1–2).
//!
//! HyperPower models a network's inference power and memory as functions
//! that are **linear in the structural hyper-parameters** `z`:
//!
//! ```text
//! P(z) = Σⱼ wⱼ·zⱼ          M(z) = Σⱼ mⱼ·zⱼ
//! ```
//!
//! fitted by (ridge-regularised) least squares on `L` offline-profiled
//! samples and validated with 10-fold cross-validation; the paper reports
//! RMSPE below 7% on all device–dataset pairs (Table 1). The linear form
//! is chosen deliberately: it is evaluated *inside* the acquisition
//! function on every candidate grid point, so it must be near-free.
//!
//! As an extension hook (the paper's §3.3 points at its follow-up work for
//! non-linear models) a quadratic-feature variant is provided via
//! [`FeatureMap::Quadratic`].

use hyperpower_linalg::units::{Mebibytes, Seconds, Watts};
use hyperpower_linalg::{ridge_least_squares, stats, vector, Matrix};

use crate::{Error, Result};

/// How raw structural values are expanded into regression features.
///
/// Both maps prepend a constant **intercept** feature: GPU power has a
/// large constant baseline (idle draw) that a strictly zero-intercept
/// model cannot express. The model stays linear in the weights, which is
/// all the paper's formulation requires for cheap in-acquisition
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureMap {
    /// The paper's formulation: an intercept plus the structural values
    /// themselves.
    #[default]
    Linear,
    /// Extension: intercept, structural values and their squares (still
    /// linear in the *weights*, so fitting and evaluation stay cheap).
    Quadratic,
}

impl FeatureMap {
    /// Expands a structural vector into regression features.
    pub fn expand(&self, z: &[f64]) -> Vec<f64> {
        match self {
            FeatureMap::Linear => {
                let mut out = Vec::with_capacity(z.len() + 1);
                out.push(1.0);
                out.extend_from_slice(z);
                out
            }
            FeatureMap::Quadratic => {
                let mut out = Vec::with_capacity(z.len() * 2 + 1);
                out.push(1.0);
                out.extend_from_slice(z);
                out.extend(z.iter().map(|v| v * v));
                out
            }
        }
    }
}

/// How targets are transformed before the linear fit.
///
/// Power and memory are fitted on their natural scale (the paper's Eq.
/// 1–2). Latency spans orders of magnitude across the search space, so the
/// latency model fits `log(y)` and exponentiates predictions — still a
/// cheap dot product plus one `exp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetTransform {
    /// Fit the raw target (paper Eq. 1–2).
    #[default]
    Identity,
    /// Fit `ln(target)`; predictions are exponentiated. Requires strictly
    /// positive targets.
    Log,
}

impl TargetTransform {
    fn forward(&self, y: f64) -> f64 {
        match self {
            TargetTransform::Identity => y,
            TargetTransform::Log => y.ln(),
        }
    }

    fn inverse(&self, y: f64) -> f64 {
        match self {
            TargetTransform::Identity => y,
            TargetTransform::Log => y.exp(),
        }
    }
}

/// A fitted hardware-metric model with its cross-validation diagnostics.
///
/// # Examples
///
/// ```
/// use hyperpower::model::{FeatureMap, LinearHwModel};
///
/// # fn main() -> Result<(), hyperpower::Error> {
/// // Power = 2·z0 + 0.5·z1 exactly: the model recovers it.
/// let z: Vec<Vec<f64>> = (1..20).map(|i| vec![i as f64, (i * i % 7) as f64]).collect();
/// let y: Vec<f64> = z.iter().map(|r| 2.0 * r[0] + 0.5 * r[1]).collect();
/// let model = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear)?;
/// assert!(model.cv_rmspe() < 0.01);
/// assert!((model.predict(&[10.0, 3.0]) - 21.5).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearHwModel {
    weights: Vec<f64>,
    feature_map: FeatureMap,
    target_transform: TargetTransform,
    cv_rmspe: f64,
    residual_std: f64,
}

impl LinearHwModel {
    /// Fits the model with `k`-fold cross-validation (the paper uses
    /// `k = 10`).
    ///
    /// The returned model is trained on *all* samples; `cv_rmspe` is the
    /// RMSPE of held-out predictions across the folds, and `residual_std`
    /// the standard deviation of held-out residuals (used by HW-CWEI's
    /// probabilistic constraints).
    ///
    /// # Errors
    ///
    /// * [`Error::NotEnoughSamples`] if fewer than `max(k, 2·features)`
    ///   samples are supplied.
    /// * [`Error::InvalidConfig`] if rows have inconsistent lengths or
    ///   `k < 2`.
    /// * Numerical errors if the design matrix is degenerate.
    pub fn fit_kfold(z: &[Vec<f64>], y: &[f64], k: usize, feature_map: FeatureMap) -> Result<Self> {
        Self::fit_kfold_transformed(z, y, k, feature_map, TargetTransform::Identity)
    }

    /// Like [`LinearHwModel::fit_kfold`] but with a target transform
    /// (see [`TargetTransform`]). CV diagnostics (`cv_rmspe`,
    /// `residual_std`) are computed on the *original* target scale.
    ///
    /// # Errors
    ///
    /// As [`LinearHwModel::fit_kfold`], plus [`Error::InvalidConfig`] if a
    /// log transform is requested for non-positive targets.
    pub fn fit_kfold_transformed(
        z: &[Vec<f64>],
        y: &[f64],
        k: usize,
        feature_map: FeatureMap,
        target_transform: TargetTransform,
    ) -> Result<Self> {
        if target_transform == TargetTransform::Log && y.iter().any(|v| *v <= 0.0) {
            return Err(Error::InvalidConfig(
                "log target transform requires positive targets".into(),
            ));
        }
        let y: Vec<f64> = y.iter().map(|v| target_transform.forward(*v)).collect();
        let y = y.as_slice();
        if z.len() != y.len() || z.is_empty() {
            return Err(Error::InvalidConfig(
                "need equally many feature rows and targets".into(),
            ));
        }
        if k < 2 {
            return Err(Error::InvalidConfig("k-fold requires k >= 2".into()));
        }
        // In-bounds: `z` is checked non-empty above. analyze::allow(R15)
        let d = feature_map.expand(&z[0]).len();
        if z.iter().any(|r| feature_map.expand(r).len() != d) {
            return Err(Error::InvalidConfig("ragged feature rows".into()));
        }
        let required = k.max(2 * d);
        if z.len() < required {
            return Err(Error::NotEnoughSamples {
                required,
                available: z.len(),
            });
        }

        let n = z.len();
        let features: Vec<Vec<f64>> = z.iter().map(|r| feature_map.expand(r)).collect();

        // k-fold CV: contiguous folds over the (already randomised,
        // profiler-shuffled) sample order.
        let mut held_out_pred = Vec::with_capacity(n);
        let mut held_out_true = Vec::with_capacity(n);
        for fold in 0..k {
            let lo = fold * n / k;
            let hi = (fold + 1) * n / k;
            if lo == hi {
                continue;
            }
            let train_rows: Vec<&Vec<f64>> = features
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < lo || *i >= hi)
                .map(|(_, r)| r)
                .collect();
            let train_y: Vec<f64> = y
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < lo || *i >= hi)
                .map(|(_, v)| *v)
                .collect();
            let x = rows_to_matrix(&train_rows, d)?;
            let fit = ridge_least_squares(&x, &train_y, 1e-6)?;
            for i in lo..hi {
                // Fold bounds: `hi <= features.len() == y.len()` by
                // construction; the grant covers both indexed lines.
                held_out_pred.push(target_transform.inverse(fit.predict(&features[i]))); // analyze::allow(R15)
                held_out_true.push(target_transform.inverse(y[i]));
            }
        }
        let cv_rmspe = stats::rmspe(&held_out_pred, &held_out_true).unwrap_or(f64::NAN);
        let residuals: Vec<f64> = held_out_pred
            .iter()
            .zip(&held_out_true)
            .map(|(p, t)| p - t)
            .collect();
        let residual_std = stats::std_dev(&residuals).unwrap_or(0.0);

        // Final model on all data.
        let all_rows: Vec<&Vec<f64>> = features.iter().collect();
        let x = rows_to_matrix(&all_rows, d)?;
        let fit = ridge_least_squares(&x, y, 1e-6)?;
        hyperpower_linalg::debug_assert_finite!("hw-model weights", &fit.coefficients);

        Ok(LinearHwModel {
            weights: fit.coefficients,
            feature_map,
            target_transform,
            cv_rmspe,
            residual_std,
        })
    }

    /// Predicts the hardware metric for a structural vector `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z` has the wrong dimensionality for the feature map.
    pub fn predict(&self, z: &[f64]) -> f64 {
        hyperpower_linalg::debug_assert_finite!("hw-model input z", z);
        let features = self.feature_map.expand(z);
        self.target_transform
            .inverse(vector::dot(&self.weights, &features))
    }

    /// The fitted weights (`wⱼ` of Eq. 1 / `mⱼ` of Eq. 2).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Cross-validated Root Mean Square Percentage Error, as a fraction
    /// (the paper's Table 1 metric; multiply by 100 for percent).
    pub fn cv_rmspe(&self) -> f64 {
        self.cv_rmspe
    }

    /// Standard deviation of held-out residuals, in the metric's units.
    /// HW-CWEI uses this as the constraint models' predictive noise.
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// The feature map used at fit time.
    pub fn feature_map(&self) -> FeatureMap {
        self.feature_map
    }

    /// The target transform used at fit time.
    pub fn target_transform(&self) -> TargetTransform {
        self.target_transform
    }
}

fn rows_to_matrix(rows: &[&Vec<f64>], d: usize) -> Result<Matrix> {
    let mut data = Vec::with_capacity(rows.len() * d);
    for r in rows {
        data.extend_from_slice(r);
    }
    Ok(Matrix::from_vec(rows.len(), d, data)?)
}

/// The fitted models a platform exposes: power always, memory only where
/// the platform can measure it (not on Tegra — paper footnote 1), latency
/// as an extension beyond the paper (its refs \[10\]/\[14\] constrain
/// runtime).
#[derive(Debug, Clone, PartialEq)]
pub struct HwModels {
    /// The power model `P(z)`.
    pub power: LinearHwModel,
    /// The memory model `M(z)`, if the platform supports memory
    /// measurement.
    pub memory: Option<LinearHwModel>,
    /// The inference-latency model `T(z)` in seconds per example, if
    /// latency was profiled.
    pub latency: Option<LinearHwModel>,
}

impl HwModels {
    /// Predicted inference power `P(z)` (paper Eq. 1). The underlying
    /// regression is fitted on raw watt readings; the typed wrapper is the
    /// API boundary that keeps budget comparisons dimension-safe.
    pub fn predict_power(&self, z: &[f64]) -> Watts {
        Watts(self.power.predict(z))
    }

    /// Predicted memory `M(z)` (paper Eq. 2), or `None` without a memory
    /// model. The regression is fitted on raw byte readings and converted
    /// here, so the scale change happens in exactly one place.
    pub fn predict_memory(&self, z: &[f64]) -> Option<Mebibytes> {
        self.memory
            .as_ref()
            .map(|m| Mebibytes::from_bytes(m.predict(z)))
    }

    /// Predicted latency per example, or `None` without a latency model.
    pub fn predict_latency(&self, z: &[f64]) -> Option<Seconds> {
        self.latency.as_ref().map(|m| Seconds(m.predict(z)))
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn planted_data(n: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = [3.0, -1.5, 0.8];
        let intercept = 30.0;
        let z: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..3)
                    .map(|_| rng.random_range(1.0..10.0))
                    .collect::<Vec<f64>>()
            })
            .collect();
        let y: Vec<f64> = z
            .iter()
            .map(|r| {
                let clean: f64 = intercept + r.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>();
                clean + noise * (rng.random_range(0.0f64..1.0) - 0.5)
            })
            .collect();
        (z, y)
    }

    #[test]
    fn recovers_planted_weights() {
        let (z, y) = planted_data(60, 0.0, 1);
        let m = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).unwrap();
        // weights[0] is the intercept.
        assert!((m.weights()[0] - 30.0).abs() < 1e-4);
        assert!((m.weights()[1] - 3.0).abs() < 1e-5);
        assert!((m.weights()[2] + 1.5).abs() < 1e-5);
        assert!(m.cv_rmspe() < 1e-5);
        assert!(m.residual_std() < 1e-3);
    }

    #[test]
    fn noisy_data_has_nonzero_rmspe() {
        let (z, y) = planted_data(80, 2.0, 2);
        let m = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).unwrap();
        assert!(m.cv_rmspe() > 0.0);
        assert!(m.cv_rmspe() < 0.2, "rmspe {}", m.cv_rmspe());
        assert!(m.residual_std() > 0.0);
    }

    #[test]
    fn quadratic_features_fit_quadratic_truth_better() {
        let mut rng = StdRng::seed_from_u64(3);
        let z: Vec<Vec<f64>> = (0..80)
            .map(|_| vec![rng.random_range(1.0f64..6.0)])
            .collect();
        let y: Vec<f64> = z.iter().map(|r| 2.0 * r[0] * r[0] + r[0]).collect();
        let lin = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).unwrap();
        let quad = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Quadratic).unwrap();
        assert!(quad.cv_rmspe() < lin.cv_rmspe() * 0.2);
    }

    #[test]
    fn too_few_samples_rejected() {
        let (z, y) = planted_data(5, 0.0, 4);
        let err = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).unwrap_err();
        assert!(matches!(err, Error::NotEnoughSamples { .. }));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(LinearHwModel::fit_kfold(&[], &[], 10, FeatureMap::Linear).is_err());
        let z = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(LinearHwModel::fit_kfold(&z, &[1.0, 2.0], 2, FeatureMap::Linear).is_err());
        let (z, y) = planted_data(30, 0.0, 5);
        assert!(LinearHwModel::fit_kfold(&z, &y, 1, FeatureMap::Linear).is_err());
    }

    #[test]
    fn hw_models_memory_optional() {
        let (z, y) = planted_data(40, 0.1, 6);
        let power = LinearHwModel::fit_kfold(&z, &y, 10, FeatureMap::Linear).unwrap();
        let models = HwModels {
            power: power.clone(),
            memory: None,
            latency: None,
        };
        assert!(models.predict_power(&[2.0, 2.0, 2.0]).is_finite());
        assert!(models.predict_power(&[2.0, 2.0, 2.0]) > Watts::ZERO);
        assert_eq!(models.predict_memory(&[2.0, 2.0, 2.0]), None);
        let with_mem = HwModels {
            power: power.clone(),
            memory: Some(power),
            latency: None,
        };
        assert!(with_mem.predict_memory(&[2.0, 2.0, 2.0]).is_some());
    }

    #[test]
    fn prediction_is_affine_in_z() {
        let (z, y) = planted_data(50, 0.0, 7);
        let m = LinearHwModel::fit_kfold(&z, &y, 5, FeatureMap::Linear).unwrap();
        // Affinity: p(a) + p(b) - p(0) = p(a + b).
        let a = m.predict(&[1.0, 2.0, 3.0]);
        let b = m.predict(&[2.0, 4.0, 6.0]);
        let zero = m.predict(&[0.0, 0.0, 0.0]);
        let sum = m.predict(&[3.0, 6.0, 9.0]);
        assert!((a + b - zero - sum).abs() < 1e-9);
    }
}
