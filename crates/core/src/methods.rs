//! The four search methods of the paper (§3.4–3.5).
//!
//! | Method | Proposal rule | Constraint handling (HyperPower mode) |
//! |---|---|---|
//! | [`Method::Rand`] | uniform random | model-based rejection of predicted-invalid points |
//! | [`Method::RandWalk`] | Gaussian walk around the incumbent | model-based rejection |
//! | [`Method::HwCwei`] | GP-BO, EI × Pr(constraints satisfied) | probabilistic, inside the acquisition |
//! | [`Method::HwIeci`] | GP-BO, EI × hard indicators (Eq. 3) | a-priori indicator, inside the acquisition |
//!
//! In **Default** (constraint-unaware, "exhaustive") mode every method
//! reduces to its published baseline: plain random search \[5\], plain random
//! walk \[8\], and plain-EI Bayesian optimization — no models, no early
//! termination, every proposal trained to completion.

use std::fmt;

use hyperpower_gp::acquisition::{
    expected_improvement_at, lower_confidence_bound_at, probability_of_improvement_at,
};
use hyperpower_gp::sampler::uniform_candidates;
use hyperpower_gp::{fit_gp_hyperparams_laddered, FitOptions, Matern52, Prediction};
use hyperpower_linalg::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::drift::DegradationEvent;
use crate::{Config, ConstraintOracle, Error, Result, SearchSpace};

/// Highest jitter-ladder rung a BO surrogate fit may climb before the
/// searcher gives up on the GP for that proposal and degrades to a
/// Rand-Walk step (rungs `0..=MAX_JITTER_RUNGS`, noise floor ×100 each).
pub const MAX_JITTER_RUNGS: u32 = 2;

/// The search method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Random search (Bergstra & Bengio \[5\]).
    Rand,
    /// Random walk around the incumbent (Smithson et al. \[8\]).
    RandWalk,
    /// Bayesian optimization with Constraint-Weighted EI (Gelbart \[6\]).
    HwCwei,
    /// Bayesian optimization with the paper's hardware-aware Integrated
    /// Expected Conditional Improvement (Gramacy & Lee \[17\], Eq. 3).
    HwIeci,
}

impl Method {
    /// All four methods, in the paper's table order.
    pub const ALL: [Method; 4] = [
        Method::Rand,
        Method::RandWalk,
        Method::HwCwei,
        Method::HwIeci,
    ];

    /// Whether the method is model-free (random-based). Model-free methods
    /// apply the constraint models as a *rejection filter* before paying
    /// for training; BO methods fold them into the acquisition instead.
    pub fn is_model_free(&self) -> bool {
        matches!(self, Method::Rand | Method::RandWalk)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Rand => "Rand",
            Method::RandWalk => "Rand-Walk",
            Method::HwCwei => "HW-CWEI",
            Method::HwIeci => "HW-IECI",
        };
        f.write_str(s)
    }
}

/// Whether a run uses the HyperPower enhancements (predictive models +
/// early termination) or the published constraint-unaware baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Constraint-unaware, exhaustive baseline ("default" in the paper's
    /// tables).
    Default,
    /// Constraint-aware with early termination.
    HyperPower,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Default => "Default",
            Mode::HyperPower => "HyperPower",
        })
    }
}

/// One completed observation as the searchers see it.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The evaluated configuration.
    pub config: Config,
    /// Its observed test error (chance-level for diverged runs).
    pub error: f64,
}

/// The evaluation history a searcher conditions on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    observations: Vec<Observation>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records an observation.
    pub fn push(&mut self, config: Config, error: f64) {
        self.observations.push(Observation { config, error });
    }

    /// All observations in evaluation order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` if nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The incumbent: the observation with the lowest error.
    ///
    /// Non-finite errors (NaN from a diverged run, ±∞) can never displace
    /// a finite incumbent: finite observations are ranked first with
    /// `total_cmp` (which is total, so this never panics), and a
    /// non-finite observation is returned only when the history contains
    /// nothing else.
    pub fn best(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .filter(|o| o.error.is_finite())
            .min_by(|a, b| a.error.total_cmp(&b.error))
            .or_else(|| {
                self.observations
                    .iter()
                    .min_by(|a, b| a.error.total_cmp(&b.error))
            })
    }
}

/// How strongly a searcher's proposals depend on the evaluation history.
///
/// The parallel executor uses this to decide how far ahead it may plan:
/// [`Conditioning::Independent`] proposals can be drawn in blocks without
/// changing the sequence (random search draws from a fixed distribution,
/// grid search from a fixed lattice), while [`Conditioning::Dependent`]
/// searchers must see every committed result before the next proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Conditioning {
    /// Proposals ignore the history; planning ahead is exact.
    Independent,
    /// Proposals condition on the history (incumbent walks, BO posteriors).
    Dependent,
}

/// A strategy that proposes the next candidate configuration.
///
/// Proposals are *pre-screen*: for model-free methods in HyperPower mode
/// the driver applies the constraint-model rejection filter on top.
pub trait Searcher {
    /// Proposes the next candidate given the evaluation history.
    ///
    /// # Errors
    ///
    /// BO searchers propagate GP-fitting failures (which fall back to
    /// random proposals only when the history is degenerate).
    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &History,
        rng: &mut StdRng,
    ) -> Result<Config>;

    /// How strongly proposals depend on the history (see [`Conditioning`]).
    fn conditioning(&self) -> Conditioning {
        Conditioning::Dependent
    }

    /// Proposes the next candidate while `pending` configurations are still
    /// being evaluated (batch/parallel setting).
    ///
    /// The default ignores the pending set — correct for methods whose
    /// proposals carry fresh randomness (Rand, Rand-Walk draw a new point
    /// every call). Model-based searchers override this to avoid
    /// re-proposing where an answer is already on its way (see
    /// [`BoSearcher`]'s constant-liar strategy).
    ///
    /// With an empty `pending` set this must behave exactly like
    /// [`Searcher::propose`] — the executor relies on that equivalence to
    /// keep the single-GPU schedule byte-identical to the sequential loop.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Searcher::propose`].
    fn propose_with_pending(
        &mut self,
        space: &SearchSpace,
        history: &History,
        pending: &[Config],
        rng: &mut StdRng,
    ) -> Result<Config> {
        let _ = pending;
        self.propose(space, history, rng)
    }

    /// Proposes `k` candidates for concurrent evaluation.
    ///
    /// The default accumulates the batch through
    /// [`Searcher::propose_with_pending`], treating the batch-so-far as
    /// pending — the standard sequential-liar reduction of batch proposal.
    /// `k == 1` is therefore exactly one [`Searcher::propose`] call.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Searcher::propose`].
    fn propose_batch(
        &mut self,
        space: &SearchSpace,
        history: &History,
        k: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Config>> {
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            let next = self.propose_with_pending(space, history, &batch, rng)?;
            batch.push(next);
        }
        Ok(batch)
    }

    /// Drains the typed degradation events accumulated since the last call
    /// (jitter-ladder escalations, Rand-Walk fallbacks). The default is
    /// empty: model-free searchers have no surrogate to degrade.
    fn drain_degradations(&mut self) -> Vec<DegradationEvent> {
        Vec::new()
    }

    /// Replaces the searcher's constraint oracle after an online
    /// recalibration. The default ignores it: model-free methods consult
    /// the executor's oracle through the rejection filter, not a copy of
    /// their own.
    fn update_oracle(&mut self, oracle: &ConstraintOracle) {
        let _ = oracle;
    }
}

/// The degradation-ladder terminus: a Gaussian step around the incumbent
/// (Rand-Walk's proposal rule), or a uniform draw when the history holds no
/// finite incumbent. Used by BO searchers when the surrogate cannot be fit
/// even at the top jitter rung — one bad proposal step must not abort a
/// multi-hour search.
fn rand_walk_fallback(space: &SearchSpace, history: &History, rng: &mut StdRng) -> Config {
    match history.best() {
        Some(best) if best.error.is_finite() => {
            best.config.gaussian_step(RandomWalk::DEFAULT_SIGMA, rng)
        }
        _ => Config::random(rng, space.dim()),
    }
}

/// Uniform random search.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl Searcher for RandomSearch {
    fn propose(
        &mut self,
        space: &SearchSpace,
        _history: &History,
        rng: &mut StdRng,
    ) -> Result<Config> {
        Ok(Config::random(rng, space.dim()))
    }

    fn conditioning(&self) -> Conditioning {
        Conditioning::Independent
    }
}

/// Gaussian random walk around the incumbent
/// (`x_{n+1} ~ N(x⁺, σ₀²)`, paper §3.5).
#[derive(Debug, Clone, Copy)]
pub struct RandomWalk {
    /// Step standard deviation in unit-cube coordinates. The paper points
    /// out that performance is highly sensitive to this choice — the very
    /// weakness its Rand-Walk baselines exhibit.
    pub sigma: f64,
}

impl RandomWalk {
    /// The σ₀ used by the experiments.
    pub const DEFAULT_SIGMA: f64 = 0.12;

    /// Creates a walk with the given step size.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        RandomWalk { sigma }
    }
}

impl Default for RandomWalk {
    fn default() -> Self {
        RandomWalk::new(Self::DEFAULT_SIGMA)
    }
}

impl Searcher for RandomWalk {
    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &History,
        rng: &mut StdRng,
    ) -> Result<Config> {
        match history.best() {
            None => Ok(Config::random(rng, space.dim())),
            Some(best) => Ok(best.config.gaussian_step(self.sigma, rng)),
        }
    }
}

/// Exhaustive grid search over an axis-aligned lattice.
///
/// The paper's introduction dismisses grid search as yielding "poor
/// results in terms of performance and training time" in NN
/// hyper-parameter spaces; this implementation exists as that baseline
/// (see the `baseline_grid_search` example/bench). Points are visited in
/// a deterministic lattice order; once the lattice is exhausted the
/// search refines it by doubling the per-dimension resolution.
#[derive(Debug, Clone)]
pub struct GridSearch {
    points_per_dim: usize,
    cursor: usize,
}

impl GridSearch {
    /// Creates a grid with `points_per_dim` levels per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `points_per_dim < 2`.
    pub fn new(points_per_dim: usize) -> Self {
        assert!(
            points_per_dim >= 2,
            "need at least two levels per dimension"
        );
        GridSearch {
            points_per_dim,
            cursor: 0,
        }
    }

    /// Decodes lattice index `cursor` into a unit-cube point.
    fn lattice_point(&self, mut index: usize, dim: usize) -> Vec<f64> {
        let levels = self.points_per_dim;
        (0..dim)
            .map(|_| {
                let level = index % levels;
                index /= levels;
                // Centre levels within their cells: 1/2L, 3/2L, ...
                (level as f64 + 0.5) / levels as f64
            })
            .collect()
    }
}

impl Searcher for GridSearch {
    fn propose(
        &mut self,
        space: &SearchSpace,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Result<Config> {
        let dim = space.dim();
        let total = self.points_per_dim.pow(dim.min(12) as u32);
        if self.cursor >= total {
            // Lattice exhausted: refine.
            self.points_per_dim *= 2;
            self.cursor = 0;
        }
        let unit = self.lattice_point(self.cursor, dim);
        self.cursor += 1;
        Config::new(unit)
    }

    fn conditioning(&self) -> Conditioning {
        Conditioning::Independent
    }
}

/// How a BO searcher weights EI by the constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintWeighting {
    /// No weighting: plain EI (the Default mode of both BO methods).
    None,
    /// HW-CWEI: multiply EI by the probability of constraint satisfaction.
    Probability,
    /// HW-IECI: multiply EI by hard indicator functions (paper Eq. 3).
    Indicator,
}

/// The improvement criterion underneath a BO searcher's acquisition.
///
/// The paper uses Expected Improvement and "leaves the systematic
/// exploration of other acquisition functions for future work" (§3.4);
/// the alternatives here implement that exploration (see the
/// `ablation_acquisitions` bench).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BaseAcquisition {
    /// Expected Improvement (the paper's choice).
    #[default]
    ExpectedImprovement,
    /// Probability of Improvement: greedier, ignores improvement size.
    ProbabilityOfImprovement,
    /// Negated Lower Confidence Bound with exploration weight `beta`.
    LowerConfidenceBound {
        /// Exploration weight (≥ 0); 2.0 is a common default.
        beta: f64,
    },
}

/// Gaussian-process Bayesian optimization with a constraint-weighted
/// Expected Improvement acquisition, maximised over a random candidate
/// grid (as Spearmint does).
#[derive(Debug, Clone)]
pub struct BoSearcher {
    weighting: ConstraintWeighting,
    oracle: Option<ConstraintOracle>,
    /// The improvement criterion (EI by default, per the paper).
    pub base_acquisition: BaseAcquisition,
    /// Candidate-grid size per iteration.
    pub candidates: usize,
    /// Observations required before the GP takes over from random
    /// proposals.
    pub min_observations: usize,
    /// Surrogate-fit options; the noise floor is the base of the jitter
    /// ladder.
    pub fit_options: FitOptions,
    degradations: Vec<DegradationEvent>,
}

impl BoSearcher {
    /// Constant-liar error assumed for in-flight candidates when the
    /// history holds no finite incumbent yet: chance-ish MNIST/CIFAR test
    /// error, i.e. "assume the pending run diverges".
    pub const CONSTANT_LIAR_FALLBACK: f64 = 0.9;

    /// Candidate-block size for batched GP scoring: each block becomes one
    /// multi-RHS triangular solve through
    /// [`GpRegressor::posterior_batch`](hyperpower_gp::GpRegressor::posterior_batch)
    /// instead of one solve per candidate. Large enough to amortize the
    /// factor traversal, small enough to keep the per-block scratch matrix
    /// in cache. Batching never changes scores: the batched posterior is
    /// bit-identical to per-point `predict`.
    pub const GP_SCORE_BLOCK: usize = 64;

    /// Creates a BO searcher with the paper's Expected Improvement base.
    ///
    /// # Panics
    ///
    /// Panics if a constraint weighting other than
    /// [`ConstraintWeighting::None`] is requested without an oracle.
    pub fn new(weighting: ConstraintWeighting, oracle: Option<ConstraintOracle>) -> Self {
        assert!(
            weighting == ConstraintWeighting::None || oracle.is_some(),
            "constraint weighting requires a fitted constraint oracle"
        );
        BoSearcher {
            weighting,
            oracle,
            base_acquisition: BaseAcquisition::default(),
            candidates: 500,
            min_observations: 3,
            fit_options: FitOptions {
                restarts: 2,
                max_evals_per_restart: 80,
                min_noise_variance: 1e-6,
            },
            degradations: Vec::new(),
        }
    }

    /// Replaces the improvement criterion (builder style).
    pub fn with_base_acquisition(mut self, base: BaseAcquisition) -> Self {
        self.base_acquisition = base;
        self
    }

    fn acquisition_weight(&self, space: &SearchSpace, candidate: &Config) -> Result<f64> {
        let weight = match (self.weighting, &self.oracle) {
            (ConstraintWeighting::None, _) => 1.0,
            (ConstraintWeighting::Probability, Some(oracle)) => {
                let z = space.structural_values(candidate)?;
                oracle.feasibility_probability(&z)
            }
            (ConstraintWeighting::Indicator, Some(oracle)) => {
                let z = space.structural_values(candidate)?;
                if oracle.predicted_feasible(&z) {
                    1.0
                } else {
                    0.0
                }
            }
            (_, None) => unreachable!("checked at construction"),
        };
        Ok(weight)
    }
}

impl Searcher for BoSearcher {
    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &History,
        rng: &mut StdRng,
    ) -> Result<Config> {
        if history.len() < self.min_observations {
            // Seed phase: random designs. Under the hard indicator
            // (HW-IECI) even the seeds must be predicted feasible — the
            // paper's "never considering invalid configurations" claim
            // covers the whole run.
            if let (ConstraintWeighting::Indicator, Some(oracle)) = (self.weighting, &self.oracle) {
                for _ in 0..10_000 {
                    let candidate = Config::random(rng, space.dim());
                    let z = space.structural_values(&candidate)?;
                    if oracle.predicted_feasible(&z) {
                        return Ok(candidate);
                    }
                }
                // Effectively empty feasible region: fall through to an
                // unfiltered random seed.
            }
            return Ok(Config::random(rng, space.dim()));
        }

        // Fit the surrogate to the finite observations: a NaN error from a
        // diverged run carries no ranking information and would be rejected
        // by the GP fit anyway.
        let d = space.dim();
        let mut data = Vec::with_capacity(history.len() * d);
        let mut y = Vec::with_capacity(history.len());
        for obs in history.observations() {
            if !obs.error.is_finite() {
                continue;
            }
            data.extend_from_slice(obs.config.unit());
            y.push(obs.error);
        }
        let n = y.len();
        if n < self.min_observations {
            return Ok(Config::random(rng, space.dim()));
        }
        let x = Matrix::from_vec(n, d, data).map_err(Error::Numerical)?;
        let fitted = match fit_gp_hyperparams_laddered(
            Matern52::new(0.5).into_kernel(),
            &x,
            &y,
            self.fit_options,
            MAX_JITTER_RUNGS,
        ) {
            Ok(laddered) => {
                if laddered.rungs > 0 {
                    self.degradations.push(DegradationEvent::JitterEscalated {
                        rung: laddered.rungs,
                    });
                }
                laddered.fitted
            }
            Err(_) => {
                // Bottom of the ladder: degrade this proposal to a
                // Rand-Walk step instead of aborting the whole search.
                self.degradations.push(DegradationEvent::RandWalkFallback);
                return Ok(rand_walk_fallback(space, history, rng));
            }
        };
        // min_observations guards this, but an empty history (possible
        // with min_observations == 0) must degrade to a random seed, not
        // panic.
        let best = match history.best() {
            Some(b) => b.error,
            None => return Ok(Config::random(rng, space.dim())),
        };

        // Score the grid constraint-first (HW-IECI/HW-CWEI): the hardware
        // weight is a dot product per candidate, orders of magnitude
        // cheaper than a GP posterior, so it is computed for the whole
        // grid before any objective work.
        let grid = uniform_candidates(rng, self.candidates, d);
        let mut weighted: Vec<(Config, f64)> = Vec::with_capacity(grid.rows());
        for i in 0..grid.rows() {
            let candidate = Config::new(grid.row(i).to_vec())?;
            let weight = self.acquisition_weight(space, &candidate)?;
            weighted.push((candidate, weight));
        }

        // Combine base and constraint weight. EI/PI are non-negative, so
        // multiplication composes (paper Eq. 3); LCB can be negative, so
        // infeasibility is charged as a penalty scaled to the grid's score
        // range instead.
        let lcb = matches!(
            self.base_acquisition,
            BaseAcquisition::LowerConfidenceBound { .. }
        );
        let any_feasible = weighted.iter().any(|(_, w)| *w > 0.0);
        // The expensive objective runs only where its value can reach the
        // proposal: LCB's penalty form needs every base, EI/PI need bases
        // for predicted-feasible candidates — and for the whole grid only
        // when nothing is feasible and the unweighted fallback will have
        // to decide. A skipped base contributes base * 0.0 == 0.0 exactly
        // as before, so selection is unchanged.
        //
        // Candidates that do need a base are scored in blocks of
        // [`Self::GP_SCORE_BLOCK`] through the batched posterior — one
        // multi-RHS triangular solve per block instead of one solve per
        // candidate. `posterior_batch` is bit-identical to per-point
        // `predict` (pinned by `crates/gp/tests/posterior_batch.rs`), so
        // the acquisition sees the same numbers either way.
        let needs_base: Vec<usize> = weighted
            .iter()
            .enumerate()
            .filter(|(_, (_, weight))| lcb || *weight > 0.0 || !any_feasible)
            .map(|(i, _)| i)
            .collect();
        let mut bases = vec![0.0f64; weighted.len()];
        for block in needs_base.chunks(Self::GP_SCORE_BLOCK) {
            let mut units = Vec::with_capacity(block.len() * d);
            for &i in block {
                units.extend_from_slice(weighted[i].0.unit());
            }
            let queries = Matrix::from_vec(block.len(), d, units).map_err(Error::Numerical)?;
            let (means, variances) = fitted.gp.posterior_batch(&queries)?;
            for (q, &i) in block.iter().enumerate() {
                let prediction = Prediction {
                    mean: means[q],
                    variance: variances[q],
                };
                bases[i] = match self.base_acquisition {
                    BaseAcquisition::ExpectedImprovement => {
                        expected_improvement_at(prediction, best)
                    }
                    BaseAcquisition::ProbabilityOfImprovement => {
                        probability_of_improvement_at(prediction, best)
                    }
                    BaseAcquisition::LowerConfidenceBound { beta } => {
                        lower_confidence_bound_at(prediction, beta)
                    }
                };
            }
        }
        let scored: Vec<(Config, f64, f64)> = weighted
            .into_iter()
            .zip(bases)
            .map(|((candidate, weight), base)| (candidate, base, weight))
            .collect();
        if lcb {
            let lo = scored
                .iter()
                .map(|(_, b, _)| *b)
                .fold(f64::INFINITY, f64::min);
            let hi = scored
                .iter()
                .map(|(_, b, _)| *b)
                .fold(f64::NEG_INFINITY, f64::max);
            let span = (hi - lo).max(1e-9);
            let winner = scored
                .into_iter()
                .map(|(c, b, w)| {
                    let s = b - 10.0 * span * (1.0 - w);
                    (c, s)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            return match winner {
                Some((c, _)) => Ok(c),
                // Zero-sized candidate grid: degrade to a random proposal.
                None => Ok(Config::random(rng, space.dim())),
            };
        }

        let mut best_candidate: Option<(Config, f64)> = None;
        // Best candidate with *any* constraint weight (kept feasible even
        // when every EI underflows to zero during exploitation) and the
        // best unweighted candidate as a last resort.
        let mut best_weighted: Option<(Config, f64, f64)> = None; // (cfg, weight, base)
        let mut best_unweighted: Option<(Config, f64)> = None;
        for (candidate, base, weight) in scored {
            let score = base * weight;
            if best_candidate.as_ref().is_none_or(|(_, s)| score > *s) {
                best_candidate = Some((candidate.clone(), score));
            }
            if weight > 0.0
                && best_weighted
                    .as_ref()
                    .is_none_or(|(_, w, b)| (weight, base) > (*w, *b))
            {
                best_weighted = Some((candidate.clone(), weight, base));
            }
            if best_unweighted.as_ref().is_none_or(|(_, b)| base > *b) {
                best_unweighted = Some((candidate, base));
            }
        }
        let Some((winner, score)) = best_candidate else {
            // Zero-sized candidate grid: degrade to a random proposal.
            return Ok(Config::random(rng, space.dim()));
        };
        if score > 0.0 {
            Ok(winner)
        } else if let Some((feasible, _, _)) = best_weighted {
            // All improvement mass vanished: stay inside the
            // predicted-feasible region rather than proposing a violator.
            Ok(feasible)
        } else if let Some((fallback, _)) = best_unweighted {
            // The whole grid is predicted infeasible (pathologically tight
            // budgets): fall back to the best unweighted point.
            Ok(fallback)
        } else {
            Ok(winner)
        }
    }

    /// Constant liar (CL-min): the pending candidates are folded into the
    /// history as fabricated observations at the incumbent's error, so the
    /// acquisition stops seeing their neighbourhoods as unexplored and the
    /// batch spreads out instead of proposing near-duplicates. With no
    /// finite incumbent the lie is [`BoSearcher::CONSTANT_LIAR_FALLBACK`].
    ///
    /// An empty `pending` set takes the plain [`Searcher::propose`] path,
    /// byte-identical to the sequential loop.
    fn propose_with_pending(
        &mut self,
        space: &SearchSpace,
        history: &History,
        pending: &[Config],
        rng: &mut StdRng,
    ) -> Result<Config> {
        if pending.is_empty() {
            return self.propose(space, history, rng);
        }
        let lie = match history.best() {
            Some(b) if b.error.is_finite() => b.error,
            _ => Self::CONSTANT_LIAR_FALLBACK,
        };
        let mut augmented = history.clone();
        for config in pending {
            augmented.push(config.clone(), lie);
        }
        self.propose(space, &augmented, rng)
    }

    fn drain_degradations(&mut self) -> Vec<DegradationEvent> {
        std::mem::take(&mut self.degradations)
    }

    fn update_oracle(&mut self, oracle: &ConstraintOracle) {
        // Only replace an oracle this searcher already weights by: a
        // Default-mode searcher stays constraint-unaware.
        if self.oracle.is_some() {
            self.oracle = Some(oracle.clone());
        }
    }
}

/// Thompson-sampling Bayesian optimization (extension).
///
/// Instead of maximising an acquisition *score*, each iteration draws one
/// correlated sample of the objective from the GP's **joint posterior**
/// over a candidate grid and proposes the sample's argmin. Exploration
/// emerges from posterior uncertainty; there is no explicit trade-off
/// parameter. Constraints are handled HW-IECI-style: predicted-infeasible
/// candidates are excluded from the argmin (and from the seed proposals).
#[derive(Debug, Clone)]
pub struct ThompsonSearcher {
    oracle: Option<ConstraintOracle>,
    /// Candidate-grid size per iteration. Joint-posterior sampling is
    /// O(grid³), so this is smaller than [`BoSearcher`]'s grid.
    pub candidates: usize,
    /// Observations required before the GP takes over from random
    /// proposals.
    pub min_observations: usize,
    /// Surrogate-fit options; the noise floor is the base of the jitter
    /// ladder.
    pub fit_options: FitOptions,
    degradations: Vec<DegradationEvent>,
}

impl ThompsonSearcher {
    /// Creates a Thompson-sampling searcher; with an oracle it proposes
    /// only predicted-feasible candidates.
    pub fn new(oracle: Option<ConstraintOracle>) -> Self {
        ThompsonSearcher {
            oracle,
            candidates: 120,
            min_observations: 3,
            fit_options: FitOptions {
                restarts: 2,
                max_evals_per_restart: 80,
                min_noise_variance: 1e-6,
            },
            degradations: Vec::new(),
        }
    }

    fn feasible_random(&self, space: &SearchSpace, rng: &mut StdRng) -> Result<Config> {
        if let Some(oracle) = &self.oracle {
            for _ in 0..10_000 {
                let candidate = Config::random(rng, space.dim());
                if oracle.predicted_feasible(&space.structural_values(&candidate)?) {
                    return Ok(candidate);
                }
            }
        }
        Ok(Config::random(rng, space.dim()))
    }
}

impl Searcher for ThompsonSearcher {
    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &History,
        rng: &mut StdRng,
    ) -> Result<Config> {
        if history.len() < self.min_observations {
            return self.feasible_random(space, rng);
        }

        let d = space.dim();
        let mut data = Vec::with_capacity(history.len() * d);
        let mut y = Vec::with_capacity(history.len());
        for obs in history.observations() {
            if !obs.error.is_finite() {
                continue;
            }
            data.extend_from_slice(obs.config.unit());
            y.push(obs.error);
        }
        let n = y.len();
        if n < self.min_observations {
            return self.feasible_random(space, rng);
        }
        let x = Matrix::from_vec(n, d, data).map_err(Error::Numerical)?;
        let fitted = match fit_gp_hyperparams_laddered(
            Matern52::new(0.5).into_kernel(),
            &x,
            &y,
            self.fit_options,
            MAX_JITTER_RUNGS,
        ) {
            Ok(laddered) => {
                if laddered.rungs > 0 {
                    self.degradations.push(DegradationEvent::JitterEscalated {
                        rung: laddered.rungs,
                    });
                }
                laddered.fitted
            }
            Err(_) => {
                self.degradations.push(DegradationEvent::RandWalkFallback);
                return Ok(rand_walk_fallback(space, history, rng));
            }
        };

        // Candidate grid, constraint-filtered up front.
        let grid = uniform_candidates(rng, self.candidates * 4, d);
        let mut candidates = Vec::with_capacity(self.candidates);
        for i in 0..grid.rows() {
            if candidates.len() >= self.candidates {
                break;
            }
            let candidate = Config::new(grid.row(i).to_vec())?;
            let admissible = match &self.oracle {
                Some(oracle) => oracle.predicted_feasible(&space.structural_values(&candidate)?),
                None => true,
            };
            if admissible {
                candidates.push(candidate);
            }
        }
        if candidates.is_empty() {
            return self.feasible_random(space, rng);
        }

        // One correlated posterior draw; propose its argmin.
        let m = candidates.len();
        let mut q = Vec::with_capacity(m * d);
        for c in &candidates {
            q.extend_from_slice(c.unit());
        }
        let queries = Matrix::from_vec(m, d, q).map_err(Error::Numerical)?;
        let normals: Vec<f64> = (0..m)
            .map(|_| {
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        let sample = match fitted.gp.sample_posterior(&queries, &normals) {
            Ok(sample) => sample,
            Err(_) => {
                // Joint-posterior factorization failed even though the fit
                // succeeded: same terminus as a failed fit.
                self.degradations.push(DegradationEvent::RandWalkFallback);
                return Ok(rand_walk_fallback(space, history, rng));
            }
        };
        let argmin = sample
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        match argmin {
            Some(i) => Ok(candidates.swap_remove(i)),
            // Unreachable while `candidates` is checked non-empty above,
            // but a panic-free fallback costs nothing.
            None => self.feasible_random(space, rng),
        }
    }

    fn drain_degradations(&mut self) -> Vec<DegradationEvent> {
        std::mem::take(&mut self.degradations)
    }

    fn update_oracle(&mut self, oracle: &ConstraintOracle) {
        if self.oracle.is_some() {
            self.oracle = Some(oracle.clone());
        }
    }
}

/// Builds the searcher for a `(method, mode)` pair. The oracle must be
/// `Some` in HyperPower mode (the session supplies it) and is ignored for
/// model-free methods, whose rejection filter lives in the driver.
pub(crate) fn make_searcher(
    method: Method,
    mode: Mode,
    oracle: Option<ConstraintOracle>,
) -> Box<dyn Searcher> {
    let bo_oracle = match mode {
        Mode::Default => None,
        Mode::HyperPower => oracle,
    };
    match (method, mode) {
        (Method::Rand, _) => Box::new(RandomSearch),
        (Method::RandWalk, _) => Box::new(RandomWalk::default()),
        (Method::HwCwei, Mode::Default) | (Method::HwIeci, Mode::Default) => {
            Box::new(BoSearcher::new(ConstraintWeighting::None, None))
        }
        (Method::HwCwei, Mode::HyperPower) => {
            Box::new(BoSearcher::new(ConstraintWeighting::Probability, bo_oracle))
        }
        (Method::HwIeci, Mode::HyperPower) => {
            Box::new(BoSearcher::new(ConstraintWeighting::Indicator, bo_oracle))
        }
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn history_from(points: &[(Vec<f64>, f64)]) -> History {
        let mut h = History::new();
        for (unit, err) in points {
            h.push(Config::new(unit.clone()).unwrap(), *err);
        }
        h
    }

    #[test]
    fn method_display_matches_paper_names() {
        assert_eq!(Method::Rand.to_string(), "Rand");
        assert_eq!(Method::RandWalk.to_string(), "Rand-Walk");
        assert_eq!(Method::HwCwei.to_string(), "HW-CWEI");
        assert_eq!(Method::HwIeci.to_string(), "HW-IECI");
        assert_eq!(Mode::Default.to_string(), "Default");
        assert_eq!(Mode::HyperPower.to_string(), "HyperPower");
    }

    #[test]
    fn model_free_classification() {
        assert!(Method::Rand.is_model_free());
        assert!(Method::RandWalk.is_model_free());
        assert!(!Method::HwCwei.is_model_free());
        assert!(!Method::HwIeci.is_model_free());
    }

    #[test]
    fn history_tracks_incumbent() {
        let h = history_from(&[
            (vec![0.1; 6], 0.5),
            (vec![0.2; 6], 0.2),
            (vec![0.3; 6], 0.9),
        ]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.best().unwrap().error, 0.2);
        assert!(History::new().best().is_none());
    }

    #[test]
    fn nan_objective_cannot_panic_or_become_incumbent() {
        // Regression guard for the incumbent-selection invariant: a
        // diverged run reporting NaN must neither panic the comparator
        // nor be selected over any finite observation.
        let mut h = history_from(&[(vec![0.2; 6], 0.4), (vec![0.6; 6], 0.7)]);
        h.push(Config::new(vec![0.4; 6]).unwrap(), f64::NAN);
        h.push(Config::new(vec![0.5; 6]).unwrap(), f64::NEG_INFINITY);
        h.push(Config::new(vec![0.7; 6]).unwrap(), -f64::NAN);
        let best = h.best().unwrap();
        assert_eq!(best.error, 0.4, "non-finite error displaced the incumbent");

        // A history of only non-finite errors still answers without
        // panicking (callers see the degenerate value and can react).
        let mut degenerate = History::new();
        degenerate.push(Config::new(vec![0.1; 6]).unwrap(), f64::NAN);
        assert!(degenerate.best().unwrap().error.is_nan());

        // And the BO proposal path survives a NaN observation end to end.
        let space = SearchSpace::mnist();
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        let mut r = rng();
        let c = s.propose(&space, &h, &mut r).unwrap();
        assert_eq!(c.dim(), 6);
    }

    #[test]
    fn random_search_proposes_valid_configs() {
        let space = SearchSpace::mnist();
        let mut s = RandomSearch;
        let mut r = rng();
        for _ in 0..50 {
            let c = s.propose(&space, &History::new(), &mut r).unwrap();
            assert_eq!(c.dim(), 6);
            assert!(space.decode(&c).is_ok());
        }
    }

    #[test]
    fn random_walk_stays_near_incumbent() {
        let space = SearchSpace::mnist();
        let mut s = RandomWalk::new(0.05);
        let mut r = rng();
        let h = history_from(&[(vec![0.5; 6], 0.1)]);
        for _ in 0..30 {
            let c = s.propose(&space, &h, &mut r).unwrap();
            for (a, b) in c.unit().iter().zip(&[0.5; 6]) {
                assert!((a - b).abs() < 0.3, "walk step too large");
            }
        }
    }

    #[test]
    fn random_walk_uniform_without_history() {
        let space = SearchSpace::mnist();
        let mut s = RandomWalk::default();
        let mut r = rng();
        let c = s.propose(&space, &History::new(), &mut r).unwrap();
        assert_eq!(c.dim(), 6);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn bad_sigma_panics() {
        RandomWalk::new(0.0);
    }

    #[test]
    fn bo_random_until_min_observations() {
        let space = SearchSpace::mnist();
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        let mut r = rng();
        let h = history_from(&[(vec![0.5; 6], 0.3)]);
        // Below min_observations: must not fail, proposes randomly.
        let c = s.propose(&space, &h, &mut r).unwrap();
        assert_eq!(c.dim(), 6);
    }

    #[test]
    fn bo_exploits_low_error_region() {
        // Errors fall toward unit coordinates near 0.8: BO should propose
        // in that neighbourhood more often than uniform chance.
        let space = SearchSpace::mnist();
        let mut h = History::new();
        let mut r = rng();
        for i in 0..12 {
            let u = i as f64 / 11.0;
            let config = Config::new(vec![u; 6]).unwrap();
            let err = (u - 0.8).abs() + 0.05;
            h.push(config, err);
        }
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        let mut near = 0;
        for _ in 0..10 {
            let c = s.propose(&space, &h, &mut r).unwrap();
            let mean_u: f64 = c.unit().iter().sum::<f64>() / 6.0;
            if (mean_u - 0.8).abs() < 0.25 {
                near += 1;
            }
        }
        assert!(near >= 5, "only {near}/10 proposals near the optimum");
    }

    #[test]
    #[should_panic(expected = "requires a fitted constraint oracle")]
    fn weighted_bo_without_oracle_panics() {
        BoSearcher::new(ConstraintWeighting::Indicator, None);
    }

    #[test]
    fn grid_search_visits_distinct_lattice_points() {
        let space = SearchSpace::mnist();
        let mut g = GridSearch::new(2);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        // 2^6 = 64 lattice points, all distinct.
        for _ in 0..64 {
            let c = g.propose(&space, &History::new(), &mut r).unwrap();
            let key: Vec<u64> = c.unit().iter().map(|u| u.to_bits()).collect();
            assert!(seen.insert(key), "grid revisited a point prematurely");
        }
        // The 65th proposal starts the refined (4-level) lattice.
        let c = g.propose(&space, &History::new(), &mut r).unwrap();
        assert!(c.unit().iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn grid_points_are_cell_centres() {
        let space = SearchSpace::mnist();
        let mut g = GridSearch::new(2);
        let mut r = rng();
        let c = g.propose(&space, &History::new(), &mut r).unwrap();
        assert_eq!(c.unit(), &[0.25; 6]);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn degenerate_grid_panics() {
        GridSearch::new(1);
    }

    #[test]
    fn thompson_sampler_proposes_valid_configs() {
        let space = SearchSpace::mnist();
        let mut s = ThompsonSearcher::new(None);
        let mut r = rng();
        // Seed phase.
        let c = s.propose(&space, &History::new(), &mut r).unwrap();
        assert_eq!(c.dim(), 6);
        // Model phase.
        let mut h = History::new();
        for i in 0..8 {
            let u = i as f64 / 7.0;
            h.push(Config::new(vec![u; 6]).unwrap(), (u - 0.6).abs() + 0.1);
        }
        for _ in 0..5 {
            let c = s.propose(&space, &h, &mut r).unwrap();
            assert!(space.decode(&c).is_ok());
        }
    }

    #[test]
    fn thompson_sampler_exploits_low_error_region() {
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..12 {
            let u = i as f64 / 11.0;
            h.push(Config::new(vec![u; 6]).unwrap(), (u - 0.8).abs() + 0.05);
        }
        let mut s = ThompsonSearcher::new(None);
        let mut r = rng();
        let mut near = 0;
        for _ in 0..10 {
            let c = s.propose(&space, &h, &mut r).unwrap();
            let mean_u: f64 = c.unit().iter().sum::<f64>() / 6.0;
            if (mean_u - 0.8).abs() < 0.35 {
                near += 1;
            }
        }
        assert!(
            near >= 5,
            "only {near}/10 Thompson proposals near the optimum"
        );
    }

    #[test]
    fn thompson_proposals_vary_across_draws() {
        // Exploration: repeated proposals from the same posterior differ.
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..6 {
            let u = i as f64 / 5.0;
            h.push(Config::new(vec![u; 6]).unwrap(), 0.5 - 0.1 * u);
        }
        let mut s = ThompsonSearcher::new(None);
        let mut r = rng();
        let a = s.propose(&space, &h, &mut r).unwrap();
        let b = s.propose(&space, &h, &mut r).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn alternative_acquisitions_propose_valid_configs() {
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..8 {
            let u = i as f64 / 7.0;
            h.push(Config::new(vec![u; 6]).unwrap(), (u - 0.6).abs() + 0.1);
        }
        for base in [
            BaseAcquisition::ExpectedImprovement,
            BaseAcquisition::ProbabilityOfImprovement,
            BaseAcquisition::LowerConfidenceBound { beta: 2.0 },
        ] {
            let mut s =
                BoSearcher::new(ConstraintWeighting::None, None).with_base_acquisition(base);
            let mut r = rng();
            let c = s.propose(&space, &h, &mut r).unwrap();
            assert_eq!(c.dim(), 6);
            assert!(space.decode(&c).is_ok());
        }
    }

    #[test]
    fn lcb_exploits_low_error_region_too() {
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..12 {
            let u = i as f64 / 11.0;
            h.push(Config::new(vec![u; 6]).unwrap(), (u - 0.8).abs() + 0.05);
        }
        let mut s = BoSearcher::new(ConstraintWeighting::None, None)
            .with_base_acquisition(BaseAcquisition::LowerConfidenceBound { beta: 1.0 });
        let mut r = rng();
        let mut near = 0;
        for _ in 0..10 {
            let c = s.propose(&space, &h, &mut r).unwrap();
            let mean_u: f64 = c.unit().iter().sum::<f64>() / 6.0;
            if (mean_u - 0.8).abs() < 0.3 {
                near += 1;
            }
        }
        assert!(near >= 5, "only {near}/10 LCB proposals near the optimum");
    }

    #[test]
    fn conditioning_classification() {
        assert_eq!(RandomSearch.conditioning(), Conditioning::Independent);
        assert_eq!(GridSearch::new(2).conditioning(), Conditioning::Independent);
        assert_eq!(
            RandomWalk::default().conditioning(),
            Conditioning::Dependent
        );
        assert_eq!(
            BoSearcher::new(ConstraintWeighting::None, None).conditioning(),
            Conditioning::Dependent
        );
        assert_eq!(
            ThompsonSearcher::new(None).conditioning(),
            Conditioning::Dependent
        );
    }

    #[test]
    fn propose_batch_of_one_equals_propose() {
        // The executor's byte-identity argument rests on k == 1 being the
        // plain sequential proposal for every searcher.
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..6 {
            let u = i as f64 / 5.0;
            h.push(Config::new(vec![u; 6]).unwrap(), (u - 0.6).abs() + 0.1);
        }
        // Fresh instances per call: stateful searchers (grid cursor) must
        // not see the first call before making the second.
        let make: Vec<fn() -> Box<dyn Searcher>> = vec![
            || Box::new(RandomSearch),
            || Box::new(RandomWalk::default()),
            || Box::new(GridSearch::new(2)),
            || Box::new(BoSearcher::new(ConstraintWeighting::None, None)),
            || Box::new(ThompsonSearcher::new(None)),
        ];
        for f in make {
            let mut r1 = rng();
            let mut r2 = rng();
            let batch = f().propose_batch(&space, &h, 1, &mut r1).unwrap();
            let single = f().propose(&space, &h, &mut r2).unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0], single);
        }
    }

    #[test]
    fn propose_batch_draws_k_valid_points() {
        let space = SearchSpace::mnist();
        let mut s = RandomSearch;
        let mut r = rng();
        let batch = s.propose_batch(&space, &History::new(), 4, &mut r).unwrap();
        assert_eq!(batch.len(), 4);
        for c in &batch {
            assert!(space.decode(c).is_ok());
        }
        // Fresh randomness per point: no duplicates in a continuous space.
        for (i, a) in batch.iter().enumerate() {
            for b in &batch[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn constant_liar_spreads_bo_batches() {
        // With a fitted GP, the liar entries must keep the batch from
        // collapsing onto one acquisition argmax neighbourhood.
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..10 {
            let u = i as f64 / 9.0;
            h.push(Config::new(vec![u; 6]).unwrap(), (u - 0.7).abs() + 0.05);
        }
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        let mut r = rng();
        let batch = s.propose_batch(&space, &h, 3, &mut r).unwrap();
        assert_eq!(batch.len(), 3);
        for (i, a) in batch.iter().enumerate() {
            assert!(space.decode(a).is_ok());
            for b in &batch[i + 1..] {
                assert_ne!(a, b, "batch proposals collapsed onto one point");
            }
        }
    }

    #[test]
    fn constant_liar_uses_fallback_without_finite_incumbent() {
        // All-NaN history: the liar value must not poison the GP with NaN.
        let space = SearchSpace::mnist();
        let mut h = History::new();
        for i in 0..4 {
            let u = 0.1 + 0.2 * i as f64;
            h.push(Config::new(vec![u; 6]).unwrap(), f64::NAN);
        }
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        let mut r = rng();
        let batch = s.propose_batch(&space, &h, 3, &mut r).unwrap();
        assert_eq!(batch.len(), 3);
        for c in &batch {
            assert!(space.decode(c).is_ok());
        }
    }

    #[test]
    fn poisoned_fit_degrades_to_rand_walk_without_failing() {
        // A noise floor of NaN fails every jitter rung; the searcher must
        // still return Ok and record the downgrade as a typed event.
        let space = SearchSpace::mnist();
        let h = history_from(&[
            (vec![0.2; 6], 0.5),
            (vec![0.4; 6], 0.3),
            (vec![0.6; 6], 0.7),
            (vec![0.8; 6], 0.6),
        ]);
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        s.fit_options.min_noise_variance = f64::NAN;
        let mut r = rng();
        let c = s.propose(&space, &h, &mut r).unwrap();
        assert!(space.decode(&c).is_ok());
        let events = s.drain_degradations();
        assert_eq!(events, vec![DegradationEvent::RandWalkFallback]);
        // The drain is a take: a second call reports nothing.
        assert!(s.drain_degradations().is_empty());

        let mut t = ThompsonSearcher::new(None);
        t.fit_options.min_noise_variance = f64::NAN;
        let c = t.propose(&space, &h, &mut r).unwrap();
        assert!(space.decode(&c).is_ok());
        assert_eq!(
            t.drain_degradations(),
            vec![DegradationEvent::RandWalkFallback]
        );
    }

    #[test]
    fn clean_fit_reports_no_degradations() {
        let space = SearchSpace::mnist();
        let h = history_from(&[
            (vec![0.2; 6], 0.5),
            (vec![0.4; 6], 0.3),
            (vec![0.6; 6], 0.7),
            (vec![0.8; 6], 0.6),
        ]);
        let mut s = BoSearcher::new(ConstraintWeighting::None, None);
        let mut r = rng();
        let _ = s.propose(&space, &h, &mut r).unwrap();
        assert!(s.drain_degradations().is_empty());
        // Model-free searchers use the defaulted hook.
        let mut rand = RandomSearch;
        assert!(Searcher::drain_degradations(&mut rand).is_empty());
    }

    #[test]
    fn make_searcher_covers_all_combinations() {
        // Default mode never needs an oracle.
        for m in Method::ALL {
            let _ = make_searcher(m, Mode::Default, None);
        }
        // Model-free HyperPower searchers don't hold the oracle either
        // (the driver screens); BO HyperPower methods require it, supplied
        // by the session — here we just check the model-free paths.
        let _ = make_searcher(Method::Rand, Mode::HyperPower, None);
        let _ = make_searcher(Method::RandWalk, Mode::HyperPower, None);
    }
}
