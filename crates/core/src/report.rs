//! Aggregation of run traces into the paper's Tables 2–5.
//!
//! Each table compares, per method, the constraint-unaware **Default**
//! baseline against the **HyperPower** variant over a set of paired runs
//! (same run index → same seed family). Cells that the paper prints as
//! "–" (a method that never found a feasible design) are represented as
//! `None`.
//!
//! Aggregation conventions follow the paper: means (and standard
//! deviations) across runs for the value columns, and the **geometric
//! mean across paired runs** for speedup/increase columns.

use hyperpower_linalg::stats;

use crate::driver::Trace;

/// Mean and standard deviation of a per-run statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean across runs.
    pub mean: f64,
    /// Sample standard deviation across runs (0 for a single run).
    pub std: f64,
}

fn mean_std(values: &[f64]) -> Option<MeanStd> {
    let mean = stats::mean(values)?;
    let std = stats::std_dev(values).unwrap_or(0.0);
    Some(MeanStd { mean, std })
}

/// A set of paired Default/HyperPower runs for one method on one
/// device–dataset pair.
#[derive(Debug, Clone)]
pub struct PairedRuns {
    /// Default-mode traces, one per run.
    pub default_runs: Vec<Trace>,
    /// HyperPower-mode traces, one per run (paired by index).
    pub hyperpower_runs: Vec<Trace>,
}

/// Table 2 cell pair: mean (std) best test error per mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestErrorRow {
    /// Default-mode best error, or `None` if *no* run found a feasible
    /// design (the paper's "–").
    pub default: Option<MeanStd>,
    /// HyperPower-mode best error.
    pub hyperpower: Option<MeanStd>,
}

/// Table 3 row: runtime for HyperPower to reach the sample count the
/// default queried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeToSamplesRow {
    /// Mean default total runtime in hours.
    pub default_hours: Option<f64>,
    /// Mean HyperPower time (hours) to process as many queried samples as
    /// its paired default run did.
    pub hyperpower_hours: Option<f64>,
    /// Geometric-mean speedup across paired runs.
    pub speedup: Option<f64>,
}

/// Table 4 row: queried-sample counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleCountRow {
    /// Mean samples queried by the default runs.
    pub default_samples: Option<f64>,
    /// Mean samples queried by the HyperPower runs.
    pub hyperpower_samples: Option<f64>,
    /// Geometric-mean per-run increase.
    pub increase: Option<f64>,
}

/// Table 5 row: time to reach the best accuracy the default achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeToAccuracyRow {
    /// Mean time (hours) at which default runs hit their own best error.
    pub default_hours: Option<f64>,
    /// Mean time (hours) at which HyperPower runs matched it.
    pub hyperpower_hours: Option<f64>,
    /// Geometric-mean speedup across paired runs where both sides are
    /// defined.
    pub speedup: Option<f64>,
}

impl PairedRuns {
    /// Per-run best *feasible* errors for one mode; `None` entries are
    /// runs that never found a feasible design. `fallback_error` (the
    /// dataset's chance error) is substituted so failed runs still count
    /// toward the mean, as the paper's large Default means/stds reflect.
    fn best_errors(runs: &[Trace], fallback_error: f64) -> (Vec<f64>, usize) {
        let mut found = 0;
        let values = runs
            .iter()
            .map(|t| match t.best_feasible() {
                Some(b) => {
                    found += 1;
                    b.error
                }
                None => fallback_error,
            })
            .collect();
        (values, found)
    }

    /// Table 2: mean (std) best feasible test error per mode. A mode where
    /// *no* run found a feasible design reports `None` (paper's "–").
    pub fn best_error_row(&self, fallback_error: f64) -> BestErrorRow {
        let (d, d_found) = Self::best_errors(&self.default_runs, fallback_error);
        let (h, h_found) = Self::best_errors(&self.hyperpower_runs, fallback_error);
        BestErrorRow {
            default: if d_found == 0 { None } else { mean_std(&d) },
            hyperpower: if h_found == 0 { None } else { mean_std(&h) },
        }
    }

    /// Table 3: how fast HyperPower reaches the default's queried-sample
    /// count.
    pub fn runtime_to_samples_row(&self) -> RuntimeToSamplesRow {
        let default_hours: Vec<f64> = self
            .default_runs
            .iter()
            .map(|t| t.total_time_s / 3600.0)
            .collect();
        let mut hp_hours = Vec::new();
        let mut ratios = Vec::new();
        for (d, h) in self.default_runs.iter().zip(&self.hyperpower_runs) {
            if let Some(t) = h.time_to_reach_queried(d.queried()) {
                let hours = t / 3600.0;
                hp_hours.push(hours);
                if hours > 0.0 {
                    ratios.push((d.total_time_s / 3600.0) / hours);
                }
            }
        }
        RuntimeToSamplesRow {
            default_hours: stats::mean(&default_hours),
            hyperpower_hours: stats::mean(&hp_hours),
            speedup: stats::geometric_mean(&ratios),
        }
    }

    /// Table 4: queried-sample counts and their increase.
    pub fn sample_count_row(&self) -> SampleCountRow {
        let d: Vec<f64> = self
            .default_runs
            .iter()
            .map(|t| t.queried() as f64)
            .collect();
        let h: Vec<f64> = self
            .hyperpower_runs
            .iter()
            .map(|t| t.queried() as f64)
            .collect();
        let ratios: Vec<f64> = d
            .iter()
            .zip(&h)
            .filter(|(d, _)| **d > 0.0)
            .map(|(d, h)| h / d)
            .collect();
        SampleCountRow {
            default_samples: stats::mean(&d),
            hyperpower_samples: stats::mean(&h),
            increase: stats::geometric_mean(&ratios),
        }
    }

    /// Table 5: time to reach the best accuracy the default achieved.
    /// `None` throughout when the default never found a feasible design
    /// (the paper's "–" rows for Rand-Walk on CIFAR-10).
    pub fn time_to_accuracy_row(&self) -> TimeToAccuracyRow {
        let mut d_hours = Vec::new();
        let mut h_hours = Vec::new();
        let mut ratios = Vec::new();
        for (d, h) in self.default_runs.iter().zip(&self.hyperpower_runs) {
            let Some(best) = d.best_feasible() else {
                continue;
            };
            let d_t = best.timestamp_s / 3600.0;
            d_hours.push(d_t);
            if let Some(h_t) = h.time_to_reach_error(best.error) {
                let h_t = h_t / 3600.0;
                h_hours.push(h_t);
                if h_t > 0.0 {
                    ratios.push(d_t / h_t);
                }
            }
        }
        TimeToAccuracyRow {
            default_hours: stats::mean(&d_hours),
            hyperpower_hours: stats::mean(&h_hours),
            speedup: stats::geometric_mean(&ratios),
        }
    }
}

/// Self-healing summary across a set of runs (any mode): how often the
/// constraint models recalibrated and the searchers degraded. All zeros
/// for legacy (inert) runs — the paper's tables are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessSummary {
    /// Number of traces aggregated.
    pub runs: usize,
    /// Total online recalibrations across all runs.
    pub recalibrations: usize,
    /// Total searcher degradation events (jitter escalations + Rand-Walk
    /// fallbacks) across all runs.
    pub degradations: usize,
    /// Runs whose final live drift RMSPE was recorded (i.e. that ran with
    /// the drift monitor active).
    pub monitored_runs: usize,
}

/// Aggregates the self-healing telemetry of a set of traces.
pub fn robustness_summary(runs: &[Trace]) -> RobustnessSummary {
    RobustnessSummary {
        runs: runs.len(),
        recalibrations: runs.iter().map(Trace::recalibration_count).sum(),
        degradations: runs.iter().map(Trace::degradation_count).sum(),
        monitored_runs: runs
            .iter()
            .filter(|t| t.final_drift_rmspe().is_some())
            .count(),
    }
}

/// Formats an optional mean (std) cell the way the paper prints it:
/// `"24.39% (3.08%)"`, or `"--"` when undefined.
pub fn format_error_cell(cell: Option<MeanStd>) -> String {
    match cell {
        Some(MeanStd { mean, std }) => format!("{:.2}% ({:.2}%)", mean * 100.0, std * 100.0),
        None => "--".into(),
    }
}

/// Formats an optional scalar cell with the given suffix (e.g. `"x"` for
/// speedups, `""` for hours), or `"--"`.
pub fn format_scalar_cell(value: Option<f64>, suffix: &str) -> String {
    match value {
        Some(v) => format!("{v:.2}{suffix}"),
        None => "--".into(),
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::driver::{Sample, SampleKind};
    use crate::{Budgets, Config, Method, Mode};

    /// A trace with evaluated samples at the given (time, error, feasible).
    fn trace(points: &[(f64, f64, bool)]) -> Trace {
        let samples = points
            .iter()
            .enumerate()
            .map(|(i, (t, e, feasible))| Sample {
                index: i,
                timestamp_s: *t,
                kind: SampleKind::Trained,
                error: Some(*e),
                power_w: 50.0,
                memory_bytes: None,
                latency_s: Some(0.001),
                feasible: *feasible,
                retries: 0,
                faults: Vec::new(),
                failure: None,
                drift_events: Vec::new(),
                degradations: Vec::new(),
                drift_rmspe: None,
                hedged: 0,
                reclaimed: 0,
                config: Config::new(vec![0.5]).unwrap(),
            })
            .collect::<Vec<_>>();
        let total = points.last().map(|(t, _, _)| *t).unwrap_or(0.0);
        Trace {
            method: Method::Rand,
            mode: Mode::Default,
            budgets: Budgets::default(),
            samples,
            total_time_s: total,
        }
    }

    #[test]
    fn robustness_summary_counts_healing_telemetry() {
        use crate::drift::{DegradationEvent, DriftEvent, DriftTarget};
        let clean = trace(&[(100.0, 0.5, true)]);
        let mut healed = trace(&[(100.0, 0.5, true), (200.0, 0.4, true)]);
        healed.samples[0].drift_events = vec![
            DriftEvent::DriftDetected(DriftTarget::Power),
            DriftEvent::Recalibrated,
        ];
        healed.samples[1].degradations = vec![DegradationEvent::RandWalkFallback];
        healed.samples[1].drift_rmspe = Some(0.1);
        let s = robustness_summary(&[clean.clone(), healed]);
        assert_eq!(
            s,
            RobustnessSummary {
                runs: 2,
                recalibrations: 1,
                degradations: 1,
                monitored_runs: 1,
            }
        );
        // Legacy runs aggregate to all-zero telemetry.
        assert_eq!(
            robustness_summary(&[clean]),
            RobustnessSummary {
                runs: 1,
                ..RobustnessSummary::default()
            }
        );
    }

    fn paired() -> PairedRuns {
        PairedRuns {
            default_runs: vec![
                trace(&[(3600.0, 0.5, true), (7200.0, 0.4, true)]),
                trace(&[(3600.0, 0.9, false), (7200.0, 0.8, false)]), // never feasible
            ],
            hyperpower_runs: vec![
                trace(&[(100.0, 0.45, true), (200.0, 0.3, true), (300.0, 0.2, true)]),
                trace(&[(100.0, 0.35, true), (200.0, 0.25, true)]),
            ],
        }
    }

    #[test]
    fn table2_uses_fallback_for_failed_runs() {
        let row = paired().best_error_row(0.9);
        let d = row.default.unwrap();
        // Run 1 best 0.4, run 2 fallback 0.9 => mean 0.65.
        assert!((d.mean - 0.65).abs() < 1e-12);
        assert!(d.std > 0.0);
        let h = row.hyperpower.unwrap();
        assert!((h.mean - 0.225).abs() < 1e-12);
    }

    #[test]
    fn table2_all_failed_is_dash() {
        let p = PairedRuns {
            default_runs: vec![trace(&[(100.0, 0.9, false)])],
            hyperpower_runs: vec![trace(&[(100.0, 0.2, true)])],
        };
        let row = p.best_error_row(0.9);
        assert!(row.default.is_none());
        assert!(row.hyperpower.is_some());
    }

    #[test]
    fn table3_speedup_reflects_faster_sampling() {
        let row = paired().runtime_to_samples_row();
        // Defaults each took 2h total over 2 samples; HyperPower reached 2
        // samples at 200s.
        assert!((row.default_hours.unwrap() - 2.0).abs() < 1e-12);
        assert!((row.hyperpower_hours.unwrap() - 200.0 / 3600.0).abs() < 1e-12);
        assert!(row.speedup.unwrap() > 30.0);
    }

    #[test]
    fn table4_increase() {
        let row = paired().sample_count_row();
        assert_eq!(row.default_samples, Some(2.0));
        assert_eq!(row.hyperpower_samples, Some(2.5));
        // Geometric mean of 3/2 and 2/2.
        assert!((row.increase.unwrap() - (1.5f64 * 1.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table5_skips_pairs_without_feasible_default() {
        let row = paired().time_to_accuracy_row();
        // Only pair 0 counts: default best (0.4) at 2h; HyperPower reached
        // <= 0.4 at 200s (error 0.3).
        assert!((row.default_hours.unwrap() - 2.0).abs() < 1e-12);
        assert!((row.hyperpower_hours.unwrap() - 200.0 / 3600.0).abs() < 1e-12);
        assert!(row.speedup.unwrap() > 30.0);
    }

    #[test]
    fn table5_all_defaults_failed_is_dash() {
        let p = PairedRuns {
            default_runs: vec![trace(&[(100.0, 0.9, false)])],
            hyperpower_runs: vec![trace(&[(50.0, 0.3, true)])],
        };
        let row = p.time_to_accuracy_row();
        assert!(row.default_hours.is_none());
        assert!(row.hyperpower_hours.is_none());
        assert!(row.speedup.is_none());
    }

    #[test]
    fn formatting() {
        assert_eq!(
            format_error_cell(Some(MeanStd {
                mean: 0.2439,
                std: 0.0308
            })),
            "24.39% (3.08%)"
        );
        assert_eq!(format_error_cell(None), "--");
        assert_eq!(format_scalar_cell(Some(57.2), "x"), "57.20x");
        assert_eq!(format_scalar_cell(None, "x"), "--");
    }
}
