//! Hardware budgets and model-backed feasibility oracles.
//!
//! A [`Budgets`] value carries the platform's power/memory limits (the
//! paper uses 85 W + 1.15 GiB and 90 W + 1.25 GiB on the GTX 1070, and
//! power-only 10 W / 12 W on the Tegra TX1). A [`ConstraintOracle`] binds
//! budgets to fitted [`HwModels`] and answers the two questions the
//! constraint-aware methods ask about a candidate `z`:
//!
//! * HW-IECI: the **hard indicator** `I[P(z) ≤ P_B]·I[M(z) ≤ M_B]`
//!   (paper Eq. 3),
//! * HW-CWEI: the **probability** of satisfaction under Gaussian constraint
//!   models whose spread is the models' cross-validated residual noise
//!   (paper §3.5).

use hyperpower_gp::acquisition::probability_below;
use hyperpower_linalg::units::{Mebibytes, Seconds, Watts};

use crate::HwModels;

/// Power/memory budget limits for a platform.
///
/// Each limit carries its unit in the type, so `P(z) ≤ P_B` can only ever
/// compare watts against watts and `M(z) ≤ M_B` mebibytes against
/// mebibytes — a joule or byte count in the wrong slot is a compile error.
/// `None` means the constraint is not imposed (the paper imposes no memory
/// constraint on Tegra because the platform cannot measure memory).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budgets {
    /// Maximum allowed inference power draw `P_B`.
    pub power: Option<Watts>,
    /// Maximum allowed memory consumption `M_B`.
    pub memory: Option<Mebibytes>,
    /// Maximum allowed inference latency per example. An extension beyond
    /// the paper (its refs \[10\] and \[14\] constrain runtime); `None`
    /// everywhere in the paper-reproduction scenarios.
    pub latency: Option<Seconds>,
    /// Adaptive safety margin subtracted from `power` when *predicting*
    /// feasibility (see [`crate::drift::DriftMonitor`]). Measured
    /// feasibility ([`Budgets::satisfied_by_measurements`]) always uses
    /// the raw budget — the margin only shrinks the predicted-feasible
    /// region while the models are mistrusted. Zero by default.
    pub power_margin: Watts,
    /// Adaptive safety margin subtracted from `memory` when predicting
    /// feasibility. Zero by default.
    pub memory_margin: Mebibytes,
}

impl Budgets {
    /// Power-only budget.
    pub fn power(limit: Watts) -> Self {
        Budgets {
            power: Some(limit),
            ..Budgets::default()
        }
    }

    /// Power + memory budget (the paper quotes memory budgets in GiB;
    /// convert with [`Mebibytes::from_gib`]).
    pub fn power_and_memory(power: Watts, memory: Mebibytes) -> Self {
        Budgets {
            power: Some(power),
            memory: Some(memory),
            ..Budgets::default()
        }
    }

    /// Adds a latency budget (builder style).
    pub fn with_latency(mut self, limit: Seconds) -> Self {
        self.latency = Some(limit);
        self
    }

    /// The power limit used for *predicted* feasibility: the raw budget
    /// minus the adaptive safety margin.
    pub fn effective_power(&self) -> Option<Watts> {
        self.power.map(|p| Watts(p.get() - self.power_margin.get()))
    }

    /// The memory limit used for *predicted* feasibility: the raw budget
    /// minus the adaptive safety margin.
    pub fn effective_memory(&self) -> Option<Mebibytes> {
        self.memory
            .map(|m| Mebibytes(m.get() - self.memory_margin.get()))
    }

    /// Whether a *measured* sample satisfies the power/memory budgets.
    /// Memory is optional: platforms without a memory API can only be
    /// checked on power. Shorthand for
    /// [`Budgets::satisfied_by_measurements`] without a latency reading.
    pub fn satisfied_by(&self, power: Watts, memory: Option<Mebibytes>) -> bool {
        self.satisfied_by_measurements(power, memory, None)
    }

    /// Whether a *measured* sample satisfies all imposed budgets.
    /// Unmeasured quantities (`None`) are not checked.
    pub fn satisfied_by_measurements(
        &self,
        power: Watts,
        memory: Option<Mebibytes>,
        latency: Option<Seconds>,
    ) -> bool {
        if let Some(pb) = self.power {
            if power > pb {
                return false;
            }
        }
        if let (Some(mb), Some(measured)) = (self.memory, memory) {
            if measured > mb {
                return false;
            }
        }
        if let (Some(lb), Some(measured)) = (self.latency, latency) {
            if measured > lb {
                return false;
            }
        }
        true
    }
}

/// Binds fitted predictive models to budgets; the a-priori constraint
/// evaluator at the heart of HyperPower.
///
/// # Examples
///
/// See [`crate::Session`] for a full pipeline; the oracle itself is a thin
/// composition of model predictions and budget comparisons.
#[derive(Debug, Clone)]
pub struct ConstraintOracle {
    models: HwModels,
    budgets: Budgets,
}

impl ConstraintOracle {
    /// Creates an oracle from fitted models and budgets.
    pub fn new(models: HwModels, budgets: Budgets) -> Self {
        ConstraintOracle { models, budgets }
    }

    /// The underlying models.
    pub fn models(&self) -> &HwModels {
        &self.models
    }

    /// The budgets.
    pub fn budgets(&self) -> Budgets {
        self.budgets
    }

    /// Hard indicator `I[P(z) ≤ P_B]·I[M(z) ≤ M_B]` (paper Eq. 3): `true`
    /// iff every imposed constraint is predicted satisfied.
    ///
    /// A budget whose quantity has no fitted model (memory on Tegra,
    /// latency unless a latency model was fitted) is skipped, matching the
    /// paper's handling of Tegra memory.
    ///
    /// Predictions are compared against the *effective* budgets (raw limit
    /// minus any adaptive safety margin, zero unless the self-healing
    /// layer tightened it — see [`crate::drift::DriftMonitor`]).
    pub fn predicted_feasible(&self, z: &[f64]) -> bool {
        if let Some(pb) = self.budgets.effective_power() {
            if self.models.predict_power(z) > pb {
                return false;
            }
        }
        if let (Some(mb), Some(pred)) = (
            self.budgets.effective_memory(),
            self.models.predict_memory(z),
        ) {
            if pred > mb {
                return false;
            }
        }
        if let (Some(lb), Some(pred)) = (self.budgets.latency, self.models.predict_latency(z)) {
            if pred > lb {
                return false;
            }
        }
        true
    }

    /// Probability that `z` satisfies all imposed constraints, treating
    /// each model prediction as Gaussian with the model's held-out
    /// residual standard deviation (HW-CWEI, paper §3.5):
    /// `Pr(P(z) ≤ P_B) · Pr(M(z) ≤ M_B)`.
    ///
    /// Budgets are the *effective* ones (raw limit minus adaptive safety
    /// margin). Degenerate constraint models — zero-variance fits on exact
    /// data, or residual estimates poisoned to non-finite values — fall
    /// back to the hard indicator instead of propagating NaN, and the
    /// result is always a probability in `[0, 1]`.
    pub fn feasibility_probability(&self, z: &[f64]) -> f64 {
        hyperpower_linalg::debug_assert_finite!("feasibility-probability z", z);
        let mut p = 1.0;
        if let Some(pb) = self.budgets.effective_power() {
            p *= constraint_probability(
                self.models.predict_power(z).get(),
                self.models.power.residual_std(),
                pb.get(),
            );
        }
        // The raw regressions predict in their fitted scale (bytes for
        // memory), so budgets are converted to that scale for the Gaussian
        // tail probability — `residual_std` lives on the same scale.
        if let (Some(mb), Some(model)) =
            (self.budgets.effective_memory(), self.models.memory.as_ref())
        {
            p *= constraint_probability(model.predict(z), model.residual_std(), mb.as_bytes());
        }
        if let (Some(lb), Some(model)) = (self.budgets.latency, self.models.latency.as_ref()) {
            p *= constraint_probability(model.predict(z), model.residual_std(), lb.get());
        }
        p.clamp(0.0, 1.0)
    }
}

/// `Pr(prediction ≤ budget)` for one Gaussian constraint, hardened against
/// degenerate residual estimates: a non-finite or non-positive spread
/// degrades to the deterministic hard indicator (a NaN prediction counts
/// as infeasible), and the Gaussian tail value is clamped to `[0, 1]`.
fn constraint_probability(predicted: f64, residual_std: f64, budget: f64) -> f64 {
    if !residual_std.is_finite() || residual_std <= 0.0 || !predicted.is_finite() {
        return if predicted <= budget { 1.0 } else { 0.0 };
    }
    probability_below(predicted, residual_std, budget).clamp(0.0, 1.0)
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{FeatureMap, LinearHwModel};

    /// A model that predicts exactly `10·z₀` with a given residual std.
    fn scaled_model(residual_std_target: f64) -> LinearHwModel {
        // Fit on exact data (residual 0), then verify; for nonzero residual
        // std we fit on noisy data.
        let z: Vec<Vec<f64>> = (1..40).map(|i| vec![i as f64 * 0.25]).collect();
        let y: Vec<f64> = z
            .iter()
            .enumerate()
            .map(|(i, r)| 10.0 * r[0] + residual_std_target * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        LinearHwModel::fit_kfold(&z, &y, 5, FeatureMap::Linear).unwrap()
    }

    #[test]
    fn budgets_satisfied_by_measurements() {
        let b = Budgets::power_and_memory(Watts(90.0), Mebibytes::from_gib(1.25));
        assert!(b.satisfied_by(Watts(85.0), Some(Mebibytes::from_gib(1.0))));
        assert!(!b.satisfied_by(Watts(95.0), Some(Mebibytes::from_gib(1.0))));
        assert!(!b.satisfied_by(Watts(85.0), Some(Mebibytes::from_gib(1.5))));
        // No memory measurement: only power is checked.
        assert!(b.satisfied_by(Watts(85.0), None));
        // No constraints at all.
        assert!(Budgets::default().satisfied_by(Watts(1000.0), None));
        // Latency budget.
        let b = b.with_latency(Seconds::from_millis(4.0));
        assert!(b.satisfied_by_measurements(Watts(85.0), None, Some(Seconds(0.003))));
        assert!(!b.satisfied_by_measurements(Watts(85.0), None, Some(Seconds(0.005))));
    }

    #[test]
    fn indicator_cuts_at_budget() {
        let oracle = ConstraintOracle::new(
            HwModels {
                power: scaled_model(0.0),
                memory: None,
                latency: None,
            },
            Budgets::power(Watts(50.0)),
        );
        assert!(oracle.predicted_feasible(&[4.9])); // P = 49
        assert!(!oracle.predicted_feasible(&[5.1])); // P = 51
    }

    #[test]
    fn memory_budget_without_model_is_skipped() {
        let oracle = ConstraintOracle::new(
            HwModels {
                power: scaled_model(0.0),
                memory: None,
                latency: None,
            },
            Budgets::power_and_memory(Watts(50.0), Mebibytes::from_gib(0.0001)),
        );
        // Memory budget is tiny but unmodelled (Tegra case): only power counts.
        assert!(oracle.predicted_feasible(&[1.0]));
    }

    #[test]
    fn memory_model_enforced_when_present() {
        let mem = scaled_model(0.0); // predicts 10·z bytes
        let oracle = ConstraintOracle::new(
            HwModels {
                power: scaled_model(0.0),
                memory: Some(mem),
                latency: None,
            },
            // Memory cap = 200 bytes against a model that predicts 10·z bytes.
            Budgets::power_and_memory(Watts(1e9), Mebibytes::from_bytes(10.0 * 20.0)),
        );
        assert!(oracle.predicted_feasible(&[19.0])); // M = 190 bytes
        assert!(!oracle.predicted_feasible(&[21.0])); // M = 210 bytes
    }

    #[test]
    fn probability_monotone_decreasing_in_z() {
        let oracle = ConstraintOracle::new(
            HwModels {
                power: scaled_model(1.0),
                memory: None,
                latency: None,
            },
            Budgets::power(Watts(50.0)),
        );
        let p_small = oracle.feasibility_probability(&[3.0]);
        let p_mid = oracle.feasibility_probability(&[5.0]);
        let p_big = oracle.feasibility_probability(&[7.0]);
        assert!(p_small > 0.99);
        assert!((0.2..0.8).contains(&p_mid), "p_mid {p_mid}");
        assert!(p_big < 0.01);
    }

    #[test]
    fn margins_shrink_predicted_region_but_not_measured() {
        let mut budgets = Budgets::power(Watts(50.0));
        budgets.power_margin = Watts(10.0);
        let oracle = ConstraintOracle::new(
            HwModels {
                power: scaled_model(0.0),
                memory: None,
                latency: None,
            },
            budgets,
        );
        // Effective predicted budget is 40 W.
        assert!(oracle.predicted_feasible(&[3.9])); // P = 39
        assert!(!oracle.predicted_feasible(&[4.5])); // P = 45 (within raw, over margined)
                                                     // Measured feasibility ignores the margin entirely.
        assert!(budgets.satisfied_by(Watts(49.0), None));
        assert_eq!(budgets.effective_power(), Some(Watts(40.0)));
        // Memory margin behaves the same way.
        let mut budgets = Budgets::power_and_memory(Watts(1e9), Mebibytes(100.0));
        budgets.memory_margin = Mebibytes(25.0);
        assert_eq!(budgets.effective_memory(), Some(Mebibytes(75.0)));
        assert!(budgets.satisfied_by(Watts(1.0), Some(Mebibytes(90.0))));
    }

    #[test]
    fn degenerate_residual_std_degrades_to_indicator() {
        // A zero-variance model (fitted on exact data) must yield a hard
        // 0/1 probability, never NaN.
        let exact = scaled_model(0.0);
        let oracle = ConstraintOracle::new(
            HwModels {
                power: exact,
                memory: None,
                latency: None,
            },
            Budgets::power(Watts(50.0)),
        );
        for z in [0.1, 4.9, 5.1, 100.0] {
            let p = oracle.feasibility_probability(&[z]);
            assert!(p.is_finite(), "p({z}) = {p}");
            assert!((0.0..=1.0).contains(&p), "p({z}) = {p}");
        }
        // Explicitly non-finite spreads through the helper.
        assert_eq!(super::constraint_probability(40.0, f64::NAN, 50.0), 1.0);
        assert_eq!(super::constraint_probability(60.0, f64::NAN, 50.0), 0.0);
        assert_eq!(
            super::constraint_probability(40.0, f64::INFINITY, 50.0),
            1.0
        );
        assert_eq!(super::constraint_probability(40.0, 0.0, 50.0), 1.0);
        assert_eq!(super::constraint_probability(60.0, -1.0, 50.0), 0.0);
        // A NaN prediction counts as infeasible rather than poisoning p.
        assert_eq!(super::constraint_probability(f64::NAN, 1.0, 50.0), 0.0);
    }

    #[test]
    fn probability_one_with_no_constraints() {
        let oracle = ConstraintOracle::new(
            HwModels {
                power: scaled_model(1.0),
                memory: None,
                latency: None,
            },
            Budgets::default(),
        );
        assert_eq!(oracle.feasibility_probability(&[100.0]), 1.0);
        assert!(oracle.predicted_feasible(&[100.0]));
    }
}
