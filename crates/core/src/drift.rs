//! Self-healing constraint models: drift detection, online recalibration
//! and adaptive safety margins.
//!
//! HyperPower gates its acquisition function on linear power/memory models
//! fitted *once*, offline (paper §3.3, Table 1 reports RMSPE up to ~7%).
//! A production run must survive those models going stale — a sensor
//! drifting away from its profiling-time calibration, or a deployed GPU
//! that no longer matches the profiled one. This module closes the loop:
//!
//! * a [`DriftMonitor`] compares `HwModels::predict_*` against the values
//!   actually *measured* at every committed evaluation, maintaining online
//!   RMSPE/bias estimators per target and emitting typed [`DriftEvent`]s;
//! * when drift crosses [`DriftConfig::drift_threshold`] (with hysteresis:
//!   estimators reset after a refit and re-detection is suppressed for a
//!   cooldown), the linear models are **recalibrated** on the accumulated
//!   `(z, measurement)` pairs through the same k-fold lstsq path used at
//!   profiling time;
//! * measured constraint violations of predicted-feasible candidates
//!   tighten an explicit **safety margin** on the budgets (shrinking the
//!   *predicted* feasible region only — measured feasibility always uses
//!   the raw budgets), and sustained clean commits relax it again.
//!
//! **Determinism.** The monitor consumes nothing but the committed sample
//! sequence — no RNG, no wall clock — so its entire state (and therefore
//! every recalibrated weight and margin step) is a pure function of the
//! committed prefix. The executor feeds it at commit points, which are
//! identical for every worker count, so recalibrating runs stay
//! byte-identical across `--workers` and across kill-and-resume. A
//! proptest in `crates/core/tests/proptests.rs` pins this down.
//!
//! [`DegradationEvent`] lives here too: the typed record of the GP
//! numerical degradation ladder (see `methods::BoSearcher`), which shares
//! the trace-event plumbing with drift events.

use hyperpower_linalg::units::{Mebibytes, Seconds, Watts};

use crate::constraints::{Budgets, ConstraintOracle};
use crate::model::{HwModels, LinearHwModel};

/// Minimum committed measurements per target before its RMSPE estimate is
/// trusted for drift detection.
pub const MIN_DRIFT_SAMPLES: u64 = 4;

/// Commits to wait after a drift detection (successful or not) before the
/// detector may fire again — the hysteresis half of the state machine.
const RECAL_COOLDOWN: u64 = 4;

/// Consecutive non-violating measured commits required to relax the safety
/// margin by one step.
const RELAX_STREAK: u64 = 8;

/// Consecutive screening rejections (with no measured commit in between)
/// tolerated while a margin is active before the monitor concludes the
/// margin has (nearly) emptied the predicted-feasible region and backs it
/// off one step. Without this valve a single tightening on a taut budget
/// can starve the search: no commits ⇒ no clean streak ⇒ no relaxation.
const REJECTION_RELAX_STREAK: u64 = 256;

/// Upper bound on the total margin, as a fraction of each budget: the
/// margin may never erase more than half the feasible budget.
pub const MAX_MARGIN_FRAC: f64 = 0.5;

/// Folds used for recalibration fits. Smaller than the profiler's 10
/// because the monitor recalibrates from however many commits a short run
/// has accumulated; `LinearHwModel` still enforces `n ≥ max(k, 2·d)`.
const REFIT_FOLDS: usize = 2;

/// Tuning knobs for the self-healing layer. The default is **inert**:
/// recalibration off, no safety margin — a run with the default config is
/// byte-identical to one without the subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Refit the hardware models online when measured drift crosses
    /// `drift_threshold` (CLI `--recalibrate`).
    pub recalibrate: bool,
    /// Live RMSPE (fraction, per target) above which drift is declared
    /// (CLI `--drift-threshold`).
    pub drift_threshold: f64,
    /// Margin step per measured constraint violation, as a fraction of
    /// each budget; `0.0` disables adaptive margins (CLI
    /// `--safety-margin`).
    pub safety_margin: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            recalibrate: false,
            drift_threshold: 0.15,
            safety_margin: 0.0,
        }
    }
}

impl DriftConfig {
    /// Whether this config can never change a run: no recalibration and no
    /// margins means the monitor is not even constructed.
    pub fn is_inert(&self) -> bool {
        !self.recalibrate && self.safety_margin <= 0.0
    }
}

/// Which hardware target a drift detection refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftTarget {
    /// The power model `P(z)`.
    Power,
    /// The memory model `M(z)`.
    Memory,
    /// The latency model `T(z)`.
    Latency,
}

/// A self-healing state transition, recorded on the committed sample that
/// caused it. Wire names are pinned by the golden fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftEvent {
    /// A target's live RMSPE crossed the drift threshold.
    DriftDetected(DriftTarget),
    /// The hardware models were refitted on the accumulated measurements.
    Recalibrated,
    /// A measured violation of a predicted-feasible candidate tightened
    /// the safety margin by one step.
    MarginTightened,
    /// Sustained clean commits (or a recalibration) relaxed the margin.
    MarginRelaxed,
}

impl DriftEvent {
    /// Stable name used in trace encodings.
    pub fn wire_name(&self) -> &'static str {
        match self {
            DriftEvent::DriftDetected(DriftTarget::Power) => "drift:power",
            DriftEvent::DriftDetected(DriftTarget::Memory) => "drift:memory",
            DriftEvent::DriftDetected(DriftTarget::Latency) => "drift:latency",
            DriftEvent::Recalibrated => "recalibrated",
            DriftEvent::MarginTightened => "margin-tightened",
            DriftEvent::MarginRelaxed => "margin-relaxed",
        }
    }
}

/// One downgrade step of the GP numerical degradation ladder, recorded on
/// the sample whose proposal needed it. Emitted by the BO searchers; never
/// a panic, never a silent retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationEvent {
    /// The GP fit only succeeded after escalating the noise floor `rung`
    /// steps up the jitter ladder.
    JitterEscalated {
        /// 1-based rung that finally fitted (each rung multiplies the
        /// minimum noise variance by 100).
        rung: u32,
    },
    /// Every ladder rung failed; the proposal fell back to a Rand-Walk
    /// step for this iteration.
    RandWalkFallback,
}

impl DegradationEvent {
    /// Stable name used in trace encodings.
    pub fn wire_name(&self) -> String {
        match self {
            DegradationEvent::JitterEscalated { rung } => format!("jitter:{rung}"),
            DegradationEvent::RandWalkFallback => "rand-walk-fallback".into(),
        }
    }
}

/// Online error estimator for one target: running RMSPE and mean bias of
/// `(predicted − measured) / measured`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct OnlineError {
    n: u64,
    sum_sq_frac: f64,
    sum_frac: f64,
}

impl OnlineError {
    fn observe(&mut self, predicted: f64, measured: f64) {
        if !(predicted.is_finite() && measured.is_finite()) || measured.abs() < f64::MIN_POSITIVE {
            return;
        }
        let frac = (predicted - measured) / measured;
        self.n += 1;
        self.sum_sq_frac += frac * frac;
        self.sum_frac += frac;
    }

    fn rmspe(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.n > 0).then(|| (self.sum_sq_frac / self.n as f64).sqrt())
    }

    fn bias(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.n > 0).then(|| self.sum_frac / self.n as f64)
    }

    fn reset(&mut self) {
        *self = OnlineError::default();
    }
}

/// What one committed observation did to the self-healing state.
#[derive(Debug, Clone, Default)]
pub struct CommitObservation {
    /// State transitions caused by this commit, in occurrence order.
    pub events: Vec<DriftEvent>,
    /// Whether models or margins changed — the executor must rebuild its
    /// live [`ConstraintOracle`] (and tell the searcher) when set.
    pub oracle_changed: bool,
    /// Worst live RMSPE across targets after this commit, if any target
    /// has measurements (reset by recalibration).
    pub drift_rmspe: Option<f64>,
}

/// The drift → recalibrate → margin state machine (see module docs and
/// DESIGN.md §5c). Owned by the executor; fed exactly once per committed,
/// *measured* evaluation, in commit order.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    models: HwModels,
    budgets: Budgets,
    z_rows: Vec<Vec<f64>>,
    power_rows_w: Vec<f64>,
    memory_rows_bytes: Vec<f64>,
    latency_rows_s: Vec<f64>,
    power_err: OnlineError,
    memory_err: OnlineError,
    latency_err: OnlineError,
    margin_steps: u32,
    clean_streak: u64,
    rejection_streak: u64,
    cooldown: u64,
    recalibrations: u32,
}

impl DriftMonitor {
    /// Creates a monitor around the profiling-time models and the raw
    /// budgets.
    pub fn new(models: HwModels, budgets: Budgets, config: DriftConfig) -> Self {
        DriftMonitor {
            config,
            models,
            budgets,
            z_rows: Vec::new(),
            power_rows_w: Vec::new(),
            memory_rows_bytes: Vec::new(),
            latency_rows_s: Vec::new(),
            power_err: OnlineError::default(),
            memory_err: OnlineError::default(),
            latency_err: OnlineError::default(),
            margin_steps: 0,
            clean_streak: 0,
            rejection_streak: 0,
            cooldown: 0,
            recalibrations: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// The current (possibly recalibrated) models.
    pub fn current_models(&self) -> &HwModels {
        &self.models
    }

    /// How many times the models have been refitted.
    pub fn recalibrations(&self) -> u32 {
        self.recalibrations
    }

    /// Current margin tightening steps.
    pub fn margin_steps(&self) -> u32 {
        self.margin_steps
    }

    /// Current total margin as a fraction of each budget, capped at
    /// [`MAX_MARGIN_FRAC`].
    pub fn margin_frac(&self) -> f64 {
        (f64::from(self.margin_steps) * self.config.safety_margin).min(MAX_MARGIN_FRAC)
    }

    /// Mean signed prediction bias of the power model, as a fraction
    /// (positive ⇒ over-prediction), if any measurements were observed.
    pub fn power_bias_frac(&self) -> Option<f64> {
        self.power_err.bias()
    }

    /// Worst live RMSPE across targets, if any target has measurements.
    pub fn live_rmspe(&self) -> Option<f64> {
        [
            self.power_err.rmspe(),
            self.memory_err.rmspe(),
            self.latency_err.rmspe(),
        ]
        .into_iter()
        .flatten()
        .reduce(f64::max)
    }

    /// The raw budgets with the current safety margin applied to the
    /// power/memory limits. Latency carries no margin field: the paper's
    /// scenarios never impose a latency budget.
    pub fn margined_budgets(&self) -> Budgets {
        let frac = self.margin_frac();
        let mut budgets = self.budgets;
        if frac > 0.0 {
            if let Some(p) = budgets.power {
                budgets.power_margin = Watts(p.get() * frac);
            }
            if let Some(m) = budgets.memory {
                budgets.memory_margin = Mebibytes(m.get() * frac);
            }
        }
        budgets
    }

    /// The oracle reflecting the current models and margins. The executor
    /// swaps this in whenever [`CommitObservation::oracle_changed`].
    pub fn oracle(&self) -> ConstraintOracle {
        ConstraintOracle::new(self.models.clone(), self.margined_budgets())
    }

    /// Feeds one committed, measured evaluation (in commit order) through
    /// the state machine. `violation` marks a candidate that was predicted
    /// feasible by the live oracle but measured infeasible against the raw
    /// budgets.
    pub fn observe_commit(
        &mut self,
        z: &[f64],
        power: Watts,
        memory: Option<Mebibytes>,
        latency: Option<Seconds>,
        violation: bool,
    ) -> CommitObservation {
        hyperpower_linalg::debug_assert_finite!("drift-monitor z", z);
        hyperpower_linalg::debug_assert_finite!("drift-monitor power", &[power.get()]);
        let mut obs = CommitObservation::default();

        // A measured commit means the screen is still letting candidates
        // through — the rejection starvation valve starts over.
        self.rejection_streak = 0;

        // Accumulate the (z, measurement) pair for future refits.
        self.z_rows.push(z.to_vec());
        self.power_rows_w.push(power.get());
        if let Some(m) = memory {
            self.memory_rows_bytes.push(m.as_bytes());
        }
        if let Some(l) = latency {
            self.latency_rows_s.push(l.get());
        }

        // Update the per-target error estimators against the models as
        // they stood when this sample was screened.
        self.power_err
            .observe(self.models.predict_power(z).get(), power.get());
        if let (Some(m), Some(pred)) = (memory, self.models.predict_memory(z)) {
            self.memory_err.observe(pred.as_bytes(), m.as_bytes());
        }
        if let (Some(l), Some(pred)) = (latency, self.models.predict_latency(z)) {
            self.latency_err.observe(pred.get(), l.get());
        }

        // Margin state machine: TIGHTEN on a measured violation, RELAX
        // after a sustained clean streak.
        if self.config.safety_margin > 0.0 {
            if violation {
                self.clean_streak = 0;
                if self.margin_frac() < MAX_MARGIN_FRAC {
                    self.margin_steps += 1;
                    obs.events.push(DriftEvent::MarginTightened);
                    obs.oracle_changed = true;
                }
            } else {
                self.clean_streak += 1;
                if self.clean_streak >= RELAX_STREAK && self.margin_steps > 0 {
                    self.margin_steps -= 1;
                    self.clean_streak = 0;
                    obs.events.push(DriftEvent::MarginRelaxed);
                    obs.oracle_changed = true;
                }
            }
        }

        // Drift detection with hysteresis, then recalibration.
        if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if self.config.recalibrate {
            let mut drifted: Vec<DriftTarget> = Vec::new();
            for (target, err) in [
                (DriftTarget::Power, self.power_err),
                (DriftTarget::Memory, self.memory_err),
                (DriftTarget::Latency, self.latency_err),
            ] {
                if err.n >= MIN_DRIFT_SAMPLES
                    && err.rmspe().is_some_and(|r| r > self.config.drift_threshold)
                {
                    drifted.push(target);
                }
            }
            if !drifted.is_empty() {
                for t in &drifted {
                    obs.events.push(DriftEvent::DriftDetected(*t));
                }
                // Cooldown starts whether or not the refit succeeds: a
                // data-starved refit must not retry on every commit.
                self.cooldown = RECAL_COOLDOWN;
                if let Some(models) = self.refit_models() {
                    self.models = models;
                    self.power_err.reset();
                    self.memory_err.reset();
                    self.latency_err.reset();
                    self.recalibrations += 1;
                    obs.events.push(DriftEvent::Recalibrated);
                    obs.oracle_changed = true;
                    // Recalibration heals the source of the violations, so
                    // the emergency margin is released with it.
                    if self.margin_steps > 0 {
                        self.margin_steps = 0;
                        self.clean_streak = 0;
                        obs.events.push(DriftEvent::MarginRelaxed);
                    }
                }
            }
        }

        obs.drift_rmspe = self.live_rmspe();
        obs
    }

    /// Feeds one committed screening rejection (in commit order) through
    /// the margin state machine. [`REJECTION_RELAX_STREAK`] unbroken
    /// rejections while a margin is active relax it one step — the
    /// starvation valve that keeps a tightened margin from choking the
    /// search on a taut budget. Rejections are committed trace entries, so
    /// this stays a pure function of the committed prefix.
    pub fn observe_rejection(&mut self) -> CommitObservation {
        let mut obs = CommitObservation::default();
        if self.margin_steps == 0 {
            self.rejection_streak = 0;
            return obs;
        }
        self.rejection_streak += 1;
        if self.rejection_streak >= REJECTION_RELAX_STREAK {
            self.rejection_streak = 0;
            self.margin_steps -= 1;
            self.clean_streak = 0;
            obs.events.push(DriftEvent::MarginRelaxed);
            obs.oracle_changed = true;
        }
        obs
    }

    /// Refits every model that has full measurement coverage, through the
    /// same k-fold lstsq path as the profiler, reusing each base model's
    /// feature map and target transform. Returns `None` (recalibration
    /// skipped, old models kept) while the power model lacks the
    /// `n ≥ max(k, 2·d)` samples `LinearHwModel` requires.
    fn refit_models(&self) -> Option<HwModels> {
        let power = refit_like(&self.models.power, &self.z_rows, &self.power_rows_w)?;
        let memory = match &self.models.memory {
            Some(base) if self.memory_rows_bytes.len() == self.z_rows.len() => Some(
                refit_like(base, &self.z_rows, &self.memory_rows_bytes)
                    .unwrap_or_else(|| base.clone()),
            ),
            other => other.clone(),
        };
        let latency = match &self.models.latency {
            Some(base) if self.latency_rows_s.len() == self.z_rows.len() => Some(
                refit_like(base, &self.z_rows, &self.latency_rows_s)
                    .unwrap_or_else(|| base.clone()),
            ),
            other => other.clone(),
        };
        Some(HwModels {
            power,
            memory,
            latency,
        })
    }
}

/// One recalibration fit: same shape as the base model, fitted on the
/// accumulated measurements. `None` if the data cannot support the fit.
fn refit_like(base: &LinearHwModel, z: &[Vec<f64>], y: &[f64]) -> Option<LinearHwModel> {
    LinearHwModel::fit_kfold_transformed(
        z,
        y,
        REFIT_FOLDS,
        base.feature_map(),
        base.target_transform(),
    )
    .ok()
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::FeatureMap;

    /// A power model fitted exactly on `P(z) = 60 + z₀` (1-dim z).
    fn toy_models() -> HwModels {
        let z: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = z.iter().map(|r| 60.0 + r[0]).collect();
        HwModels {
            power: LinearHwModel::fit_kfold(&z, &y, 5, FeatureMap::Linear).expect("toy fit"),
            memory: None,
            latency: None,
        }
    }

    fn monitor(config: DriftConfig) -> DriftMonitor {
        DriftMonitor::new(toy_models(), Budgets::power(Watts(90.0)), config)
    }

    #[test]
    fn default_config_is_inert() {
        assert!(DriftConfig::default().is_inert());
        assert!(!DriftConfig {
            recalibrate: true,
            ..DriftConfig::default()
        }
        .is_inert());
        assert!(!DriftConfig {
            safety_margin: 0.05,
            ..DriftConfig::default()
        }
        .is_inert());
    }

    #[test]
    fn accurate_measurements_cause_no_events() {
        let mut mon = monitor(DriftConfig {
            recalibrate: true,
            safety_margin: 0.1,
            ..DriftConfig::default()
        });
        for i in 0..10 {
            let z = [f64::from(i)];
            let obs = mon.observe_commit(&z, Watts(60.0 + z[0]), None, None, false);
            assert!(obs.events.is_empty(), "events at {i}: {:?}", obs.events);
            assert!(!obs.oracle_changed);
            assert!(obs.drift_rmspe.unwrap() < 1e-6);
        }
        assert_eq!(mon.recalibrations(), 0);
        assert_eq!(mon.margin_steps(), 0);
    }

    #[test]
    fn violations_tighten_then_clean_commits_relax() {
        let mut mon = monitor(DriftConfig {
            safety_margin: 0.1,
            ..DriftConfig::default()
        });
        let obs = mon.observe_commit(&[1.0], Watts(95.0), None, None, true);
        assert_eq!(obs.events, vec![DriftEvent::MarginTightened]);
        assert!(obs.oracle_changed);
        assert_eq!(mon.margin_steps(), 1);
        assert_eq!(mon.margin_frac(), 0.1);
        // The margined budgets shave 10% off the power budget; raw budgets
        // are untouched.
        let margined = mon.margined_budgets();
        assert_eq!(margined.power, Some(Watts(90.0)));
        assert_eq!(margined.power_margin, Watts(9.0));
        // Eight clean commits relax one step.
        let mut relaxed = false;
        for i in 0..8 {
            let obs = mon.observe_commit(&[1.0], Watts(61.0), None, None, false);
            relaxed |= obs.events.contains(&DriftEvent::MarginRelaxed);
            assert!(i == 7 || !relaxed, "relaxed too early at commit {i}");
        }
        assert!(relaxed);
        assert_eq!(mon.margin_steps(), 0);
        assert_eq!(mon.margined_budgets().power_margin, Watts::ZERO);
    }

    #[test]
    fn rejection_starvation_relaxes_an_active_margin() {
        let mut mon = monitor(DriftConfig {
            safety_margin: 0.1,
            ..DriftConfig::default()
        });
        // No margin active: rejections are ignored entirely.
        for _ in 0..REJECTION_RELAX_STREAK + 10 {
            let obs = mon.observe_rejection();
            assert!(obs.events.is_empty());
            assert!(!obs.oracle_changed);
        }
        // Tighten once, then starve: the valve must open exactly at the
        // streak threshold and the margin must drop back to zero.
        mon.observe_commit(&[1.0], Watts(95.0), None, None, true);
        assert_eq!(mon.margin_steps(), 1);
        for i in 1..REJECTION_RELAX_STREAK {
            assert!(mon.observe_rejection().events.is_empty(), "early at {i}");
        }
        let obs = mon.observe_rejection();
        assert_eq!(obs.events, vec![DriftEvent::MarginRelaxed]);
        assert!(obs.oracle_changed);
        assert_eq!(mon.margin_steps(), 0);
        // A measured commit resets the streak: the next rejection run
        // starts counting from scratch.
        mon.observe_commit(&[1.0], Watts(95.0), None, None, true);
        for _ in 0..REJECTION_RELAX_STREAK / 2 {
            assert!(mon.observe_rejection().events.is_empty());
        }
        mon.observe_commit(&[1.0], Watts(61.0), None, None, false);
        for _ in 0..REJECTION_RELAX_STREAK - 1 {
            assert!(mon.observe_rejection().events.is_empty());
        }
    }

    #[test]
    fn margin_never_exceeds_the_cap() {
        let mut mon = monitor(DriftConfig {
            safety_margin: 0.2,
            ..DriftConfig::default()
        });
        for _ in 0..10 {
            mon.observe_commit(&[1.0], Watts(95.0), None, None, true);
        }
        assert!(mon.margin_frac() <= MAX_MARGIN_FRAC);
        // Steps stop increasing once the cap is reached.
        assert_eq!(mon.margin_steps(), 3);
    }

    #[test]
    fn sustained_drift_recalibrates_and_resets_estimators() {
        let mut mon = monitor(DriftConfig {
            recalibrate: true,
            drift_threshold: 0.15,
            safety_margin: 0.0,
        });
        // Measurements 1.5× the model prediction: RMSPE ≈ 0.33.
        let mut recalibrated_at = None;
        for i in 0..10 {
            let z = [f64::from(i + 1)];
            let truth = (60.0 + z[0]) * 1.5;
            let obs = mon.observe_commit(&z, Watts(truth), None, None, false);
            if obs.events.contains(&DriftEvent::Recalibrated) {
                recalibrated_at = Some(i);
                assert!(obs.oracle_changed);
                assert!(obs
                    .events
                    .contains(&DriftEvent::DriftDetected(DriftTarget::Power)));
                // Estimators reset with the refit.
                assert_eq!(obs.drift_rmspe, None);
                break;
            }
        }
        let at = recalibrated_at.expect("drift must trigger a recalibration");
        assert!(at >= 3, "needs MIN_DRIFT_SAMPLES first (fired at {at})");
        assert_eq!(mon.recalibrations(), 1);
        // The refitted model predicts the *measured* relation.
        // Ridge regularisation (λ = 1e-6) shrinks the exact solution by a
        // hair, so compare against the measured relation loosely.
        let pred = mon.current_models().predict_power(&[4.0]).get();
        assert!(
            (pred - (60.0 + 4.0) * 1.5).abs() < 1e-2,
            "recalibrated prediction {pred}"
        );
    }

    #[test]
    fn detection_without_enough_refit_data_backs_off() {
        // 2-dim z needs 2·3 = 6 rows to refit; drive drift with only
        // enough rows to detect (4) — the detector fires, the refit is
        // skipped, and the cooldown suppresses immediate re-detection.
        let z: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i), f64::from(i % 5)])
            .collect();
        let y: Vec<f64> = z.iter().map(|r| 60.0 + r[0] + 2.0 * r[1]).collect();
        let models = HwModels {
            power: LinearHwModel::fit_kfold(&z, &y, 5, FeatureMap::Linear).expect("fit"),
            memory: None,
            latency: None,
        };
        let mut mon = DriftMonitor::new(
            models,
            Budgets::power(Watts(90.0)),
            DriftConfig {
                recalibrate: true,
                drift_threshold: 0.15,
                safety_margin: 0.0,
            },
        );
        let mut detections = 0;
        let mut recalibrations = 0;
        for i in 0..5 {
            let zi = [f64::from(i + 1), f64::from(i % 3)];
            let truth = (60.0 + zi[0] + 2.0 * zi[1]) * 2.0;
            let obs = mon.observe_commit(&zi, Watts(truth), None, None, false);
            detections += obs
                .events
                .iter()
                .filter(|e| matches!(e, DriftEvent::DriftDetected(_)))
                .count();
            recalibrations += obs
                .events
                .iter()
                .filter(|e| matches!(e, DriftEvent::Recalibrated))
                .count();
        }
        assert_eq!(detections, 1, "cooldown must suppress re-detection");
        assert_eq!(recalibrations, 0, "refit lacks the required samples");
        assert_eq!(mon.recalibrations(), 0);
    }

    #[test]
    fn wire_names_are_stable() {
        assert_eq!(
            DriftEvent::DriftDetected(DriftTarget::Power).wire_name(),
            "drift:power"
        );
        assert_eq!(DriftEvent::Recalibrated.wire_name(), "recalibrated");
        assert_eq!(DriftEvent::MarginTightened.wire_name(), "margin-tightened");
        assert_eq!(DriftEvent::MarginRelaxed.wire_name(), "margin-relaxed");
        assert_eq!(
            DegradationEvent::JitterEscalated { rung: 2 }.wire_name(),
            "jitter:2"
        );
        assert_eq!(
            DegradationEvent::RandWalkFallback.wire_name(),
            "rand-walk-fallback"
        );
    }
}
