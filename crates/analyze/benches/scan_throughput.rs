//! Whole-workspace scan throughput of the analyzer.
//!
//! Measures `analyze_sources` end to end — comment/string stripping,
//! tokenization, all per-file rules, the item index, the call graph and
//! the workspace rules — over the deterministic synthetic corpus from
//! [`hyperpower_analyze::corpus`]. The committed reference number lives
//! in `BENCH_analyze.json` at the workspace root, and
//! `tests/bench_ratchet.rs` fails the build if throughput regresses
//! below the recorded floor or the corpus silently changes shape.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hyperpower_analyze::corpus::{corpus_bytes, synthetic_files};

/// Must match `corpus_files` in `BENCH_analyze.json`.
const CORPUS_FILES: usize = 48;

fn scan_throughput(c: &mut Criterion) {
    let files = synthetic_files(CORPUS_FILES);
    let bytes = corpus_bytes(&files);
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();
    c.bench_function(
        &format!("analyze_sources/{CORPUS_FILES}files/{bytes}B"),
        |b| {
            b.iter(|| {
                let report = hyperpower_analyze::analyze_sources(black_box(&refs));
                assert!(report.is_clean());
                report.files_scanned
            })
        },
    );
}

criterion_group!(benches, scan_throughput);
criterion_main!(benches);
