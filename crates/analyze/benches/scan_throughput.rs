//! Whole-workspace scan throughput of the analyzer.
//!
//! Two workloads over the deterministic synthetic corpus from
//! [`hyperpower_analyze::corpus`]:
//!
//! * `analyze_sources` end to end — comment/string stripping,
//!   tokenization, all per-file rules, the item index, the call graph,
//!   the flow-sensitive rules and the workspace rules;
//! * the flow engine alone — per-function CFG construction plus the
//!   reaching-definitions worklist solve, isolated so a fixpoint
//!   regression cannot hide inside the whole-scan number.
//!
//! The committed reference numbers live in `BENCH_analyze.json` at the
//! workspace root, and `tests/bench_ratchet.rs` fails the build if
//! either throughput regresses below its recorded floor or the corpus
//! silently changes shape.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hyperpower_analyze::cfg::Cfg;
use hyperpower_analyze::corpus::{corpus_bytes, synthetic_files};
use hyperpower_analyze::dataflow::Dataflow;
use hyperpower_analyze::index::ItemIndex;
use hyperpower_analyze::SourceFile;

/// Must match `corpus_files` in `BENCH_analyze.json`.
const CORPUS_FILES: usize = 48;

fn scan_throughput(c: &mut Criterion) {
    let files = synthetic_files(CORPUS_FILES);
    let bytes = corpus_bytes(&files);
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();
    c.bench_function(
        &format!("analyze_sources/{CORPUS_FILES}files/{bytes}B"),
        |b| {
            b.iter(|| {
                let report = hyperpower_analyze::analyze_sources(black_box(&refs));
                assert!(report.is_clean());
                report.files_scanned
            })
        },
    );
}

fn cfg_dataflow_throughput(c: &mut Criterion) {
    let files = synthetic_files(CORPUS_FILES);
    let bytes = corpus_bytes(&files);
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, t)| SourceFile::from_source(PathBuf::from(p), t))
        .collect();
    let index = ItemIndex::build(&sources);
    c.bench_function(&format!("cfg_dataflow/{CORPUS_FILES}files/{bytes}B"), |b| {
        b.iter(|| {
            let mut solved = 0usize;
            for f in &index.functions {
                let Some(body) = f.body else { continue };
                let Some(src) = sources
                    .iter()
                    .find(|s| s.rel_path.to_string_lossy().replace('\\', "/") == f.file)
                else {
                    continue;
                };
                let cfg = Cfg::build(black_box(&src.tokens), body);
                let df = Dataflow::solve(&cfg, &src.tokens, &f.params);
                solved += df.defs.len();
            }
            assert!(solved > 0, "corpus produced no definitions");
            solved
        })
    });
}

criterion_group!(benches, scan_throughput, cfg_dataflow_throughput);
criterion_main!(benches);
