//! `--fix` must be idempotent: applying it to its own output changes
//! nothing.
//!
//! A fixer that keeps rewriting converged code is worse than no fixer —
//! it turns every CI run into a diff and erodes trust in the rewrites.
//! This test runs `fix_source` over every real library source file,
//! applies it a second time to whatever the first pass produced, and
//! fails if the second pass wants to touch a single byte. CI enforces
//! the same property end-to-end by running the binary's `--fix` twice
//! and diffing the tree.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower_analyze::fix::{apply_fixes, fix_source};
use hyperpower_analyze::{find_workspace_root, rust_files, LIBRARY_CRATES};

#[test]
fn second_fix_pass_is_a_no_op_on_every_library_file() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let mut checked = 0usize;
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src).expect("library sources listable") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            let rel = path.strip_prefix(&root).unwrap_or(&path).to_path_buf();
            let first = fix_source(rel.clone(), &text);
            // The committed tree should already be converged; a pending
            // rewrite here means someone forgot to run --fix, and the
            // second application must still land exactly there.
            let converged = first.text.unwrap_or(text);
            let second = fix_source(rel.clone(), &converged);
            assert!(
                second.text.is_none(),
                "fix is not idempotent on {}: second pass still rewrites",
                rel.display()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 40,
        "only {checked} files checked — idempotence sweep lost the source tree"
    );
}

/// R16 removal end-to-end: `apply_fixes` deletes a dormant grant, keeps a
/// consumed one, and converges — the second pass touches nothing.
#[test]
fn apply_fixes_removes_stale_allows_and_converges() {
    let tmp = std::env::temp_dir().join(format!("hp-fix-r16-{}", std::process::id()));
    let src_dir = tmp.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src_dir).expect("temp workspace creatable");
    let file = src_dir.join("config.rs");
    std::fs::write(
        &file,
        "// analyze::allow(R4)\npub fn log() { eprintln!(\"x\"); }\n\n// analyze::allow(R9)\npub fn quiet() -> usize {\n    64\n}\n",
    )
    .expect("temp source writable");

    let report = apply_fixes(&tmp).expect("fix pass runs");
    assert_eq!(
        report.allows_removed, 1,
        "exactly the dormant R9 grant goes"
    );
    assert_eq!(report.files_changed, 1);
    let fixed = std::fs::read_to_string(&file).expect("fixed source readable");
    assert!(
        fixed.contains("analyze::allow(R4)"),
        "consumed grant must survive:\n{fixed}"
    );
    assert!(
        !fixed.contains("allow(R9)"),
        "stale grant must be removed:\n{fixed}"
    );

    let again = apply_fixes(&tmp).expect("second fix pass runs");
    assert_eq!(again.files_changed, 0, "fix must converge after one pass");
    assert_eq!(again.allows_removed, 0);
    std::fs::remove_dir_all(&tmp).expect("temp workspace removable");
}

/// The committed tree carries no stale allow markers: a full-workspace
/// analysis followed by `fix_source_with` on its staleness facts rewrites
/// nothing. (The real burn-down lives in `analyze-baseline.json` and the
/// allow markers, both of which R16 audits.)
#[test]
fn committed_tree_has_no_stale_allows() {
    use hyperpower_analyze::analyze_sources;
    use hyperpower_analyze::Rule;
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let mut sources: Vec<(String, String)> = Vec::new();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src).expect("library sources listable") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            let rel = path.strip_prefix(&root).unwrap_or(&path);
            sources.push((rel.to_string_lossy().replace('\\', "/"), text));
        }
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();
    let report = analyze_sources(&refs);
    let stale: Vec<_> = report.findings_for(Rule::R16StaleAllow).collect();
    assert!(stale.is_empty(), "stale allow markers in tree: {stale:?}");
}
