//! `--fix` must be idempotent: applying it to its own output changes
//! nothing.
//!
//! A fixer that keeps rewriting converged code is worse than no fixer —
//! it turns every CI run into a diff and erodes trust in the rewrites.
//! This test runs `fix_source` over every real library source file,
//! applies it a second time to whatever the first pass produced, and
//! fails if the second pass wants to touch a single byte. CI enforces
//! the same property end-to-end by running the binary's `--fix` twice
//! and diffing the tree.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower_analyze::fix::fix_source;
use hyperpower_analyze::{find_workspace_root, rust_files, LIBRARY_CRATES};

#[test]
fn second_fix_pass_is_a_no_op_on_every_library_file() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let mut checked = 0usize;
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src).expect("library sources listable") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            let rel = path.strip_prefix(&root).unwrap_or(&path).to_path_buf();
            let first = fix_source(rel.clone(), &text);
            // The committed tree should already be converged; a pending
            // rewrite here means someone forgot to run --fix, and the
            // second application must still land exactly there.
            let converged = first.text.unwrap_or(text);
            let second = fix_source(rel.clone(), &converged);
            assert!(
                second.text.is_none(),
                "fix is not idempotent on {}: second pass still rewrites",
                rel.display()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 40,
        "only {checked} files checked — idempotence sweep lost the source tree"
    );
}
