//! Mutation test for R13 (checkpoint-header completeness).
//!
//! The point of R13 is that the analyzer — not a human reviewer — fails
//! the moment the executor-options ↔ checkpoint-header contract rots.
//! A rule like that needs proof it would actually fire: this test takes
//! the *real* `executor.rs` and `checkpoint.rs` sources, verifies the
//! live contract is clean, then applies minimal mutations (hide a header
//! field; add an undeclared executor knob) and asserts the analyzer
//! reports each one. If someone weakens R13 to the point of vacuity,
//! this test is what breaks.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower_analyze::{analyze_sources, find_workspace_root, Rule};

const OPTIONS_PATH: &str = "crates/core/src/executor.rs";
const HEADER_PATH: &str = "crates/core/src/checkpoint.rs";

fn real_sources() -> (String, String) {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let options = std::fs::read_to_string(root.join(OPTIONS_PATH)).expect("executor.rs readable");
    let header = std::fs::read_to_string(root.join(HEADER_PATH)).expect("checkpoint.rs readable");
    (options, header)
}

fn r13_count(options: &str, header: &str) -> usize {
    analyze_sources(&[(OPTIONS_PATH, options), (HEADER_PATH, header)])
        .findings_for(Rule::R13CheckpointHeader)
        .count()
}

#[test]
fn live_contract_is_clean() {
    let (options, header) = real_sources();
    assert_eq!(
        r13_count(&options, &header),
        0,
        "the real ExecutorOptions/CheckpointHeader contract must hold"
    );
}

#[test]
fn hiding_a_header_identity_field_is_detected() {
    let (options, header) = real_sources();
    // `recalibrate` is mapped from the `drift` knob; renaming the field
    // everywhere in checkpoint.rs simulates a refactor that drops it
    // from the run identity.
    let mutated = header.replace("recalibrate", "recalibrate_gone");
    assert_ne!(mutated, header, "mutation must actually change the source");
    assert!(
        r13_count(&options, &mutated) > 0,
        "R13 failed to notice a mapped header field disappearing"
    );
}

#[test]
fn adding_an_unmapped_executor_knob_is_detected() {
    let (options, header) = real_sources();
    let mutated = options.replace(
        "pub struct ExecutorOptions {",
        "pub struct ExecutorOptions {\n    pub unmapped_knob: u64,",
    );
    assert_ne!(mutated, options, "mutation must actually change the source");
    assert!(
        r13_count(&mutated, &header) > 0,
        "R13 failed to notice an executor knob with no identity declaration"
    );
}

#[test]
fn hiding_an_options_knob_is_detected_as_stale_map() {
    let (options, header) = real_sources();
    // Removing the `drift` field leaves the identity map pointing at a
    // knob that no longer exists.
    let mutated = options.replace("pub drift:", "pub drift_renamed:");
    assert_ne!(mutated, options, "mutation must actually change the source");
    assert!(
        r13_count(&mutated, &header) > 0,
        "R13 failed to notice an identity-mapped knob disappearing"
    );
}
