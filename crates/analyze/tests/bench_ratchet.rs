//! Throughput ratchet for the analyzer's whole-workspace scan.
//!
//! `BENCH_analyze.json` at the workspace root commits three facts about
//! the `benches/scan_throughput.rs` workload: the corpus shape
//! (`corpus_files`, `corpus_bytes` — so the measured workload can never
//! silently change meaning), the reference throughputs on the machine
//! that recorded them, and `floor_mbps`, a deliberately loose lower
//! bound (~10× slack under the debug-profile reference) that catches
//! order-of-magnitude regressions — an accidentally quadratic index
//! pass, a per-token allocation storm — without flaking on slow CI
//! hardware.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use hyperpower_analyze::corpus::{corpus_bytes, synthetic_files};
use hyperpower_analyze::find_workspace_root;

const BENCH_FILE: &str = "BENCH_analyze.json";

fn committed(key: &str, text: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = text
        .find(&pat)
        .unwrap_or_else(|| panic!("{BENCH_FILE} missing key {key}"))
        + pat.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{BENCH_FILE}: key {key} is not a number"))
}

#[test]
fn corpus_shape_matches_committed_reference() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let text = std::fs::read_to_string(root.join(BENCH_FILE)).expect("BENCH_analyze.json readable");

    let files = synthetic_files(committed("corpus_files", &text) as usize);
    assert_eq!(
        corpus_bytes(&files),
        committed("corpus_bytes", &text) as usize,
        "synthetic corpus changed shape: re-run `cargo bench -p hyperpower-analyze` and refresh {BENCH_FILE}"
    );
}

#[test]
fn scan_throughput_stays_above_committed_floor() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let text = std::fs::read_to_string(root.join(BENCH_FILE)).expect("BENCH_analyze.json readable");
    let floor_mbps = committed("floor_mbps", &text);

    let files = synthetic_files(committed("corpus_files", &text) as usize);
    let bytes = corpus_bytes(&files) as f64;
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();

    // Warm up once (page in code paths), then take the best of three —
    // the ratchet bounds capability, not scheduler noise.
    let _ = hyperpower_analyze::analyze_sources(&refs);
    let mut best_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let report = hyperpower_analyze::analyze_sources(&refs);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.is_clean());
        best_secs = best_secs.min(secs);
    }
    let mbps = bytes / 1e6 / best_secs;
    assert!(
        mbps >= floor_mbps,
        "scan throughput regressed: {mbps:.2} MB/s < committed floor {floor_mbps} MB/s ({BENCH_FILE})"
    );
}
