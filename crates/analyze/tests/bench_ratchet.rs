//! Throughput ratchet for the analyzer's whole-workspace scan.
//!
//! `BENCH_analyze.json` at the workspace root commits the facts about
//! the `benches/scan_throughput.rs` workloads: the corpus shape
//! (`corpus_files`, `corpus_bytes` — so the measured workload can never
//! silently change meaning), the reference throughputs on the machine
//! that recorded them, and two deliberately loose lower bounds
//! (~10× slack under the debug-profile references) that catch
//! order-of-magnitude regressions without flaking on slow CI hardware:
//! `floor_mbps` for the whole scan and `dataflow_floor_mbps` for the
//! isolated CFG + reaching-definitions solve — an accidentally
//! quadratic index pass, a per-token allocation storm, or a worklist
//! that stops converging linearly all trip one of them.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use hyperpower_analyze::corpus::{corpus_bytes, synthetic_files};
use hyperpower_analyze::find_workspace_root;

const BENCH_FILE: &str = "BENCH_analyze.json";

fn committed(key: &str, text: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let start = text
        .find(&pat)
        .unwrap_or_else(|| panic!("{BENCH_FILE} missing key {key}"))
        + pat.len();
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{BENCH_FILE}: key {key} is not a number"))
}

#[test]
fn corpus_shape_matches_committed_reference() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let text = std::fs::read_to_string(root.join(BENCH_FILE)).expect("BENCH_analyze.json readable");

    let files = synthetic_files(committed("corpus_files", &text) as usize);
    assert_eq!(
        corpus_bytes(&files),
        committed("corpus_bytes", &text) as usize,
        "synthetic corpus changed shape: re-run `cargo bench -p hyperpower-analyze` and refresh {BENCH_FILE}"
    );
}

#[test]
fn scan_throughput_stays_above_committed_floor() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let text = std::fs::read_to_string(root.join(BENCH_FILE)).expect("BENCH_analyze.json readable");
    let floor_mbps = committed("floor_mbps", &text);

    let files = synthetic_files(committed("corpus_files", &text) as usize);
    let bytes = corpus_bytes(&files) as f64;
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();

    // Warm up once (page in code paths), then take the best of three —
    // the ratchet bounds capability, not scheduler noise.
    let _ = hyperpower_analyze::analyze_sources(&refs);
    let mut best_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let report = hyperpower_analyze::analyze_sources(&refs);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.is_clean());
        best_secs = best_secs.min(secs);
    }
    let mbps = bytes / 1e6 / best_secs;
    eprintln!("scan throughput: {mbps:.2} MB/s (floor {floor_mbps})");
    assert!(
        mbps >= floor_mbps,
        "scan throughput regressed: {mbps:.2} MB/s < committed floor {floor_mbps} MB/s ({BENCH_FILE})"
    );
}

#[test]
fn dataflow_throughput_stays_above_committed_floor() {
    use hyperpower_analyze::cfg::Cfg;
    use hyperpower_analyze::dataflow::Dataflow;
    use hyperpower_analyze::index::ItemIndex;
    use hyperpower_analyze::SourceFile;

    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let text = std::fs::read_to_string(root.join(BENCH_FILE)).expect("BENCH_analyze.json readable");
    let floor_mbps = committed("dataflow_floor_mbps", &text);

    let files = synthetic_files(committed("corpus_files", &text) as usize);
    let bytes = corpus_bytes(&files) as f64;
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, t)| SourceFile::from_source(std::path::PathBuf::from(p), t))
        .collect();
    let index = ItemIndex::build(&sources);

    let solve_all = || {
        let mut solved = 0usize;
        for f in &index.functions {
            let Some(body) = f.body else { continue };
            let Some(src) = sources
                .iter()
                .find(|s| s.rel_path.to_string_lossy().replace('\\', "/") == f.file)
            else {
                continue;
            };
            let cfg = Cfg::build(&src.tokens, body);
            let df = Dataflow::solve(&cfg, &src.tokens, &f.params);
            solved += df.defs.len();
        }
        solved
    };

    // Warm up once, then best of three (capability, not scheduler noise).
    assert!(solve_all() > 0, "corpus produced no definitions");
    let mut best_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let solved = solve_all();
        let secs = start.elapsed().as_secs_f64();
        assert!(solved > 0);
        best_secs = best_secs.min(secs);
    }
    let mbps = bytes / 1e6 / best_secs;
    eprintln!("dataflow throughput: {mbps:.2} MB/s (floor {floor_mbps})");
    assert!(
        mbps >= floor_mbps,
        "dataflow throughput regressed: {mbps:.2} MB/s < committed floor {floor_mbps} MB/s ({BENCH_FILE})"
    );
}
