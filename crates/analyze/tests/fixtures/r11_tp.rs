//@file: crates/gp/src/sampler.rs
pub fn mint_stream() -> u64 {
    let rng = StdRng::seed_from_u64(7);
    let _ = rng;
    7
}

//@file: crates/gp/src/acquire.rs
pub fn next_candidate() -> u64 {
    mint_stream()
}
