//@file: crates/core/src/pool.rs
use std::sync::Mutex;

pub struct Shared {
    inner: Mutex<u64>,
}
