//@file: crates/gpu-sim/src/noise.rs
pub struct Noise {
    rng: Lcg,
}
impl Noise {
    pub fn jitter(&mut self, hot: bool) -> f64 {
        if hot {
            self.rng.random_range(0.0..1.0)
        } else {
            0.0
        }
    }
}
