//@file: crates/gpu-sim/src/accumulate.rs
pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}
