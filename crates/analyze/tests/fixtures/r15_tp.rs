//@file: crates/core/src/executor.rs
pub fn commit(samples: &mut Vec<u64>, tasks: &[u64], cursor: usize) {
    samples.push(route(tasks, cursor));
}
//@file: crates/core/src/schedule.rs
pub fn route(tasks: &[u64], cursor: usize) -> u64 {
    match tasks.get(cursor) {
        Some(t) => *t,
        None => unreachable!("cursor is clamped by the scheduler"),
    }
}
