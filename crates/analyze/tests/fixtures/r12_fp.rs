//@file: crates/core/src/executor.rs
use std::sync::Mutex;

pub struct WorkerSlot {
    result: Mutex<u64>,
}

//@file: crates/core/src/driver.rs
pub fn commit(samples: &mut Vec<u64>, v: u64) {
    samples.push(v);
}
