//@file: crates/core/src/scenario.rs
pub fn derive_stream(seed: u64) -> u64 {
    fork(seed)
}

//@file: crates/core/src/streams.rs
pub fn fork(seed: u64) -> u64 {
    let rng = StdRng::seed_from_u64(seed);
    let _ = rng;
    seed
}
