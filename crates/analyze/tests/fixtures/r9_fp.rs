//@file: crates/data/src/cache.rs
use std::collections::HashMap;

pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}

//@file: crates/core/src/lookup.rs
pub fn live() -> usize {
    0
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_in_test_code_is_fine() {
        let mut s = HashSet::new();
        s.insert(1_u64);
        assert!(s.contains(&1));
    }
}
