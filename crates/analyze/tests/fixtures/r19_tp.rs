//@file: crates/core/src/lib.rs
pub fn step() {}
//@file: determinism-certificate.json
{
  "schema": "hyperpower-determinism-certificate/v1",
  "provenance": "analyzer-v4",
  "crates": [
    {
      "crate": "crates/core",
      "files": 1,
      "facts": [
        {"fact": "no-wall-clock-flow", "rules": ["R1", "R10"], "status": "proved"},
        {"fact": "all-rng-rooted", "rules": ["R8", "R11"], "status": "proved"},
        {"fact": "no-unordered-collections", "rules": ["R9"], "status": "proved"},
        {"fact": "panic-free-commit-path", "rules": ["R15"], "status": "refuted-by-2-findings"},
        {"fact": "header-complete", "rules": ["R13"], "status": "proved"}
      ]
    }
  ]
}
