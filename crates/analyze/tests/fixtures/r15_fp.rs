//@file: crates/core/src/executor.rs
pub fn commit(samples: &mut Vec<u64>, tasks: &[u64]) {
    let mut total = 0;
    for i in 0..tasks.len() {
        total += tasks[i];
    }
    samples.push(total);
}
//@file: crates/core/src/schedule.rs
pub fn orphan(tasks: &[u64], cursor: usize) -> u64 {
    tasks[cursor]
}
