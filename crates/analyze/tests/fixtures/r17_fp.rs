//@file: crates/core/src/trace.rs
pub fn warm_cache() {}
pub fn fallible() -> Result<(), u8> {
    Ok(())
}
pub fn tick() {
    let _ = warm_cache();
}
#[cfg(test)]
mod tests {
    #[test]
    fn discard_in_test_is_fine() {
        let _ = super::fallible();
    }
}
//@file: crates/gp/src/lib.rs
pub fn fit() -> Result<(), u8> {
    Ok(())
}
pub fn refresh() {
    let _ = fit();
}
