//@file: crates/core/src/timer.rs
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

//@file: crates/core/src/caller.rs
use crate::timer::stamp;

pub fn elapsed_marker() -> u64 {
    let _t = stamp();
    0
}
