//@file: crates/core/src/executor.rs
pub struct ExecutorOptions {
    pub workers: usize,
    pub mystery_knob: u64,
}
