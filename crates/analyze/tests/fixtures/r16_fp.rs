//@file: crates/core/src/config.rs
// analyze::allow(R4)
pub fn log_retry(n: usize) { eprintln!("retrying ({n})"); }
// kept as documentation of the blessing: analyze::allow(R14, R16)
pub fn fold_sum(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, x| a + x)
}
#[cfg(test)]
mod tests {
    // analyze::allow(R9)
    fn quiet() {}
}
