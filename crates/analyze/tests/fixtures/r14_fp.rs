//@file: crates/gpu-sim/src/count.rs
pub fn stats(xs: &[f64]) -> (usize, f64) {
    let mut n = 0;
    for x in xs {
        if *x > 0.0 {
            n += 1;
        }
    }
    let mut scale_factor = 1.0;
    scale_factor += 0.5;
    (n, scale_factor)
}

//@file: crates/data/src/gen.rs
pub fn running(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}
