//@file: crates/core/src/config.rs
// analyze::allow(R9)
pub fn max_batches() -> usize {
    64
}
