//@file: crates/gpu-sim/src/noise.rs
pub fn perturb(rng: &mut Lcg, hot: bool) -> f64 {
    if hot {
        rng.random_range(0.5..1.0)
    } else {
        rng.random_range(0.0..0.5)
    }
}
pub fn spawn_stream(seed: u64) -> Lcg {
    let mut rng = Lcg::seed_from_u64(seed);
    if seed == 0 {
        rng.random_range(0..7);
    }
    rng
}
