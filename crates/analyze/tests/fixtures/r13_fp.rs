//@file: crates/gp/src/options.rs
pub struct ExecutorOptions {
    pub mystery_knob: u64,
}
