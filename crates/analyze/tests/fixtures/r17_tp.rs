//@file: crates/core/src/trace.rs
pub fn persist(path: &str) -> Result<(), u8> {
    if path.is_empty() {
        Err(1)
    } else {
        Ok(())
    }
}
pub fn on_shutdown() {
    let _ = persist("trace.bin");
}
