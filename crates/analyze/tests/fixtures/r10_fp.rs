//@file: crates/core/src/clock_like.rs
pub struct Cursor {
    pos: u64,
}

impl Cursor {
    pub fn new(pos: u64) -> Self {
        Cursor { pos }
    }

    pub fn now(&self) -> u64 {
        self.pos
    }
}

//@file: crates/core/src/consumer.rs
use crate::clock_like::Cursor;

pub fn advance(c: &Cursor) -> u64 {
    c.now() + 1
}
