//! Adversarial fixture corpus for the workspace rules R9–R19.
//!
//! Each fixture under `tests/fixtures/` is a miniature multi-file
//! workspace in one file: `//@file: <workspace-relative path>` marker
//! lines delimit the member sources. Per rule there are two fixtures:
//!
//! * `rN_tp.rs` — a **true positive** the rule must flag;
//! * `rN_fp.rs` — a **near-miss** (out-of-scope crate, test-only code,
//!   name collision, declared boundary, …) the rule must *not* flag.
//!
//! Assertions are scoped to the rule under test — a TP fixture may
//! legitimately trip neighbouring rules (a clock read that seeds R10
//! taint is itself an R1 finding), and pinning those here would turn
//! every rule tweak into fixture churn.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower_analyze::{analyze_sources, Rule};

/// Splits a fixture into its member `(path, source)` pairs.
fn parse_fixture(text: &str) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(path) = line.strip_prefix("//@file: ") {
            files.push((path.trim().to_string(), String::new()));
        } else if let Some((_, body)) = files.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    assert!(!files.is_empty(), "fixture has no //@file: markers");
    files
}

/// Number of findings of `rule` when analyzing the fixture.
fn count(fixture: &str, rule: Rule) -> usize {
    let files = parse_fixture(fixture);
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    analyze_sources(&refs).findings_for(rule).count()
}

/// (fixture name, contents, rule under test, expects findings).
const CASES: &[(&str, &str, Rule, bool)] = &[
    (
        "r9_tp",
        include_str!("fixtures/r9_tp.rs"),
        Rule::R9UnorderedCollections,
        true,
    ),
    (
        "r9_fp",
        include_str!("fixtures/r9_fp.rs"),
        Rule::R9UnorderedCollections,
        false,
    ),
    (
        "r10_tp",
        include_str!("fixtures/r10_tp.rs"),
        Rule::R10WallClockFlow,
        true,
    ),
    (
        "r10_fp",
        include_str!("fixtures/r10_fp.rs"),
        Rule::R10WallClockFlow,
        false,
    ),
    (
        "r11_tp",
        include_str!("fixtures/r11_tp.rs"),
        Rule::R11RngFlow,
        true,
    ),
    (
        "r11_fp",
        include_str!("fixtures/r11_fp.rs"),
        Rule::R11RngFlow,
        false,
    ),
    (
        "r12_tp",
        include_str!("fixtures/r12_tp.rs"),
        Rule::R12ConcurrencyBoundary,
        true,
    ),
    (
        "r12_fp",
        include_str!("fixtures/r12_fp.rs"),
        Rule::R12ConcurrencyBoundary,
        false,
    ),
    (
        "r13_tp",
        include_str!("fixtures/r13_tp.rs"),
        Rule::R13CheckpointHeader,
        true,
    ),
    (
        "r13_fp",
        include_str!("fixtures/r13_fp.rs"),
        Rule::R13CheckpointHeader,
        false,
    ),
    (
        "r14_tp",
        include_str!("fixtures/r14_tp.rs"),
        Rule::R14OrderSensitiveReduction,
        true,
    ),
    (
        "r14_fp",
        include_str!("fixtures/r14_fp.rs"),
        Rule::R14OrderSensitiveReduction,
        false,
    ),
    (
        "r15_tp",
        include_str!("fixtures/r15_tp.rs"),
        Rule::R15PanicPath,
        true,
    ),
    (
        "r15_fp",
        include_str!("fixtures/r15_fp.rs"),
        Rule::R15PanicPath,
        false,
    ),
    (
        "r16_tp",
        include_str!("fixtures/r16_tp.rs"),
        Rule::R16StaleAllow,
        true,
    ),
    (
        "r16_fp",
        include_str!("fixtures/r16_fp.rs"),
        Rule::R16StaleAllow,
        false,
    ),
    (
        "r17_tp",
        include_str!("fixtures/r17_tp.rs"),
        Rule::R17DiscardedResult,
        true,
    ),
    (
        "r17_fp",
        include_str!("fixtures/r17_fp.rs"),
        Rule::R17DiscardedResult,
        false,
    ),
    (
        "r18_tp",
        include_str!("fixtures/r18_tp.rs"),
        Rule::R18BranchDivergentRng,
        true,
    ),
    (
        "r18_fp",
        include_str!("fixtures/r18_fp.rs"),
        Rule::R18BranchDivergentRng,
        false,
    ),
    (
        "r19_tp",
        include_str!("fixtures/r19_tp.rs"),
        Rule::R19DeterminismCertificate,
        true,
    ),
    (
        "r19_fp",
        include_str!("fixtures/r19_fp.rs"),
        Rule::R19DeterminismCertificate,
        false,
    ),
];

#[test]
fn every_workspace_rule_has_a_tp_and_fp_fixture() {
    for rule in [
        Rule::R9UnorderedCollections,
        Rule::R10WallClockFlow,
        Rule::R11RngFlow,
        Rule::R12ConcurrencyBoundary,
        Rule::R13CheckpointHeader,
        Rule::R14OrderSensitiveReduction,
        Rule::R15PanicPath,
        Rule::R16StaleAllow,
        Rule::R17DiscardedResult,
        Rule::R18BranchDivergentRng,
        Rule::R19DeterminismCertificate,
    ] {
        for expect in [true, false] {
            assert!(
                CASES.iter().any(|(_, _, r, e)| *r == rule && *e == expect),
                "{} is missing a {} fixture",
                rule.id(),
                if expect {
                    "true-positive"
                } else {
                    "false-positive"
                }
            );
        }
    }
}

#[test]
fn true_positives_fire_and_near_misses_stay_silent() {
    for (name, fixture, rule, expect_findings) in CASES {
        let n = count(fixture, *rule);
        if *expect_findings {
            assert!(
                n > 0,
                "fixture {name}: expected ≥1 {} finding, got none",
                rule.id()
            );
        } else {
            assert_eq!(
                n,
                0,
                "fixture {name}: expected no {} findings, got {n}",
                rule.id()
            );
        }
    }
}
