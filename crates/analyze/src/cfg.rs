//! Per-function control-flow graphs lowered from the token stream.
//!
//! [`Cfg::build`] turns one function body (a token range from
//! [`crate::index::FnItem::body`]) into basic blocks connected by edges:
//! `if`/`else if`/`else` chains and `match` expressions fork into one
//! block per arm and re-join; `for`/`while`/`loop` bodies get back edges
//! through a header block; `return` and the `?` operator add edges to the
//! synthetic exit block. Each block carries the *straight-line* token
//! segments that execute in it — disjoint across blocks — which is what
//! the worklist solver in [`crate::dataflow`] consumes. Branches are
//! additionally recorded with their full arm token spans (overlapping the
//! nested blocks on purpose) so arm-local scans like R18's RNG-draw
//! counting can see everything an arm executes.
//!
//! The lowering is deliberately approximate where precision buys nothing
//! for the rules built on top: `break`/`continue` fall through to the
//! next statement (over-approximating reachability, which only ever makes
//! the dataflow *more* conservative), and closure bodies are lowered as
//! if inline in the enclosing function.

use crate::token::{matching_close, Token, TokenKind};

/// What kind of fork a [`Branch`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// An `if` / `else if` / `else` chain (one branch for the whole chain).
    If,
    /// A `match` expression (one arm span per match arm).
    Match,
}

/// One multi-way fork in a function body, with the full token span of
/// each arm (inclusive of nested control flow).
#[derive(Debug, Clone)]
pub struct Branch {
    /// The fork kind.
    pub kind: BranchKind,
    /// 1-based line of the `if`/`match` keyword.
    pub line: usize,
    /// Inclusive token ranges of each arm body (braces included for
    /// block arms).
    pub arms: Vec<(usize, usize)>,
    /// For [`BranchKind::If`]: whether a final `else` exists. When it
    /// does not, control may skip every arm (an implicit empty arm).
    pub has_else: bool,
}

impl Branch {
    /// The inclusive token span covering every arm of this branch.
    pub fn span(&self) -> (usize, usize) {
        let lo = self.arms.iter().map(|a| a.0).min().unwrap_or(0);
        let hi = self.arms.iter().map(|a| a.1).max().unwrap_or(0);
        (lo, hi)
    }
}

/// One basic block: an ordered list of disjoint straight-line token
/// segments plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Half-open `[start, end)` token ranges executed in this block, in
    /// order. Disjoint across all blocks of the CFG.
    pub segments: Vec<(usize, usize)>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph over the file's token stream.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The blocks; `blocks[entry]` is the function entry.
    pub blocks: Vec<Block>,
    /// Every `if`/`match` fork found, in source order.
    pub branches: Vec<Branch>,
    /// Entry block index.
    pub entry: usize,
    /// Synthetic exit block index (`return` / `?` / fall-off edges).
    pub exit: usize,
}

impl Cfg {
    /// Lowers the body `{ … }` at token range `body` (inclusive braces)
    /// into a CFG.
    pub fn build(toks: &[Token], body: (usize, usize)) -> Cfg {
        let mut b = Builder {
            toks,
            blocks: vec![Block::default(), Block::default()],
            branches: Vec::new(),
        };
        let last = b.lower(body.0 + 1, body.1, 0);
        b.blocks[last].succs.push(1);
        Cfg {
            blocks: b.blocks,
            branches: b.branches,
            entry: 0,
            exit: 1,
        }
    }

    /// Predecessor lists, computed from the successor edges.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(i);
            }
        }
        preds
    }

    /// The block whose segments contain token index `at`, if any.
    pub fn block_at(&self, at: usize) -> Option<usize> {
        self.blocks.iter().position(|b| {
            b.segments
                .iter()
                .any(|&(start, end)| start <= at && at < end)
        })
    }
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    branches: Vec<Branch>,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn seg(&mut self, block: usize, start: usize, end: usize) {
        if start < end {
            self.blocks[block].segments.push((start, end));
        }
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lowers tokens in `[start, end)` starting in block `cur`; returns
    /// the block where control continues afterwards.
    fn lower(&mut self, start: usize, end: usize, mut cur: usize) -> usize {
        let mut seg_start = start;
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokenKind::Ident {
                // `match x { … }` in expression position only: a `match`
                // preceded by `.` is a method/field named `match` (not
                // legal Rust, but stay safe) and `::` a path segment.
                let prefixed =
                    i > 0 && (self.toks[i - 1].is_punct(".") || self.toks[i - 1].is_punct("::"));
                if !prefixed {
                    match t.text.as_str() {
                        "if" => {
                            self.seg(cur, seg_start, i);
                            let (join, after) = self.lower_if_chain(i, end, cur);
                            cur = join;
                            i = after;
                            seg_start = after;
                            continue;
                        }
                        "match" => {
                            if let Some((join, after)) = self.lower_match(i, end, cur) {
                                self.seg(cur, seg_start, i);
                                // The scrutinee tokens run in `cur`.
                                self.seg(cur, i, self.match_open(i, end).unwrap_or(i));
                                cur = join;
                                i = after;
                                seg_start = after;
                                continue;
                            }
                        }
                        "for" | "while" | "loop" => {
                            if let Some((join, after)) = self.lower_loop(i, end, cur) {
                                self.seg(cur, seg_start, i);
                                cur = join;
                                i = after;
                                seg_start = after;
                                continue;
                            }
                        }
                        "return" => {
                            // The return expression still executes here;
                            // the edge to exit is added when the statement
                            // ends. Approximation: keep scanning — code
                            // after `return` is dead but harmless to scan.
                            self.edge(cur, 1);
                        }
                        _ => {}
                    }
                }
            } else if t.is_punct("?") {
                self.edge(cur, 1);
            }
            i += 1;
        }
        self.seg(cur, seg_start, end);
        cur
    }

    /// The opening brace of the `match` body, scanning past the scrutinee.
    fn match_open(&self, kw: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in kw + 1..end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                return Some(j);
            } else if t.is_punct(";") && depth == 0 {
                return None;
            }
        }
        None
    }

    /// Lowers the full `if` / `else if` / `else` chain whose `if` keyword
    /// sits at `kw`. Returns `(join block, index after the chain)`.
    fn lower_if_chain(&mut self, kw: usize, end: usize, cur: usize) -> (usize, usize) {
        let join = self.new_block();
        let line = self.toks[kw].line;
        let mut arms = Vec::new();
        let mut has_else = false;
        let mut i = kw;
        loop {
            // `i` is at an `if` keyword: condition runs to the body brace.
            let Some(open) = self.match_open(i, end) else {
                // Malformed / truncated: treat as straight-line.
                self.edge(cur, join);
                return (join, i + 1);
            };
            let Some(close) = matching_close(self.toks, open, "{", "}") else {
                self.edge(cur, join);
                return (join, open + 1);
            };
            arms.push((open, close));
            let arm = self.new_block();
            self.edge(cur, arm);
            // Condition tokens run in the arm block so `if let` bindings
            // reach the arm body.
            self.seg(arm, i + 1, open);
            let last = self.lower(open + 1, close, arm);
            self.edge(last, join);

            let mut j = close + 1;
            if j < end && self.toks[j].is_ident("else") {
                j += 1;
                if j < end && self.toks[j].is_ident("if") {
                    i = j;
                    continue;
                }
                // Final `else { … }`.
                if j < end && self.toks[j].is_punct("{") {
                    if let Some(ec) = matching_close(self.toks, j, "{", "}") {
                        arms.push((j, ec));
                        has_else = true;
                        let arm = self.new_block();
                        self.edge(cur, arm);
                        let last = self.lower(j + 1, ec, arm);
                        self.edge(last, join);
                        j = ec + 1;
                    }
                }
                self.finish_branch(BranchKind::If, line, arms, has_else, cur, join);
                return (join, j);
            }
            self.finish_branch(BranchKind::If, line, arms, false, cur, join);
            return (join, j);
        }
    }

    fn finish_branch(
        &mut self,
        kind: BranchKind,
        line: usize,
        arms: Vec<(usize, usize)>,
        has_else: bool,
        cur: usize,
        join: usize,
    ) {
        if !has_else && kind == BranchKind::If {
            // Control may skip every arm.
            self.edge(cur, join);
        }
        self.branches.push(Branch {
            kind,
            line,
            arms,
            has_else,
        });
    }

    /// Lowers the `match` at `kw`. Returns `(join, index after)`.
    fn lower_match(&mut self, kw: usize, end: usize, cur: usize) -> Option<(usize, usize)> {
        let open = self.match_open(kw, end)?;
        let close = matching_close(self.toks, open, "{", "}")?;
        let join = self.new_block();
        let mut arms = Vec::new();
        let mut i = open + 1;
        while i < close {
            // Pattern (and optional guard) up to the top-level `=>`.
            let pat_start = i;
            let mut depth = 0i32;
            let mut arrow = None;
            while i < close {
                let t = &self.toks[i];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct("=>") && depth == 0 {
                    arrow = Some(i);
                    break;
                }
                i += 1;
            }
            let arrow = arrow?;
            // Arm body: a `{ … }` block, or an expression up to the
            // top-level `,` (or the match close).
            let body_start = arrow + 1;
            let (body_end_incl, next) =
                if self.toks.get(body_start).is_some_and(|t| t.is_punct("{")) {
                    let bc = matching_close(self.toks, body_start, "{", "}")?;
                    let mut n = bc + 1;
                    if n < close && self.toks[n].is_punct(",") {
                        n += 1;
                    }
                    (bc, n)
                } else {
                    let mut depth = 0i32;
                    let mut j = body_start;
                    while j < close {
                        let t = &self.toks[j];
                        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                            depth += 1;
                        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                            depth -= 1;
                        } else if t.is_punct(",") && depth == 0 {
                            break;
                        }
                        j += 1;
                    }
                    (j.saturating_sub(1).max(body_start), (j + 1).min(close))
                };
            arms.push((body_start, body_end_incl));
            let arm = self.new_block();
            self.edge(cur, arm);
            // Pattern bindings reach the arm body.
            self.seg(arm, pat_start, arrow);
            let last = if self.toks[body_start].is_punct("{") {
                self.lower(body_start + 1, body_end_incl, arm)
            } else {
                self.lower(body_start, body_end_incl + 1, arm)
            };
            self.edge(last, join);
            i = next;
        }
        if arms.is_empty() {
            // `match never {}` — uninhabited scrutinee.
            self.edge(cur, join);
        }
        self.branches.push(Branch {
            kind: BranchKind::Match,
            line: self.toks[kw].line,
            arms,
            has_else: true,
        });
        Some((join, close + 1))
    }

    /// Lowers the `for`/`while`/`loop` at `kw`. Returns `(join, after)`.
    fn lower_loop(&mut self, kw: usize, end: usize, cur: usize) -> Option<(usize, usize)> {
        let open = if self.toks[kw].is_ident("loop") {
            let j = kw + 1;
            if self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
                j
            } else {
                return None;
            }
        } else {
            self.match_open(kw, end)?
        };
        let close = matching_close(self.toks, open, "{", "}")?;
        let header = self.new_block();
        let body = self.new_block();
        let join = self.new_block();
        self.edge(cur, header);
        // Header tokens (`for pat in iter` / `while cond`) run in the
        // header block, so loop-variable defs reach the body.
        self.seg(header, kw, open);
        self.edge(header, body);
        self.edge(header, join);
        let last = self.lower(open + 1, close, body);
        self.edge(last, header);
        Some((join, close + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn build(src: &str) -> (Vec<Token>, Cfg) {
        let toks = tokenize(src);
        let open = toks.iter().position(|t| t.is_punct("{")).unwrap();
        let close = matching_close(&toks, open, "{", "}").unwrap();
        let cfg = Cfg::build(&toks, (open, close));
        (toks, cfg)
    }

    #[test]
    fn straight_line_body_is_one_block_plus_exit() {
        let (_, cfg) = build("fn f() { let x = 1; let y = x; }");
        assert_eq!(cfg.branches.len(), 0);
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit));
    }

    #[test]
    fn if_without_else_records_skippable_branch() {
        let (_, cfg) = build("fn f(c: bool) { if c { work(); } done(); }");
        assert_eq!(cfg.branches.len(), 1);
        let b = &cfg.branches[0];
        assert_eq!(b.kind, BranchKind::If);
        assert!(!b.has_else);
        assert_eq!(b.arms.len(), 1);
    }

    #[test]
    fn else_if_chain_is_one_branch_with_all_arms() {
        let (_, cfg) =
            build("fn f(c: u8) { if c == 0 { a(); } else if c == 1 { b(); } else { c(); } }");
        assert_eq!(cfg.branches.len(), 1);
        let b = &cfg.branches[0];
        assert!(b.has_else);
        assert_eq!(b.arms.len(), 3);
    }

    #[test]
    fn match_arms_are_recorded_with_expression_and_block_bodies() {
        let (_, cfg) = build("fn f(c: u8) { match c { 0 => a(), 1 => { b(); } _ => c(), } }");
        assert_eq!(cfg.branches.len(), 1);
        let b = &cfg.branches[0];
        assert_eq!(b.kind, BranchKind::Match);
        assert_eq!(b.arms.len(), 3);
    }

    #[test]
    fn loop_body_has_back_edge_through_header() {
        let (_, cfg) = build("fn f(xs: &[f64]) { for x in xs { use_it(x); } }");
        // entry → header → body → header, header → join → exit.
        let preds = cfg.preds();
        let header = cfg.blocks[cfg.entry].succs[0];
        assert!(preds[header].len() >= 2, "header needs entry + back edge");
    }

    #[test]
    fn question_mark_and_return_edge_to_exit() {
        let (_, cfg) = build("fn f() -> Result<(), E> { step()?; return Ok(()); }");
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit));
    }

    #[test]
    fn segments_are_disjoint_across_blocks() {
        let (toks, cfg) = build(
            "fn f(c: bool, xs: &[f64]) { let mut s = 0.0; if c { for x in xs { s += x; } } else { s = 1.0; } end(s); }",
        );
        let mut covered = vec![0u8; toks.len()];
        for b in &cfg.blocks {
            for &(s, e) in &b.segments {
                for c in covered.iter_mut().take(e).skip(s) {
                    *c += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c <= 1), "overlapping segments");
    }

    #[test]
    fn nested_generics_in_signatures_do_not_derail_lowering() {
        let (_, cfg) = build(
            "fn f(m: Vec<Vec<u64>>) { let x: Vec<Vec<u64>> = m; if x.is_empty() { give_up(); } }",
        );
        assert_eq!(cfg.branches.len(), 1);
    }
}
