//! Approximate workspace call graph over the [`crate::index`] item index.
//!
//! Edges are materialised only when a call site resolves *confidently*:
//!
//! * `Type::name(…)` path calls resolve through `impl` ownership — the
//!   callee must be a workspace `fn name` defined in an `impl Type` (or
//!   `impl Trait for Type`) block, and unique among those.
//! * Plain `name(…)` calls and `.name(…)` method calls resolve only when
//!   exactly one workspace function carries that name at all — a unique
//!   name cannot be confused with a std/vendored method.
//!
//! Anything ambiguous (two candidates, or a name that also exists outside
//! the workspace) produces **no** edge. The cross-file rules built on top
//! (R10 wall-clock flow, R11 RNG flow) therefore under-approximate rather
//! than hallucinate: a missing edge can hide a finding, never invent one.

use crate::index::ItemIndex;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the calling function in [`ItemIndex::functions`].
    pub caller: usize,
    /// Index of the called function in [`ItemIndex::functions`].
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
}

/// The resolved call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Confident edges, in caller order.
    pub edges: Vec<Edge>,
}

impl CallGraph {
    /// Resolves every call site in the index into confident edges.
    pub fn build(index: &ItemIndex) -> Self {
        let mut edges = Vec::new();
        for (caller, f) in index.functions.iter().enumerate() {
            for call in &f.calls {
                let candidates: Vec<usize> = match &call.qualifier {
                    Some(ty) => index
                        .functions_named(&call.name)
                        .filter(|(_, g)| g.owner.as_deref() == Some(ty.as_str()))
                        .map(|(i, _)| i)
                        .collect(),
                    None => {
                        let all: Vec<usize> =
                            index.functions_named(&call.name).map(|(i, _)| i).collect();
                        // Unique-name rule: with several same-named fns (or a
                        // method call that might target a std type) we cannot
                        // tell which one is meant — drop the edge.
                        if all.len() == 1 {
                            all
                        } else {
                            Vec::new()
                        }
                    }
                };
                if candidates.len() == 1 && candidates[0] != caller {
                    edges.push(Edge {
                        caller,
                        callee: candidates[0],
                        line: call.line,
                    });
                }
            }
        }
        CallGraph { edges }
    }

    /// Call edges into `callee`, as `(caller, line)` pairs.
    pub fn callers_of(&self, callee: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.callee == callee)
            .map(|e| (e.caller, e.line))
    }

    /// Propagates a seed predicate backwards: returns, for every function,
    /// whether it is a seed or (transitively) calls one. Used to taint
    /// wall-clock readers through helper chains.
    pub fn taint_callers(&self, n_functions: usize, seeds: &[bool]) -> Vec<bool> {
        let mut tainted = seeds.to_vec();
        tainted.resize(n_functions, false);
        loop {
            let mut changed = false;
            for e in &self.edges {
                if tainted[e.callee] && !tainted[e.caller] {
                    tainted[e.caller] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        tainted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ItemIndex;
    use crate::scan::SourceFile;
    use std::path::PathBuf;

    fn graph_of(files: &[(&str, &str)]) -> (ItemIndex, CallGraph) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_source(PathBuf::from(p), s))
            .collect();
        let index = ItemIndex::build(&sources);
        let graph = CallGraph::build(&index);
        (index, graph)
    }

    fn edge_names(index: &ItemIndex, graph: &CallGraph) -> Vec<(String, String)> {
        graph
            .edges
            .iter()
            .map(|e| {
                (
                    index.functions[e.caller].name.clone(),
                    index.functions[e.callee].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn unique_plain_call_resolves_across_files() {
        let (ix, g) = graph_of(&[
            ("crates/core/src/a.rs", "pub fn caller() { helper(1); }\n"),
            (
                "crates/core/src/b.rs",
                "pub fn helper(x: u64) -> u64 { x }\n",
            ),
        ]);
        assert_eq!(edge_names(&ix, &g), [("caller".into(), "helper".into())]);
    }

    #[test]
    fn qualified_call_resolves_through_impl_owner() {
        let (ix, g) = graph_of(&[
            (
                "crates/gpu-sim/src/sensor.rs",
                "pub struct Gpu;\nimpl Gpu {\n    pub fn new(seed: u64) -> Self { Gpu }\n}\n",
            ),
            (
                "crates/core/src/profiler.rs",
                "struct Probe;\nimpl Probe {\n    fn new() -> Self { Probe }\n}\n\
                 fn boot() { let g = Gpu::new(7); }\n",
            ),
        ]);
        // Two fns named `new`, but the qualifier picks the Gpu one.
        assert_eq!(edge_names(&ix, &g), [("boot".into(), "new".into())]);
        let e = g.edges[0];
        assert_eq!(ix.functions[e.callee].owner.as_deref(), Some("Gpu"));
    }

    #[test]
    fn ambiguous_plain_name_produces_no_edge() {
        let (_, g) = graph_of(&[
            (
                "crates/core/src/a.rs",
                "fn reset() {}\nfn go() { reset(); }\n",
            ),
            ("crates/gp/src/b.rs", "fn reset() {}\n"),
        ]);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn unique_method_call_resolves() {
        let (ix, g) = graph_of(&[(
            "crates/core/src/a.rs",
            "impl Probe {\n    fn measure_once(&mut self) {}\n}\n\
                 fn run(p: &mut Probe) { p.measure_once(); }\n",
        )]);
        assert_eq!(edge_names(&ix, &g), [("run".into(), "measure_once".into())]);
    }

    #[test]
    fn self_recursion_is_not_an_edge() {
        let (_, g) = graph_of(&[(
            "crates/core/src/a.rs",
            "fn fact(n: u64) -> u64 { if n == 0 { 1 } else { fact(n - 1) } }\n",
        )]);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn taint_propagates_transitively_to_callers() {
        let (ix, g) = graph_of(&[(
            "crates/core/src/a.rs",
            "fn leaf() {}\nfn mid() { leaf(); }\nfn top() { mid(); }\nfn other() {}\n",
        )]);
        let leaf = ix.functions.iter().position(|f| f.name == "leaf").unwrap();
        let mut seeds = vec![false; ix.functions.len()];
        seeds[leaf] = true;
        let tainted = g.taint_callers(ix.functions.len(), &seeds);
        let by_name = |n: &str| ix.functions.iter().position(|f| f.name == n).unwrap();
        assert!(tainted[by_name("mid")]);
        assert!(tainted[by_name("top")]);
        assert!(!tainted[by_name("other")]);
    }
}
