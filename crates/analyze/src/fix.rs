//! `--fix`: mechanical, token-aware source rewrites.
//!
//! Three fix families are supported, all safe enough to apply blindly:
//!
//! * **R6 unit suffixes** — a *non-`pub`* `name: f64` declaration whose
//!   name is a physical quantity without a unit suffix is renamed to the
//!   canonical suffix (`power` → `power_w`, `total_time` → `total_time_s`),
//!   along with every other token spelling that identifier in the same
//!   file. Public items are never renamed (their name is API surface
//!   beyond this file), and a rename is skipped entirely when the target
//!   name already occurs in the file.
//! * **R9 ordered collections** — in trace-affecting crates, `HashMap` →
//!   `BTreeMap` and `HashSet` → `BTreeSet`, every token in the file
//!   (imports, types, constructors — test code included, so the file
//!   still compiles as one unit). The rewrite is refused when it could
//!   change semantics: any hash-only API call (`with_hasher`,
//!   `raw_entry`, …) anywhere in the file, the BTree name already in
//!   use, or an `allow(R9)` marker claiming the hash type is
//!   intentional.
//! * **allow-marker normalization** — `// analyze::allow(r4,R1, r1)`
//!   becomes `// analyze::allow(R1, R4)` (uppercase, deduplicated,
//!   sorted, canonical spacing), keeping the escape hatch greppable.
//!
//! Renames operate on token positions from the stripped text; the strip
//! pass blanks characters one-for-one, so token columns map directly onto
//! the raw line and string/comment contents are never touched.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::rules::{collections, units};
use crate::scan::{rust_files, SourceFile};
use crate::token::TokenKind;
use crate::{Error, Result, Rule, LIBRARY_CRATES};

/// What a fix run changed.
#[derive(Debug, Clone, Default)]
pub struct FixReport {
    /// Files rewritten on disk.
    pub files_changed: usize,
    /// Distinct identifiers renamed (across all files).
    pub renames: usize,
    /// Allow markers rewritten into canonical form.
    pub markers_normalized: usize,
}

/// Applies all fixes to the library crates under `root`, writing changed
/// files back to disk.
pub fn apply_fixes(root: &Path) -> Result<FixReport> {
    let mut report = FixReport::default();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src)? {
            let text = std::fs::read_to_string(&path).map_err(|source| Error::Io {
                path: path.clone(),
                source,
            })?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let outcome = fix_source(rel, &text);
            if let Some(fixed) = outcome.text {
                std::fs::write(&path, fixed).map_err(|source| Error::Io {
                    path: path.clone(),
                    source,
                })?;
                report.files_changed += 1;
            }
            report.renames += outcome.renames;
            report.markers_normalized += outcome.markers_normalized;
        }
    }
    Ok(report)
}

/// The outcome of fixing one file.
#[derive(Debug, Default)]
pub struct FileFix {
    /// The rewritten source, or `None` when nothing changed.
    pub text: Option<String>,
    /// Distinct identifiers renamed in this file.
    pub renames: usize,
    /// Allow markers normalized in this file.
    pub markers_normalized: usize,
}

/// Computes the fixed form of one file's source (pure; exposed for
/// tests).
pub fn fix_source(rel_path: PathBuf, text: &str) -> FileFix {
    let file = SourceFile::from_source(rel_path, text);
    let toks = &file.tokens;

    // Pass 1: collect R6 suffix renames at declaration sites.
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let declares_f64 = t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|c| c.is_punct(":"))
            && toks.get(i + 2).is_some_and(|ty| ty.is_ident("f64"));
        if !declares_f64
            || !units::missing_suffix(&t.text)
            || file.token_exempt(t, Rule::R6UnitDiscipline.id())
            || is_public_decl(toks, i)
        {
            continue;
        }
        let Some(suffix) = units::suggested_suffix(&t.text) else {
            continue;
        };
        let new_name = format!("{}{}", t.text, suffix);
        if toks
            .iter()
            .any(|o| o.kind == TokenKind::Ident && o.text == new_name)
        {
            continue; // target name taken: renaming would shadow/collide
        }
        renames.insert(t.text.clone(), new_name);
    }

    // Pass 1b: R9 collection renames — whole-file, but only when at least
    // one live (non-test, non-allowed) token would be a finding, and only
    // when the rewrite is provably behavior-preserving for this file.
    if collections::in_scope(&file.rel_path.to_string_lossy().replace('\\', "/")) {
        // A hash-only API name blocks the rewrite only when it is plausibly
        // invoked on the hash type: as a method call (receiver type is
        // unknowable here, stay safe) or qualified by the hash type itself.
        // `Vec::with_capacity` / `String::with_capacity` must not block.
        let hash_api_used = toks.iter().enumerate().any(|(i, t)| {
            t.kind == TokenKind::Ident
                && collections::HASH_ONLY_APIS.contains(&t.text.as_str())
                && ((i > 0 && toks[i - 1].is_punct("."))
                    || (i >= 2
                        && toks[i - 1].is_punct("::")
                        && ["HashMap", "HashSet"]
                            .iter()
                            .any(|h| toks[i - 2].is_ident(h))))
        });
        let r9_allowed_anywhere = file
            .lines
            .iter()
            .any(|l| l.allowed.contains(Rule::R9UnorderedCollections.id()));
        if !hash_api_used && !r9_allowed_anywhere {
            for (hash, btree) in [("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")] {
                let fires = toks.iter().any(|t| {
                    t.is_ident(hash) && !file.token_exempt(t, Rule::R9UnorderedCollections.id())
                });
                let target_taken = toks
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == btree);
                if fires && !target_taken {
                    renames.insert(hash.to_string(), btree.to_string());
                }
            }
        }
    }

    // Pass 2: apply renames at every token spelling a renamed identifier.
    // Token columns are char offsets into the stripped line, which maps
    // one-for-one onto the raw line.
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let mut edits: BTreeMap<usize, Vec<(usize, usize, String)>> = BTreeMap::new();
    for t in toks {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some(new_name) = renames.get(&t.text) {
            edits.entry(t.line - 1).or_default().push((
                t.col,
                t.text.chars().count(),
                new_name.clone(),
            ));
        }
    }
    for (line_idx, mut line_edits) in edits {
        let Some(line) = lines.get_mut(line_idx) else {
            continue;
        };
        line_edits.sort_by_key(|e| std::cmp::Reverse(e.0)); // right-to-left
        let mut chars: Vec<char> = line.chars().collect();
        for (col, len, new_name) in line_edits {
            if col + len <= chars.len() {
                chars.splice(col..col + len, new_name.chars());
            }
        }
        *line = chars.into_iter().collect();
    }

    // Pass 3: normalize allow markers.
    let mut markers_normalized = 0;
    for line in &mut lines {
        if let Some(fixed) = normalize_allow_marker(line) {
            if fixed != *line {
                *line = fixed;
                markers_normalized += 1;
            }
        }
    }

    let mut rebuilt = lines.join("\n");
    if text.ends_with('\n') {
        rebuilt.push('\n');
    }
    FileFix {
        text: (rebuilt != text).then_some(rebuilt),
        renames: renames.len(),
        markers_normalized,
    }
}

/// Whether the declaration whose name token is at `idx` is `pub` (walks
/// back a few tokens, stopping at declaration boundaries).
fn is_public_decl(toks: &[crate::token::Token], idx: usize) -> bool {
    for back in (0..idx).rev().take(5) {
        let t = &toks[back];
        if t.is_ident("pub") {
            return true;
        }
        if t.is_punct(",") || t.is_punct("{") || t.is_punct(";") || t.is_punct("(") {
            return false;
        }
    }
    false
}

/// Rewrites an `analyze::allow(...)` marker on `line` into canonical form
/// (uppercase, deduplicated, sorted, `", "`-separated). Returns the fixed
/// line, or `None` when the line has no well-formed marker.
fn normalize_allow_marker(line: &str) -> Option<String> {
    let start = line.find("analyze::allow(")?;
    let ids_start = start + "analyze::allow(".len();
    let close = line[ids_start..].find(')')? + ids_start;
    let mut ids: Vec<String> = line[ids_start..close]
        .split(',')
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| !s.is_empty())
        .collect();
    ids.sort();
    ids.dedup();
    if ids.is_empty() {
        return None;
    }
    Some(format!(
        "{}{}{}",
        &line[..ids_start],
        ids.join(", "),
        &line[close..]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(text: &str) -> FileFix {
        fix_source(PathBuf::from("crates/x/src/lib.rs"), text)
    }

    #[test]
    fn renames_local_quantity_declaration_and_uses() {
        let src =
            "fn f(power: f64) -> f64 {\n    let doubled = power * 2.0;\n    doubled + power\n}\n";
        let out = fix(src);
        assert_eq!(out.renames, 1);
        let fixed = out.text.unwrap();
        assert!(fixed.contains("fn f(power_w: f64)"));
        assert!(fixed.contains("power_w * 2.0"));
        assert!(fixed.contains("doubled + power_w"));
        assert!(!fixed.contains("power *"));
    }

    #[test]
    fn public_fields_are_never_renamed() {
        let src = "pub struct R {\n    pub power: f64,\n}\n";
        let out = fix(src);
        assert_eq!(out.renames, 0);
        assert!(out.text.is_none());
    }

    #[test]
    fn rename_skipped_when_target_exists() {
        let src = "fn f(latency: f64, latency_s: f64) -> f64 { latency + latency_s }\n";
        let out = fix(src);
        assert_eq!(out.renames, 0, "colliding rename must be skipped");
    }

    #[test]
    fn strings_and_comments_survive_renames() {
        let src = "fn f(energy: f64) -> f64 {\n    // energy is important\n    let s = \"energy\";\n    energy\n}\n";
        let fixed = fix(src).text.unwrap();
        assert!(fixed.contains("fn f(energy_j: f64)"));
        assert!(fixed.contains("// energy is important"));
        assert!(fixed.contains("\"energy\""));
        assert!(fixed.contains("\n    energy_j\n"));
    }

    #[test]
    fn suffixed_and_nonquantity_names_untouched() {
        assert!(
            fix("fn f(power_w: f64, count: f64) -> f64 { power_w + count }\n")
                .text
                .is_none()
        );
    }

    #[test]
    fn allow_markers_are_normalized() {
        let src = "let x = 1; // analyze::allow(r4,R1,  r1)\n";
        let out = fix(src);
        assert_eq!(out.markers_normalized, 1);
        assert!(out.text.unwrap().contains("// analyze::allow(R1, R4)"));
    }

    #[test]
    fn canonical_markers_are_stable() {
        let src = "let x = 1; // analyze::allow(R1, R4)\n";
        let out = fix(src);
        assert_eq!(out.markers_normalized, 0);
        assert!(out.text.is_none());
    }

    #[test]
    fn fix_is_idempotent() {
        let src = "fn f(power: f64) -> f64 { power }\n// analyze::allow(r2)\n";
        let once = fix(src).text.unwrap();
        assert!(fix_source(PathBuf::from("crates/x/src/lib.rs"), &once)
            .text
            .is_none());
    }

    #[test]
    fn test_code_is_not_rewritten() {
        let src = "#[cfg(test)]\nmod t {\n    fn f(power: f64) -> f64 { power }\n}\n";
        assert!(fix(src).text.is_none());
    }

    fn fix_core(text: &str) -> FileFix {
        fix_source(PathBuf::from("crates/core/src/state.rs"), text)
    }

    #[test]
    fn r9_rewrites_hash_to_btree_whole_file() {
        let src = "use std::collections::HashMap;\n\
             pub fn index() -> HashMap<u64, f64> {\n    HashMap::new()\n}\n\
             #[cfg(test)]\nmod t {\n    use super::*;\n    #[test]\n    fn ok() { let _m: HashMap<u64, f64> = index(); }\n}\n";
        let out = fix_core(src);
        let fixed = out.text.unwrap();
        assert!(!fixed.contains("HashMap"), "all tokens rewritten: {fixed}");
        assert!(fixed.contains("use std::collections::BTreeMap;"));
        assert!(fixed.contains("-> BTreeMap<u64, f64>"));
        // Test code is rewritten too — the file must keep compiling.
        assert!(fixed.contains("let _m: BTreeMap<u64, f64>"));
    }

    #[test]
    fn r9_skips_files_outside_trace_crates() {
        let src =
            "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> { HashMap::new() }\n";
        assert!(fix_source(PathBuf::from("crates/data/src/lib.rs"), src)
            .text
            .is_none());
    }

    #[test]
    fn r9_refuses_when_hash_only_api_used() {
        let src = "use std::collections::HashMap;\n\
             pub fn f() -> HashMap<u64, u64> {\n    HashMap::with_capacity(8)\n}\n";
        assert!(fix_core(src).text.is_none());

        let src = "use std::collections::HashMap;\n\
             pub fn f(m: &mut HashMap<u64, u64>) -> usize {\n    m.capacity()\n}\n";
        assert!(fix_core(src).text.is_none());
    }

    #[test]
    fn r9_vec_with_capacity_does_not_block() {
        let src = "use std::collections::HashMap;\n\
             pub fn f() -> HashMap<u64, u64> {\n    let _v = Vec::<u8>::with_capacity(8);\n    HashMap::new()\n}\n";
        let fixed = fix_core(src).text.unwrap();
        assert!(fixed.contains("BTreeMap::new()"));
        assert!(fixed.contains("Vec::<u8>::with_capacity"));
    }

    #[test]
    fn r9_refuses_when_btree_name_already_present() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
             pub fn f(a: &BTreeMap<u64, u64>, b: &HashMap<u64, u64>) -> usize { a.len() + b.len() }\n";
        assert!(fix_core(src).text.is_none());
    }

    #[test]
    fn r9_respects_allow_marker() {
        let src = "use std::collections::HashMap; // analyze::allow(R9)\n\
             pub fn f() -> HashMap<u64, u64> { HashMap::new() }\n";
        assert!(fix_core(src).text.is_none());
    }

    #[test]
    fn r9_test_only_usage_is_not_a_trigger() {
        let src = "pub fn f() {}\n\
             #[cfg(test)]\nmod t {\n    use std::collections::HashMap;\n    #[test]\n    fn ok() { let _m: HashMap<u64, u64> = HashMap::new(); }\n}\n";
        assert!(fix_core(src).text.is_none());
    }
}
