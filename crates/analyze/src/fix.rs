//! `--fix`: mechanical, token-aware source rewrites.
//!
//! Four fix families are supported, all safe enough to apply blindly:
//!
//! * **R6 unit suffixes** — a *non-`pub`* `name: f64` declaration whose
//!   name is a physical quantity without a unit suffix is renamed to the
//!   canonical suffix (`power` → `power_w`, `total_time` → `total_time_s`),
//!   along with every other token spelling that identifier in the same
//!   file. Public items are never renamed (their name is API surface
//!   beyond this file), and a rename is skipped entirely when the target
//!   name already occurs in the file.
//! * **R9 ordered collections** — in trace-affecting crates, `HashMap` →
//!   `BTreeMap` and `HashSet` → `BTreeSet`, every token in the file
//!   (imports, types, constructors — test code included, so the file
//!   still compiles as one unit). The rewrite is refused when it could
//!   change semantics: any hash-only API call (`with_hasher`,
//!   `raw_entry`, …) anywhere in the file, the BTree name already in
//!   use, or an `allow(R9)` marker claiming the hash type is
//!   intentional.
//! * **allow-marker normalization** — `// analyze::allow(r4,R1, r1)`
//!   becomes `// analyze::allow(R1, R4)` (uppercase, deduplicated,
//!   sorted, canonical spacing), keeping the escape hatch greppable.
//! * **R16 stale-allow removal** — grants the analysis proved unused
//!   (and ids naming unknown rules) are deleted from their markers;
//!   a marker left with no ids is removed outright, and a line left
//!   holding only an empty comment is dropped. Staleness is a
//!   *workspace-level* fact (a marker is live exactly when some rule
//!   consumed it during a full analysis), so `apply_fixes` runs the
//!   analyzer once over every file before rewriting any of them.
//!
//! Renames operate on token positions from the stripped text; the strip
//! pass blanks characters one-for-one, so token columns map directly onto
//! the raw line and string/comment contents are never touched.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::rules::{collections, stale_allow, units};
use crate::scan::{rust_files, SourceFile};
use crate::token::TokenKind;
use crate::{Error, Result, Rule, LIBRARY_CRATES};

/// What a fix run changed.
#[derive(Debug, Clone, Default)]
pub struct FixReport {
    /// Files rewritten on disk.
    pub files_changed: usize,
    /// Distinct identifiers renamed (across all files).
    pub renames: usize,
    /// Allow markers rewritten into canonical form.
    pub markers_normalized: usize,
    /// Stale allow ids removed (R16).
    pub allows_removed: usize,
}

/// Applies all fixes to the library crates under `root`, writing changed
/// files back to disk.
pub fn apply_fixes(root: &Path) -> Result<FixReport> {
    let mut report = FixReport::default();
    // Load every file up front and run one full analysis: allow-marker
    // usage — and therefore staleness (R16) — is a workspace-level fact.
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut texts: Vec<String> = Vec::new();
    let mut files: Vec<SourceFile> = Vec::new();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src)? {
            let text = std::fs::read_to_string(&path).map_err(|source| Error::Io {
                path: path.clone(),
                source,
            })?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile::from_source(rel, &text));
            texts.push(text);
            paths.push(path);
        }
    }
    let _ = crate::analyze_files(&files, None);

    for ((path, text), file) in paths.iter().zip(&texts).zip(&files) {
        let mut stale: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (line, id, _known) in stale_allow::stale_ids(file) {
            stale.entry(line).or_default().push(id);
        }
        let outcome = fix_source_with(file.rel_path.clone(), text, &stale);
        if let Some(fixed) = outcome.text {
            std::fs::write(path, fixed).map_err(|source| Error::Io {
                path: path.clone(),
                source,
            })?;
            report.files_changed += 1;
        }
        report.renames += outcome.renames;
        report.markers_normalized += outcome.markers_normalized;
        report.allows_removed += outcome.allows_removed;
    }
    Ok(report)
}

/// The outcome of fixing one file.
#[derive(Debug, Default)]
pub struct FileFix {
    /// The rewritten source, or `None` when nothing changed.
    pub text: Option<String>,
    /// Distinct identifiers renamed in this file.
    pub renames: usize,
    /// Allow markers normalized in this file.
    pub markers_normalized: usize,
    /// Stale allow ids removed from this file (R16).
    pub allows_removed: usize,
}

/// Computes the fixed form of one file's source with no staleness facts
/// (pure; exposed for tests). [`apply_fixes`] uses [`fix_source_with`] so
/// R16 removals — which need a full-workspace analysis — apply too.
pub fn fix_source(rel_path: PathBuf, text: &str) -> FileFix {
    fix_source_with(rel_path, text, &BTreeMap::new())
}

/// Computes the fixed form of one file's source, additionally removing
/// the stale allow ids in `stale` (1-based marker line -> ids), as
/// reported by [`stale_allow::stale_ids`] on an analyzed workspace.
pub fn fix_source_with(
    rel_path: PathBuf,
    text: &str,
    stale: &BTreeMap<usize, Vec<String>>,
) -> FileFix {
    let (cleaned, allows_removed) = remove_stale_allow_ids(text, stale);
    // The rename/normalize pipeline runs on the cleaned text so line
    // numbers, marker scans and the R9 allow check all see the source
    // that will actually be written.
    let mut out = fix_pipeline(rel_path, &cleaned);
    out.allows_removed = allows_removed;
    if out.text.is_none() && cleaned != text {
        out.text = Some(cleaned);
    }
    out
}

/// Deletes the stale ids from their marker lines. A marker with no ids
/// left is removed; a line reduced to an empty comment (or to nothing) is
/// dropped. Returns the cleaned text and the number of ids removed.
fn remove_stale_allow_ids(text: &str, stale: &BTreeMap<usize, Vec<String>>) -> (String, usize) {
    if stale.is_empty() {
        return (text.to_string(), 0);
    }
    let mut removed = 0;
    let mut out: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let Some(ids) = stale.get(&(idx + 1)) else {
            out.push(raw.to_string());
            continue;
        };
        let Some(start) = raw.find("analyze::allow(") else {
            out.push(raw.to_string());
            continue;
        };
        let ids_start = start + "analyze::allow(".len();
        let Some(close) = raw[ids_start..].find(')').map(|c| c + ids_start) else {
            out.push(raw.to_string());
            continue;
        };
        let all: Vec<&str> = raw[ids_start..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let kept: Vec<&str> = all
            .iter()
            .copied()
            .filter(|s| !ids.iter().any(|r| r.eq_ignore_ascii_case(s)))
            .collect();
        removed += all.len() - kept.len();
        if !kept.is_empty() {
            out.push(format!(
                "{}{}{}",
                &raw[..ids_start],
                kept.join(", "),
                &raw[close..]
            ));
            continue;
        }
        // The whole marker goes; tidy what is left of the line.
        let line = format!("{}{}", &raw[..start], &raw[close + 1..]);
        let trimmed = line.trim_end();
        let without_comment = trimmed
            .strip_suffix("//")
            .map(str::trim_end)
            .unwrap_or(trimmed);
        if without_comment.trim().is_empty() {
            continue; // drop the now-empty line
        }
        out.push(without_comment.to_string());
    }
    let mut rebuilt = out.join("\n");
    if text.ends_with('\n') {
        rebuilt.push('\n');
    }
    (rebuilt, removed)
}

/// The rename + marker-normalization passes (everything except R16
/// removal) over one file's source.
fn fix_pipeline(rel_path: PathBuf, text: &str) -> FileFix {
    let file = SourceFile::from_source(rel_path, text);
    let toks = &file.tokens;

    // Pass 1: collect R6 suffix renames at declaration sites.
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let declares_f64 = t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|c| c.is_punct(":"))
            && toks.get(i + 2).is_some_and(|ty| ty.is_ident("f64"));
        if !declares_f64
            || !units::missing_suffix(&t.text)
            || file.token_exempt(t, Rule::R6UnitDiscipline.id())
            || is_public_decl(toks, i)
        {
            continue;
        }
        let Some(suffix) = units::suggested_suffix(&t.text) else {
            continue;
        };
        let new_name = format!("{}{}", t.text, suffix);
        if toks
            .iter()
            .any(|o| o.kind == TokenKind::Ident && o.text == new_name)
        {
            continue; // target name taken: renaming would shadow/collide
        }
        renames.insert(t.text.clone(), new_name);
    }

    // Pass 1b: R9 collection renames — whole-file, but only when at least
    // one live (non-test, non-allowed) token would be a finding, and only
    // when the rewrite is provably behavior-preserving for this file.
    if collections::in_scope(&file.rel_path.to_string_lossy().replace('\\', "/")) {
        // A hash-only API name blocks the rewrite only when it is plausibly
        // invoked on the hash type: as a method call (receiver type is
        // unknowable here, stay safe) or qualified by the hash type itself.
        // `Vec::with_capacity` / `String::with_capacity` must not block.
        let hash_api_used = toks.iter().enumerate().any(|(i, t)| {
            t.kind == TokenKind::Ident
                && collections::HASH_ONLY_APIS.contains(&t.text.as_str())
                && ((i > 0 && toks[i - 1].is_punct("."))
                    || (i >= 2
                        && toks[i - 1].is_punct("::")
                        && ["HashMap", "HashSet"]
                            .iter()
                            .any(|h| toks[i - 2].is_ident(h))))
        });
        let r9_allowed_anywhere = file
            .lines
            .iter()
            .any(|l| l.allowed.contains(Rule::R9UnorderedCollections.id()));
        if !hash_api_used && !r9_allowed_anywhere {
            for (hash, btree) in [("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")] {
                let fires = toks.iter().any(|t| {
                    t.is_ident(hash) && !file.token_exempt(t, Rule::R9UnorderedCollections.id())
                });
                let target_taken = toks
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == btree);
                if fires && !target_taken {
                    renames.insert(hash.to_string(), btree.to_string());
                }
            }
        }
    }

    // Pass 2: apply renames at every token spelling a renamed identifier.
    // Token columns are char offsets into the stripped line, which maps
    // one-for-one onto the raw line.
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let mut edits: BTreeMap<usize, Vec<(usize, usize, String)>> = BTreeMap::new();
    for t in toks {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some(new_name) = renames.get(&t.text) {
            edits.entry(t.line - 1).or_default().push((
                t.col,
                t.text.chars().count(),
                new_name.clone(),
            ));
        }
    }
    for (line_idx, mut line_edits) in edits {
        let Some(line) = lines.get_mut(line_idx) else {
            continue;
        };
        line_edits.sort_by_key(|e| std::cmp::Reverse(e.0)); // right-to-left
        let mut chars: Vec<char> = line.chars().collect();
        for (col, len, new_name) in line_edits {
            if col + len <= chars.len() {
                chars.splice(col..col + len, new_name.chars());
            }
        }
        *line = chars.into_iter().collect();
    }

    // Pass 3: normalize allow markers.
    let mut markers_normalized = 0;
    for line in &mut lines {
        if let Some(fixed) = normalize_allow_marker(line) {
            if fixed != *line {
                *line = fixed;
                markers_normalized += 1;
            }
        }
    }

    let mut rebuilt = lines.join("\n");
    if text.ends_with('\n') {
        rebuilt.push('\n');
    }
    FileFix {
        text: (rebuilt != text).then_some(rebuilt),
        renames: renames.len(),
        markers_normalized,
        allows_removed: 0,
    }
}

/// Whether the declaration whose name token is at `idx` is `pub` (walks
/// back a few tokens, stopping at declaration boundaries).
fn is_public_decl(toks: &[crate::token::Token], idx: usize) -> bool {
    for back in (0..idx).rev().take(5) {
        let t = &toks[back];
        if t.is_ident("pub") {
            return true;
        }
        if t.is_punct(",") || t.is_punct("{") || t.is_punct(";") || t.is_punct("(") {
            return false;
        }
    }
    false
}

/// Rewrites an `analyze::allow(...)` marker on `line` into canonical form
/// (uppercase, deduplicated, sorted, `", "`-separated). Returns the fixed
/// line, or `None` when the line has no well-formed marker.
fn normalize_allow_marker(line: &str) -> Option<String> {
    let start = line.find("analyze::allow(")?;
    let ids_start = start + "analyze::allow(".len();
    let close = line[ids_start..].find(')')? + ids_start;
    let mut ids: Vec<String> = line[ids_start..close]
        .split(',')
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| !s.is_empty())
        .collect();
    ids.sort();
    ids.dedup();
    if ids.is_empty() {
        return None;
    }
    Some(format!(
        "{}{}{}",
        &line[..ids_start],
        ids.join(", "),
        &line[close..]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(text: &str) -> FileFix {
        fix_source(PathBuf::from("crates/x/src/lib.rs"), text)
    }

    #[test]
    fn renames_local_quantity_declaration_and_uses() {
        let src =
            "fn f(power: f64) -> f64 {\n    let doubled = power * 2.0;\n    doubled + power\n}\n";
        let out = fix(src);
        assert_eq!(out.renames, 1);
        let fixed = out.text.unwrap();
        assert!(fixed.contains("fn f(power_w: f64)"));
        assert!(fixed.contains("power_w * 2.0"));
        assert!(fixed.contains("doubled + power_w"));
        assert!(!fixed.contains("power *"));
    }

    #[test]
    fn public_fields_are_never_renamed() {
        let src = "pub struct R {\n    pub power: f64,\n}\n";
        let out = fix(src);
        assert_eq!(out.renames, 0);
        assert!(out.text.is_none());
    }

    #[test]
    fn rename_skipped_when_target_exists() {
        let src = "fn f(latency: f64, latency_s: f64) -> f64 { latency + latency_s }\n";
        let out = fix(src);
        assert_eq!(out.renames, 0, "colliding rename must be skipped");
    }

    #[test]
    fn strings_and_comments_survive_renames() {
        let src = "fn f(energy: f64) -> f64 {\n    // energy is important\n    let s = \"energy\";\n    energy\n}\n";
        let fixed = fix(src).text.unwrap();
        assert!(fixed.contains("fn f(energy_j: f64)"));
        assert!(fixed.contains("// energy is important"));
        assert!(fixed.contains("\"energy\""));
        assert!(fixed.contains("\n    energy_j\n"));
    }

    #[test]
    fn suffixed_and_nonquantity_names_untouched() {
        assert!(
            fix("fn f(power_w: f64, count: f64) -> f64 { power_w + count }\n")
                .text
                .is_none()
        );
    }

    #[test]
    fn allow_markers_are_normalized() {
        let src = "let x = 1; // analyze::allow(r4,R1,  r1)\n";
        let out = fix(src);
        assert_eq!(out.markers_normalized, 1);
        assert!(out.text.unwrap().contains("// analyze::allow(R1, R4)"));
    }

    #[test]
    fn canonical_markers_are_stable() {
        let src = "let x = 1; // analyze::allow(R1, R4)\n";
        let out = fix(src);
        assert_eq!(out.markers_normalized, 0);
        assert!(out.text.is_none());
    }

    #[test]
    fn fix_is_idempotent() {
        let src = "fn f(power: f64) -> f64 { power }\n// analyze::allow(r2)\n";
        let once = fix(src).text.unwrap();
        assert!(fix_source(PathBuf::from("crates/x/src/lib.rs"), &once)
            .text
            .is_none());
    }

    #[test]
    fn test_code_is_not_rewritten() {
        let src = "#[cfg(test)]\nmod t {\n    fn f(power: f64) -> f64 { power }\n}\n";
        assert!(fix(src).text.is_none());
    }

    fn fix_core(text: &str) -> FileFix {
        fix_source(PathBuf::from("crates/core/src/state.rs"), text)
    }

    #[test]
    fn r9_rewrites_hash_to_btree_whole_file() {
        let src = "use std::collections::HashMap;\n\
             pub fn index() -> HashMap<u64, f64> {\n    HashMap::new()\n}\n\
             #[cfg(test)]\nmod t {\n    use super::*;\n    #[test]\n    fn ok() { let _m: HashMap<u64, f64> = index(); }\n}\n";
        let out = fix_core(src);
        let fixed = out.text.unwrap();
        assert!(!fixed.contains("HashMap"), "all tokens rewritten: {fixed}");
        assert!(fixed.contains("use std::collections::BTreeMap;"));
        assert!(fixed.contains("-> BTreeMap<u64, f64>"));
        // Test code is rewritten too — the file must keep compiling.
        assert!(fixed.contains("let _m: BTreeMap<u64, f64>"));
    }

    #[test]
    fn r9_skips_files_outside_trace_crates() {
        let src =
            "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> { HashMap::new() }\n";
        assert!(fix_source(PathBuf::from("crates/data/src/lib.rs"), src)
            .text
            .is_none());
    }

    #[test]
    fn r9_refuses_when_hash_only_api_used() {
        let src = "use std::collections::HashMap;\n\
             pub fn f() -> HashMap<u64, u64> {\n    HashMap::with_capacity(8)\n}\n";
        assert!(fix_core(src).text.is_none());

        let src = "use std::collections::HashMap;\n\
             pub fn f(m: &mut HashMap<u64, u64>) -> usize {\n    m.capacity()\n}\n";
        assert!(fix_core(src).text.is_none());
    }

    #[test]
    fn r9_vec_with_capacity_does_not_block() {
        let src = "use std::collections::HashMap;\n\
             pub fn f() -> HashMap<u64, u64> {\n    let _v = Vec::<u8>::with_capacity(8);\n    HashMap::new()\n}\n";
        let fixed = fix_core(src).text.unwrap();
        assert!(fixed.contains("BTreeMap::new()"));
        assert!(fixed.contains("Vec::<u8>::with_capacity"));
    }

    #[test]
    fn r9_refuses_when_btree_name_already_present() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
             pub fn f(a: &BTreeMap<u64, u64>, b: &HashMap<u64, u64>) -> usize { a.len() + b.len() }\n";
        assert!(fix_core(src).text.is_none());
    }

    #[test]
    fn r9_respects_allow_marker() {
        let src = "use std::collections::HashMap; // analyze::allow(R9)\n\
             pub fn f() -> HashMap<u64, u64> { HashMap::new() }\n";
        assert!(fix_core(src).text.is_none());
    }

    #[test]
    fn r9_test_only_usage_is_not_a_trigger() {
        let src = "pub fn f() {}\n\
             #[cfg(test)]\nmod t {\n    use std::collections::HashMap;\n    #[test]\n    fn ok() { let _m: HashMap<u64, u64> = HashMap::new(); }\n}\n";
        assert!(fix_core(src).text.is_none());
    }

    fn fix_stale(text: &str, stale: &[(usize, &str)]) -> FileFix {
        let mut map: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (line, id) in stale {
            map.entry(*line).or_default().push((*id).to_string());
        }
        fix_source_with(PathBuf::from("crates/x/src/lib.rs"), text, &map)
    }

    #[test]
    fn stale_removal_drops_one_id_and_keeps_the_rest() {
        let src = "// analyze::allow(R1, R4)\nfn f() {}\n";
        let out = fix_stale(src, &[(1, "R4")]);
        assert_eq!(out.allows_removed, 1);
        assert_eq!(out.text.unwrap(), "// analyze::allow(R1)\nfn f() {}\n");
    }

    #[test]
    fn stale_removal_drops_an_emptied_marker_line() {
        let src = "fn f() {}\n// analyze::allow(R4)\nfn g() {}\n";
        let out = fix_stale(src, &[(2, "R4")]);
        assert_eq!(out.allows_removed, 1);
        assert_eq!(out.text.unwrap(), "fn f() {}\nfn g() {}\n");
    }

    #[test]
    fn stale_removal_strips_a_trailing_marker_comment() {
        let src = "fn f(v: &[u8]) -> u8 {\n    v[0] // analyze::allow(R4)\n}\n";
        let out = fix_stale(src, &[(2, "R4")]);
        assert_eq!(out.allows_removed, 1);
        assert_eq!(out.text.unwrap(), "fn f(v: &[u8]) -> u8 {\n    v[0]\n}\n");
    }

    #[test]
    fn stale_removal_keeps_surrounding_prose() {
        let src = "// kept for the fuzz run: analyze::allow(R2, R4)\nfn f() {}\n";
        let out = fix_stale(src, &[(1, "R4")]);
        assert_eq!(
            out.text.unwrap(),
            "// kept for the fuzz run: analyze::allow(R2)\nfn f() {}\n"
        );
    }

    #[test]
    fn stale_removal_composes_with_marker_normalization() {
        // The surviving ids are re-canonicalized by the normal pipeline.
        let src = "// analyze::allow(r4,  r1, R2)\nfn f() {}\n";
        let out = fix_stale(src, &[(1, "R4")]);
        assert_eq!(out.allows_removed, 1);
        assert_eq!(out.text.unwrap(), "// analyze::allow(R1, R2)\nfn f() {}\n");
    }

    #[test]
    fn stale_removal_is_idempotent() {
        let src = "fn f() {}\n// analyze::allow(R4)\nfn g() {}\n";
        let once = fix_stale(src, &[(2, "R4")]).text.unwrap();
        // A second pass with no staleness facts changes nothing.
        let again = fix_source(PathBuf::from("crates/x/src/lib.rs"), &once);
        assert!(again.text.is_none());
        assert_eq!(again.allows_removed, 0);
    }

    #[test]
    fn no_stale_facts_is_a_no_op() {
        let src = "// analyze::allow(R4)\nfn f() {}\n";
        let out = fix_stale(src, &[]);
        assert_eq!(out.allows_removed, 0);
        assert!(out.text.is_none());
    }
}
