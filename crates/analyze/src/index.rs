//! Workspace item index: the symbol layer under the cross-file rules.
//!
//! Built from the token streams of every scanned [`SourceFile`], the index
//! records the items the workspace-level rules (R10–R13) reason about:
//! function definitions (name, `impl` owner, parameters, body token range,
//! call sites), struct definitions with their fields, and `use`
//! declarations. It is deliberately approximate — no name resolution
//! beyond `impl` ownership and workspace-unique names — because the
//! analyzer must stay dependency-free (no syn/rustc). The call graph in
//! [`crate::graph`] only materialises edges the index can resolve
//! *confidently*, so approximation errs toward missing edges, never
//! toward false ones.

use crate::scan::SourceFile;
use crate::token::{matching_close, Token, TokenKind};

/// Keywords that look like call syntax (`if (…)`, `match (…)`) but never
/// name a workspace function.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "mut", "pub", "use", "mod", "impl", "trait", "struct", "enum", "where", "move", "ref", "as",
    "in", "dyn", "unsafe", "const", "static", "type",
];

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (empty for `self` receivers and `_` patterns).
    pub name: String,
    /// The type tokens, joined with single spaces (`"& mut StdRng"`).
    pub ty: String,
}

impl Param {
    /// True when the parameter is a `&mut` borrow of the named type.
    pub fn is_mut_ref_of(&self, ty: &str) -> bool {
        self.ty.starts_with("& mut ") && self.ty[6..].split(' ').next() == Some(ty)
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment, or the method name).
    pub name: String,
    /// `Type` for `Type::name(…)` path calls, `None` otherwise.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The `impl` type the function is defined on, if any (for
    /// `impl Trait for T`, the `T`).
    pub owner: Option<String>,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the definition is `pub`.
    pub is_pub: bool,
    /// Whether the definition sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The parameters, in order.
    pub params: Vec<Param>,
    /// The declared return type tokens joined with single spaces
    /// (`Result < Vec < Sample > , ExecError >`), or empty for `()`.
    pub ret: String,
    /// Token-index range of the body `{ … }` in the file's stream
    /// (inclusive braces), or `None` for body-less trait declarations.
    pub body: Option<(usize, usize)>,
    /// Calls made inside the body, in source order. Calls inside a nested
    /// `fn` belong to the nested item, not this one.
    pub calls: Vec<CallSite>,
    /// Identifier texts appearing in the body (deduplicated, sorted).
    body_idents: Vec<String>,
}

impl FnItem {
    /// Whether the body mentions `ident` as a token-exact identifier.
    pub fn body_mentions(&self, ident: &str) -> bool {
        self.body_idents
            .binary_search_by(|s| s.as_str().cmp(ident))
            .is_ok()
    }
}

/// One struct field.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// The field name.
    pub name: String,
    /// The type tokens, joined with single spaces.
    pub ty: String,
    /// 1-based line of the field.
    pub line: usize,
}

/// One struct definition (only brace-form structs carry fields).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// The named fields, in declaration order.
    pub fields: Vec<FieldItem>,
}

/// One `use` declaration leaf (groups are flattened).
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Workspace-relative file path of the declaration.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The full path segments (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
    /// The name the import binds locally (last segment, or the `as` alias).
    pub local: String,
}

/// The workspace item index.
#[derive(Debug, Clone, Default)]
pub struct ItemIndex {
    /// Every function definition found, in (file, token) order.
    pub functions: Vec<FnItem>,
    /// Every brace-form struct definition found.
    pub structs: Vec<StructItem>,
    /// Every `use` leaf found.
    pub uses: Vec<UseItem>,
}

impl ItemIndex {
    /// Builds the index over the scanned files.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut index = ItemIndex::default();
        for file in files {
            index_file(file, &mut index);
        }
        index
    }

    /// The struct named `name` defined in `file`, if indexed.
    pub fn struct_in(&self, file: &str, name: &str) -> Option<&StructItem> {
        self.structs
            .iter()
            .find(|s| s.file == file && s.name == name)
    }

    /// Functions with this exact name, anywhere in the workspace.
    pub fn functions_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (usize, &'a FnItem)> {
        self.functions
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name)
    }
}

fn rel(file: &SourceFile) -> String {
    file.rel_path.to_string_lossy().replace('\\', "/")
}

/// Indexes one file: `impl` blocks, `fn` items, `struct` items, `use`
/// declarations, then attributes call sites to the innermost enclosing
/// function body.
fn index_file(file: &SourceFile, index: &mut ItemIndex) {
    let toks = &file.tokens;
    let path = rel(file);

    // impl blocks: (body range, owner type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            if let Some((owner, open)) = impl_owner(toks, i) {
                if let Some(close) = matching_close(toks, open, "{", "}") {
                    impls.push((open, close, owner));
                    i += 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    // Function definitions.
    let fn_base = index.functions.len();
    let mut fn_ranges: Vec<(usize, usize, usize)> = Vec::new(); // (open, close, fn idx)
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) {
            if let Some(item) = parse_fn(file, &path, toks, i, &impls) {
                if let Some((open, close)) = item.body {
                    fn_ranges.push((open, close, index.functions.len()));
                }
                index.functions.push(item);
            }
        }
        if toks[i].is_ident("struct") && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) {
            if let Some(item) = parse_struct(&path, toks, i) {
                index.structs.push(item);
            }
        }
        if toks[i].is_ident("use") {
            parse_use(&path, toks, i, &mut index.uses);
        }
        i += 1;
    }

    // Call sites, attributed to the innermost enclosing function body.
    for j in 0..toks.len() {
        let Some(call) = call_at(toks, j) else {
            continue;
        };
        let innermost = fn_ranges
            .iter()
            .filter(|(open, close, _)| *open < j && j < *close)
            .min_by_key(|(open, close, _)| close - open);
        if let Some((_, _, fn_idx)) = innermost {
            index.functions[*fn_idx].calls.push(call);
        }
    }

    // Body identifier sets (for cheap "does this fn mention X" queries).
    for (open, close, fn_idx) in &fn_ranges {
        let mut idents: Vec<String> = toks[*open..=*close]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        idents.sort();
        idents.dedup();
        index.functions[*fn_idx].body_idents = idents;
    }
    let _ = fn_base;
}

/// For the `impl` token at `i`, returns the implemented-on type name and
/// the index of the block's opening brace.
fn impl_owner(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip generic parameters: `impl<T: Ord> …`.
    if toks.get(j)?.is_punct("<") {
        j = skip_angles(toks, j)?;
    }
    // First path: either the type, or the trait (when followed by `for`).
    let (first, after) = read_type_name(toks, j)?;
    let mut owner = first;
    let mut j = after;
    // `impl Trait for Type { … }`.
    if toks.get(j).is_some_and(|t| t.is_ident("for")) {
        let (ty, after_ty) = read_type_name(toks, j + 1)?;
        owner = ty;
        j = after_ty;
    }
    // Find the block open brace (skipping where clauses).
    while j < toks.len() && !toks[j].is_punct("{") {
        if toks[j].is_punct(";") {
            return None;
        }
        j += 1;
    }
    if j < toks.len() {
        Some((owner, j))
    } else {
        None
    }
}

/// Reads a (possibly path-qualified, possibly generic) type name starting
/// at `j`; returns the final simple name and the index after the type.
fn read_type_name(toks: &[Token], mut j: usize) -> Option<(String, usize)> {
    // Leading `&`/`&mut` (rare in impl position, cheap to tolerate).
    while toks
        .get(j)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        j += 1;
    }
    let mut name = None;
    while let Some(t) = toks.get(j) {
        if t.kind == TokenKind::Ident {
            name = Some(t.text.clone());
            j += 1;
            if toks.get(j).is_some_and(|n| n.is_punct("::")) {
                j += 1;
                continue;
            }
            if toks.get(j).is_some_and(|n| n.is_punct("<")) {
                j = skip_angles(toks, j)?;
            }
            break;
        }
        return None;
    }
    name.map(|n| (n, j))
}

/// Skips a balanced `<…>` group starting at the `<` at `j`; returns the
/// index after the closing `>`. Handles `>>` produced by the joined-punct
/// lexer by counting it as two closes.
fn skip_angles(toks: &[Token], j: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("<") || t.is_punct("<<") {
            depth += if t.text == "<<" { 2 } else { 1 };
        } else if t.is_punct(">") || t.is_punct(">>") {
            depth -= if t.text == ">>" { 2 } else { 1 };
            if depth <= 0 {
                return Some(k + 1);
            }
        } else if t.is_punct(";") || t.is_punct("{") {
            return None; // not a generics group after all
        }
        k += 1;
    }
    None
}

/// Parses the function whose `fn` keyword is at `i`.
fn parse_fn(
    file: &SourceFile,
    path: &str,
    toks: &[Token],
    i: usize,
    impls: &[(usize, usize, String)],
) -> Option<FnItem> {
    let name_tok = toks.get(i + 1)?;
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(toks, j)?;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let params_close = matching_close(toks, j, "(", ")")?;
    let params = parse_params(&toks[j + 1..params_close]);

    // Declared return type: the tokens between `->` and the body brace,
    // terminating semicolon, or `where` clause.
    let mut ret = String::new();
    if toks.get(params_close + 1).is_some_and(|t| t.is_punct("->")) {
        let mut r = params_close + 2;
        while r < toks.len() {
            let t = &toks[r];
            if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                break;
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(&t.text);
            r += 1;
        }
    }

    // Body: the first `{` after the parameter list, unless a `;` ends the
    // item first (trait method declaration).
    let mut k = params_close + 1;
    let mut body = None;
    while k < toks.len() {
        if toks[k].is_punct(";") {
            break;
        }
        if toks[k].is_punct("{") {
            let close = matching_close(toks, k, "{", "}")?;
            body = Some((k, close));
            break;
        }
        k += 1;
    }

    let owner = impls
        .iter()
        .filter(|(open, close, _)| *open < i && i < *close)
        .min_by_key(|(open, close, _)| close - open)
        .map(|(_, _, name)| name.clone());

    Some(FnItem {
        name: name_tok.text.clone(),
        owner,
        file: path.to_string(),
        line: toks[i].line,
        is_pub: is_pub_before(toks, i),
        in_test: file.line_in_test(toks[i].line),
        params,
        ret,
        body,
        calls: Vec::new(),
        body_idents: Vec::new(),
    })
}

/// Whether a `pub` marker directly precedes the item keyword at `i`
/// (tolerating `pub(crate)`-style visibility groups).
fn is_pub_before(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_ident("pub") {
            return true;
        }
        // Tokens that may sit between `pub` and the keyword.
        if t.is_punct(")")
            || t.is_punct("(")
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("unsafe")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.is_ident("in")
        {
            continue;
        }
        return false;
    }
    false
}

/// Splits a parameter token slice on top-level commas and extracts
/// (name, type) pairs. `self` receivers produce a param with an empty
/// name and the receiver tokens as the type.
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            "<<" => depth += 2,
            ")" | "]" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth == 0 => {
                groups.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        groups.push((start, toks.len()));
    }
    for (a, b) in groups {
        let group = &toks[a..b];
        if group.is_empty() {
            continue;
        }
        let colon = group.iter().position(|t| t.is_punct(":"));
        let (name, ty_start) = match colon {
            Some(c) => {
                let name = group[..c]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                (name, c + 1)
            }
            None => (String::new(), 0), // `self`, `&mut self`
        };
        let ty = group[ty_start..]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        params.push(Param { name, ty });
    }
    params
}

/// Parses the brace-form struct whose `struct` keyword is at `i`. Unit
/// and tuple structs are indexed with no fields.
fn parse_struct(path: &str, toks: &[Token], i: usize) -> Option<StructItem> {
    let name_tok = toks.get(i + 1)?;
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(toks, j)?;
    }
    // Skip where clauses up to the body or terminator.
    while j < toks.len() && !toks[j].is_punct("{") {
        if toks[j].is_punct(";") || toks[j].is_punct("(") {
            return Some(StructItem {
                name: name_tok.text.clone(),
                file: path.to_string(),
                line: toks[i].line,
                fields: Vec::new(),
            });
        }
        j += 1;
    }
    let open = j;
    let close = matching_close(toks, open, "{", "}")?;

    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < close {
        // Skip attributes on fields.
        if toks[k].is_punct("#") && toks.get(k + 1).is_some_and(|t| t.is_punct("[")) {
            if let Some(c) = matching_close(toks, k + 1, "[", "]") {
                k = c + 1;
                continue;
            }
        }
        if toks[k].is_ident("pub") {
            k += 1;
            if toks.get(k).is_some_and(|t| t.is_punct("(")) {
                if let Some(c) = matching_close(toks, k, "(", ")") {
                    k = c + 1;
                }
            }
            continue;
        }
        if toks[k].kind == TokenKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct(":")) {
            let name = toks[k].text.clone();
            let line = toks[k].line;
            // Type runs to the next top-level comma or the close brace.
            let mut depth = 0i32;
            let mut t_end = k + 2;
            while t_end < close {
                match toks[t_end].text.as_str() {
                    "(" | "[" | "<" | "{" => depth += 1,
                    "<<" => depth += 2,
                    ")" | "]" | ">" | "}" => depth -= 1,
                    ">>" => depth -= 2,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                t_end += 1;
            }
            let ty = toks[k + 2..t_end]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(FieldItem { name, ty, line });
            k = t_end + 1;
            continue;
        }
        k += 1;
    }
    Some(StructItem {
        name: name_tok.text.clone(),
        file: path.to_string(),
        line: toks[i].line,
        fields,
    })
}

/// Parses the `use` declaration at `i` into flattened leaves.
fn parse_use(path: &str, toks: &[Token], i: usize, out: &mut Vec<UseItem>) {
    // Collect tokens to the terminating `;`.
    let mut end = i + 1;
    while end < toks.len() && !toks[end].is_punct(";") {
        end += 1;
    }
    let line = toks[i].line;
    flatten_use(&toks[i + 1..end], &mut Vec::new(), path, line, out);
}

fn flatten_use(
    toks: &[Token],
    prefix: &mut Vec<String>,
    path: &str,
    line: usize,
    out: &mut Vec<UseItem>,
) {
    let mut k = 0;
    let depth_before = prefix.len();
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokenKind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
            k += 1;
            continue;
        }
        if t.is_punct("::") {
            k += 1;
            if toks.get(k).is_some_and(|n| n.is_punct("{")) {
                let Some(close) = matching_close(toks, k, "{", "}") else {
                    break;
                };
                // Split the group on top-level commas and recurse.
                let inner = &toks[k + 1..close];
                let mut depth = 0i32;
                let mut start = 0;
                for (g, gt) in inner.iter().enumerate() {
                    if gt.is_punct("{") {
                        depth += 1;
                    } else if gt.is_punct("}") {
                        depth -= 1;
                    } else if gt.is_punct(",") && depth == 0 {
                        flatten_use(&inner[start..g], prefix, path, line, out);
                        start = g + 1;
                    }
                }
                flatten_use(&inner[start..], prefix, path, line, out);
                prefix.truncate(depth_before);
                return;
            }
            continue;
        }
        if t.is_ident("as") {
            if let Some(alias) = toks.get(k + 1) {
                out.push(UseItem {
                    file: path.to_string(),
                    line,
                    path: prefix.clone(),
                    local: alias.text.clone(),
                });
            }
            prefix.truncate(depth_before);
            return;
        }
        if t.is_punct("*") {
            prefix.truncate(depth_before);
            return; // glob: no single local name
        }
        k += 1;
    }
    if prefix.len() > depth_before || (!prefix.is_empty() && depth_before == 0) {
        if let Some(local) = prefix.last().cloned() {
            out.push(UseItem {
                file: path.to_string(),
                line,
                path: prefix.clone(),
                local,
            });
        }
    }
    prefix.truncate(depth_before);
}

/// Recognizes a call at token `j`: an identifier directly followed by
/// `(`, excluding definitions, keywords and macro invocations.
fn call_at(toks: &[Token], j: usize) -> Option<CallSite> {
    let t = toks.get(j)?;
    if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    if !toks.get(j + 1).is_some_and(|n| n.is_punct("(")) {
        return None;
    }
    let prev = j.checked_sub(1).map(|p| &toks[p]);
    // `fn name(` is a definition; `name!(` can't happen (the `!` sits
    // between); struct literals `Name {` don't match; `#[cfg(…)]`-style
    // attribute arguments are calls to nothing we index.
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return None;
    }
    let method = prev.is_some_and(|p| p.is_punct("."));
    let qualifier = if prev.is_some_and(|p| p.is_punct("::")) {
        j.checked_sub(2)
            .map(|q| &toks[q])
            .filter(|q| {
                q.kind == TokenKind::Ident
                    && q.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
            })
            .map(|q| q.text.clone())
    } else {
        None
    };
    Some(CallSite {
        name: t.text.clone(),
        qualifier,
        method,
        line: t.line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn index(text: &str) -> ItemIndex {
        let file = SourceFile::from_source(PathBuf::from("crates/core/src/x.rs"), text);
        ItemIndex::build(std::slice::from_ref(&file))
    }

    #[test]
    fn functions_params_and_owner() {
        let ix = index(
            "pub struct Gpu { pub seed: u64 }\n\
             impl Gpu {\n    pub fn new(seed: u64) -> Self { Gpu { seed } }\n\
                 fn draw(&self, rng: &mut StdRng) -> f64 { step(rng) }\n}\n\
             fn free(x: f64) -> f64 { x }\n",
        );
        assert_eq!(ix.functions.len(), 3);
        let new = &ix.functions[0];
        assert_eq!(new.name, "new");
        assert_eq!(new.owner.as_deref(), Some("Gpu"));
        assert!(new.is_pub);
        assert_eq!(new.params.len(), 1);
        assert_eq!(new.params[0].name, "seed");
        let draw = &ix.functions[1];
        assert_eq!(draw.owner.as_deref(), Some("Gpu"));
        assert!(!draw.is_pub);
        assert!(draw.params[1].is_mut_ref_of("StdRng"));
        assert_eq!(ix.functions[2].owner, None);
    }

    #[test]
    fn trait_impl_owner_is_the_type() {
        let ix = index("impl Searcher for RandomSearch {\n    fn propose(&mut self) {}\n}\n");
        assert_eq!(ix.functions[0].owner.as_deref(), Some("RandomSearch"));
    }

    #[test]
    fn generic_impl_and_fn() {
        let ix = index(
            "impl<T: Ord> Queue<T> {\n    fn push<U>(&mut self, item: U) { store(item) }\n}\n",
        );
        assert_eq!(ix.functions[0].owner.as_deref(), Some("Queue"));
        assert_eq!(ix.functions[0].params[1].name, "item");
    }

    #[test]
    fn calls_attributed_to_innermost_fn() {
        let ix = index("fn outer() {\n    a();\n    fn inner() { b(); }\n    c();\n}\n");
        let outer = ix.functions.iter().find(|f| f.name == "outer").unwrap();
        let inner = ix.functions.iter().find(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        let inner_calls: Vec<&str> = inner.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, ["a", "c"]);
        assert_eq!(inner_calls, ["b"]);
    }

    #[test]
    fn qualified_and_method_calls() {
        let ix = index("fn f() {\n    let g = Gpu::new(7);\n    g.measure();\n    helper(1);\n}\n");
        let calls = &ix.functions[0].calls;
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].qualifier.as_deref(), Some("Gpu"));
        assert!(!calls[0].method);
        assert!(calls[1].method);
        assert_eq!(calls[2].qualifier, None);
        assert!(!calls[2].method);
    }

    #[test]
    fn struct_fields_with_attributes_and_visibility() {
        let ix = index(
            "pub struct CheckpointHeader {\n    /// Run seed.\n    pub seed: u64,\n\
                 #[allow(dead_code)]\n    pub budget: Budget,\n    private_knob: Option<PathBuf>,\n}\n",
        );
        let s = ix
            .struct_in("crates/core/src/x.rs", "CheckpointHeader")
            .unwrap();
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["seed", "budget", "private_knob"]);
        assert_eq!(s.fields[2].ty, "Option < PathBuf >");
    }

    #[test]
    fn unit_and_tuple_structs_have_no_fields() {
        let ix = index("pub struct Marker;\npub struct Pair(f64, f64);\n");
        assert_eq!(ix.structs.len(), 2);
        assert!(ix.structs.iter().all(|s| s.fields.is_empty()));
    }

    #[test]
    fn use_leaves_flattened_with_aliases() {
        let ix = index(
            "use std::collections::{HashMap, BTreeMap as Ordered};\nuse rand::rngs::StdRng;\n",
        );
        let locals: Vec<&str> = ix.uses.iter().map(|u| u.local.as_str()).collect();
        assert!(locals.contains(&"HashMap"));
        assert!(locals.contains(&"Ordered"));
        assert!(locals.contains(&"StdRng"));
        let aliased = ix.uses.iter().find(|u| u.local == "Ordered").unwrap();
        assert_eq!(aliased.path.last().map(String::as_str), Some("BTreeMap"));
    }

    #[test]
    fn body_mentions_is_token_exact() {
        let ix = index("fn f() { let x = SystemTime::now(); }\n");
        assert!(ix.functions[0].body_mentions("SystemTime"));
        assert!(!ix.functions[0].body_mentions("System"));
    }

    #[test]
    fn test_region_functions_are_marked() {
        let ix = index("fn live() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n");
        assert!(!ix.functions[0].in_test);
        assert!(ix.functions[1].in_test);
    }

    #[test]
    fn bodyless_trait_fn_indexed_without_body() {
        let ix = index("trait S {\n    fn propose(&mut self, n: usize) -> f64;\n}\n");
        assert_eq!(ix.functions[0].name, "propose");
        assert!(ix.functions[0].body.is_none());
    }
}
