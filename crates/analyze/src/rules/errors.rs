//! R3 — every public error enum is `#[non_exhaustive]`.
//!
//! Error enums grow as the system grows; without `#[non_exhaustive]`,
//! adding a variant is a semver break for every downstream `match`.

use crate::scan::SourceFile;
use crate::{Finding, Rule};

/// R3: flags `pub enum *Error*` declarations whose attribute block lacks
/// `#[non_exhaustive]`.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allowed.contains(Rule::R3ErrorEnumExhaustive.id()) {
            continue;
        }
        let trimmed = line.code.trim_start();
        let is_pub_error_enum = trimmed.strip_prefix("pub enum ").is_some_and(|rest| {
            rest.split(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .is_some_and(|name| name.contains("Error"))
        });
        if !is_pub_error_enum {
            continue;
        }
        // Walk back through the attribute/doc block looking for the marker.
        let mut has_marker = false;
        for back in file.lines[..idx].iter().rev().take(16) {
            let t = back.code.trim_start();
            let attr_or_doc = t.starts_with("#[")
                || t.starts_with(')') // tail of a multi-line derive list
                || t.starts_with(']')
                || t.is_empty()
                || back.raw.trim_start().starts_with("///")
                || back.raw.trim_start().starts_with("//");
            if back.code.contains("non_exhaustive") {
                has_marker = true;
                break;
            }
            if !attr_or_doc {
                break;
            }
        }
        if !has_marker {
            findings.push(super::finding_at(
                Rule::R3ErrorEnumExhaustive,
                file,
                line.number,
                "public error enum is missing `#[non_exhaustive]`; adding a variant later would be a breaking change".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn fires_on_exhaustive_pub_error_enum() {
        let f = run("#[derive(Debug)]\npub enum ParseError {\n    Bad,\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R3ErrorEnumExhaustive);
    }

    #[test]
    fn accepts_non_exhaustive() {
        let src = "/// Docs.\n#[derive(Debug)]\n#[non_exhaustive]\npub enum Error {\n    Bad,\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn ignores_non_error_enums_and_private() {
        assert!(run("pub enum Mode { A, B }\n").is_empty());
        assert!(run("enum InternalError { X }\n").is_empty());
    }
}
