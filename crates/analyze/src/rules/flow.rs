//! R10/R11 — interprocedural flow rules over the workspace call graph.
//!
//! These are the first rules that see past a single file, extending two
//! per-file invariants along confident call edges (see [`crate::graph`]):
//!
//! * **R10 (wall-clock flow)** extends R1: a function whose body touches
//!   `SystemTime`/`Instant` is a *clock source*; taint propagates to every
//!   (transitive) caller, and each call edge into tainted code from a
//!   file outside the declared [`TIMING_SINKS`] is a finding. R1 catches
//!   the read itself; R10 catches the helper that launders it across a
//!   file boundary.
//! * **R11 (RNG flow)** extends R8: a function whose body constructs an
//!   RNG (`seed_from_u64`/`from_seed`/`from_rng`) is a *minting
//!   function*; calling one from a file that is not a declared seeded
//!   root forks the random stream away from the recorded seed. The
//!   minting function's own location is R8's business — R11 polices who
//!   may *reach* it. Marking the minting function's definition line with
//!   `analyze::allow(R11)` blesses it as a pure-draw helper callable from
//!   anywhere.
//!
//! Both rules only consume *confident* edges, so they under-approximate:
//! a missed edge hides a finding but never invents one.

use std::collections::BTreeMap;

use crate::graph::CallGraph;
use crate::index::ItemIndex;
use crate::scan::SourceFile;
use crate::{Finding, Rule};

use super::rng::RNG_ROOTS;

/// Files allowed to call (transitively) into wall-clock readers. Library
/// crates have none today — wall time belongs to the `cli`/`bench`
/// crates, which are not scanned; the constant exists so a future
/// profiling sink can be declared instead of sprinkling allows.
pub const TIMING_SINKS: &[&str] = &[];

/// Identifiers that make a function body a clock source.
const CLOCK_IDENTS: &[&str] = &["SystemTime", "Instant"];

/// Identifiers that make a function body an RNG minting site (kept in
/// sync with R8's construction list).
const MINT_IDENTS: &[&str] = &["seed_from_u64", "from_seed", "from_rng"];

fn file_map(files: &[SourceFile]) -> BTreeMap<String, &SourceFile> {
    files
        .iter()
        .map(|f| (f.rel_path.to_string_lossy().replace('\\', "/"), f))
        .collect()
}

/// R10: call edges from non-sink files into (transitively) clock-tainted
/// functions.
pub fn check_wallclock_flow(
    files: &[SourceFile],
    index: &ItemIndex,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    let rule = Rule::R10WallClockFlow;
    let by_path = file_map(files);
    let seeds: Vec<bool> = index
        .functions
        .iter()
        .map(|f| CLOCK_IDENTS.iter().any(|id| f.body_mentions(id)))
        .collect();
    if !seeds.iter().any(|&s| s) {
        return;
    }
    let tainted = graph.taint_callers(index.functions.len(), &seeds);

    for e in &graph.edges {
        let caller = &index.functions[e.caller];
        let callee = &index.functions[e.callee];
        if !tainted[e.callee] || caller.in_test || callee.in_test {
            continue;
        }
        if TIMING_SINKS.contains(&caller.file.as_str()) {
            continue;
        }
        let Some(src) = by_path.get(&caller.file) else {
            continue;
        };
        if src.line_in_test(e.line) || src.line_allowed(e.line, rule.id()) {
            continue;
        }
        let how = if seeds[e.callee] {
            "reads wall-clock time"
        } else {
            "transitively reaches a wall-clock read"
        };
        findings.push(super::finding_at(
            rule,
            src,
            e.line,
            format!(
                "`{}` {how} ({}:{}); deterministic paths must not observe wall time — inject measured durations, or declare a timing sink (rules::flow::TIMING_SINKS)",
                callee.name, callee.file, callee.line
            ),
        ));
    }
}

/// R11: call edges from non-root files into RNG-minting functions.
pub fn check_rng_flow(
    files: &[SourceFile],
    index: &ItemIndex,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    let rule = Rule::R11RngFlow;
    let by_path = file_map(files);
    let minting: Vec<bool> = index
        .functions
        .iter()
        .map(|f| MINT_IDENTS.iter().any(|id| f.body_mentions(id)))
        .collect();
    if !minting.iter().any(|&m| m) {
        return;
    }

    for e in &graph.edges {
        let caller = &index.functions[e.caller];
        let callee = &index.functions[e.callee];
        if !minting[e.callee] || caller.in_test || callee.in_test {
            continue;
        }
        if RNG_ROOTS.contains(&caller.file.as_str()) {
            continue;
        }
        // A blessed pure-draw helper: allow(R11) on its definition line
        // exempts every edge into it.
        if by_path
            .get(&callee.file)
            .is_some_and(|src| src.line_allowed(callee.line, rule.id()))
        {
            continue;
        }
        let Some(src) = by_path.get(&caller.file) else {
            continue;
        };
        if src.line_in_test(e.line) || src.line_allowed(e.line, rule.id()) {
            continue;
        }
        findings.push(super::finding_at(
            rule,
            src,
            e.line,
            format!(
                "`{}` ({}:{}) constructs an RNG, and this caller is not a declared seeded root: the call forks the random stream away from the recorded seed — thread `&mut StdRng` from a root instead (roots: rules::rng::RNG_ROOTS)",
                callee.name, callee.file, callee.line
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_source(PathBuf::from(p), s))
            .collect();
        let index = ItemIndex::build(&sources);
        let graph = CallGraph::build(&index);
        let mut findings = Vec::new();
        check_wallclock_flow(&sources, &index, &graph, &mut findings);
        check_rng_flow(&sources, &index, &graph, &mut findings);
        findings
    }

    fn by_rule(findings: &[Finding], rule: Rule) -> usize {
        findings.iter().filter(|f| f.rule == rule).count()
    }

    #[test]
    fn r10_cross_file_clock_chain_fires_on_every_edge() {
        let f = run(&[
            (
                "crates/core/src/profiler.rs",
                "pub fn read_clock() -> u64 { SystemTime::now().elapsed().as_secs() }\n",
            ),
            (
                "crates/core/src/model.rs",
                "pub fn calibrate() -> u64 { read_clock() }\nfn top() -> u64 { calibrate() }\n",
            ),
        ]);
        // calibrate → read_clock (direct) and top → calibrate (transitive).
        assert_eq!(by_rule(&f, Rule::R10WallClockFlow), 2);
        assert!(f.iter().any(|x| x.message.contains("transitively")));
    }

    #[test]
    fn r10_ambiguous_callee_name_is_conservative() {
        let f = run(&[
            (
                "crates/core/src/a.rs",
                "fn sample() -> u64 { Instant::now().elapsed().as_secs() }\n",
            ),
            (
                "crates/gp/src/b.rs",
                "fn sample() -> u64 { 1 }\nfn go() -> u64 { sample() }\n",
            ),
        ]);
        assert_eq!(by_rule(&f, Rule::R10WallClockFlow), 0);
    }

    #[test]
    fn r10_test_caller_is_exempt() {
        let f = run(&[
            (
                "crates/core/src/profiler.rs",
                "pub fn read_clock() -> u64 { SystemTime::now().elapsed().as_secs() }\n",
            ),
            (
                "crates/core/src/model.rs",
                "#[cfg(test)]\nmod t {\n    fn bench() -> u64 { read_clock() }\n}\n",
            ),
        ]);
        assert_eq!(by_rule(&f, Rule::R10WallClockFlow), 0);
    }

    #[test]
    fn r11_minting_call_from_non_root_fires() {
        let f = run(&[
            (
                "crates/gpu-sim/src/sensor.rs",
                "pub struct Gpu;\nimpl Gpu {\n    pub fn boot(seed: u64) -> Gpu { let _r = StdRng::seed_from_u64(seed); Gpu }\n}\n",
            ),
            (
                "crates/gp/src/opt.rs",
                "fn probe() { let _g = Gpu::boot(7); }\n",
            ),
        ]);
        assert_eq!(by_rule(&f, Rule::R11RngFlow), 1);
    }

    #[test]
    fn r11_root_callers_pass() {
        let f = run(&[
            (
                "crates/gpu-sim/src/sensor.rs",
                "pub struct Gpu;\nimpl Gpu {\n    pub fn boot(seed: u64) -> Gpu { let _r = StdRng::seed_from_u64(seed); Gpu }\n}\n",
            ),
            (
                "crates/core/src/scenario.rs",
                "fn stage() { let _g = Gpu::boot(7); }\n",
            ),
        ]);
        assert_eq!(by_rule(&f, Rule::R11RngFlow), 0);
    }

    #[test]
    fn r11_blessed_definition_is_callable_from_anywhere() {
        let f = run(&[
            (
                "crates/gpu-sim/src/fault.rs",
                "// analyze::allow(R11)\nfn unit_draw(h: u64) -> f64 { StdRng::seed_from_u64(h).random() }\n",
            ),
            (
                "crates/gp/src/opt.rs",
                "fn probe() -> f64 { unit_draw(7) }\n",
            ),
        ]);
        assert_eq!(by_rule(&f, Rule::R11RngFlow), 0);
    }

    #[test]
    fn r11_call_site_allow_is_honoured() {
        let f = run(&[
            (
                "crates/gpu-sim/src/sensor.rs",
                "pub struct Gpu;\nimpl Gpu {\n    pub fn boot(seed: u64) -> Gpu { let _r = StdRng::seed_from_u64(seed); Gpu }\n}\n",
            ),
            (
                "crates/gp/src/opt.rs",
                "// analyze::allow(R11)\nfn probe() { let _g = Gpu::boot(7); }\n",
            ),
        ]);
        assert_eq!(by_rule(&f, Rule::R11RngFlow), 0);
    }
}
