//! R16 — stale-allow: the escape hatch ratchets shut.
//!
//! Every `// analyze::allow(<rule>)` marker is an auditable exception,
//! and exceptions rot: the flagged code gets refactored away but the
//! marker stays, silently pre-authorizing the *next* violation on that
//! line. During analysis, [`crate::scan::SourceFile`] records which
//! markers actually suppressed a would-be finding; this rule, which runs
//! after every other rule, flags the rest — plus any marker naming a
//! rule id that does not exist. `--fix` removes stale ids (and whole
//! markers once no live id remains).
//!
//! A deliberately-kept exception can carry `analyze::allow(R16)` on the
//! same marker line to say "yes, this grant is currently dormant, keep
//! it" — which is itself consumed, so the meta-escape cannot rot
//! invisibly either.

use crate::scan::SourceFile;
use crate::{Finding, Rule};

use super::finding_at;

/// Flags stale or unknown-rule allow markers in one file. Must run after
/// every rule that can consume a marker.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (line, id, known) in stale_ids(file) {
        let message = if known {
            format!(
                "stale escape hatch: analyze::allow({id}) no longer suppresses any {id} finding here; remove it (or run --fix)"
            )
        } else {
            format!("analyze::allow({id}) names an unknown rule; remove it (or run --fix)")
        };
        findings.push(finding_at(Rule::R16StaleAllow, file, line, message));
    }
}

/// The `(marker line, rule id, id-is-known)` triples `--fix` should
/// remove: grants in live code that no rule consumed during analysis.
pub fn stale_ids(file: &SourceFile) -> Vec<(usize, String, bool)> {
    let mut out = Vec::new();
    for m in &file.markers {
        if file.line_in_test(m.line) {
            continue;
        }
        for id in &m.ids {
            if id == Rule::R16StaleAllow.id() {
                continue; // the meta-grant is consumed below, not audited
            }
            let known = Rule::from_id(id).is_some();
            if known && file.allow_used(m.line, id) {
                continue;
            }
            // A co-located allow(R16) keeps a dormant grant alive.
            if file.line_allowed(m.line, Rule::R16StaleAllow.id()) {
                continue;
            }
            out.push((m.line, id.clone(), known));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::analyze_sources;
    use crate::Rule;

    #[test]
    fn consumed_marker_is_not_stale() {
        let report = analyze_sources(&[(
            "crates/nn/src/lib.rs",
            "// analyze::allow(R4)\npub fn log() { eprintln!(\"x\"); }\n",
        )]);
        assert_eq!(report.findings_for(Rule::R16StaleAllow).count(), 0);
        assert_eq!(report.findings_for(Rule::R4PrintInLibrary).count(), 0);
    }

    #[test]
    fn dormant_marker_is_stale() {
        let report = analyze_sources(&[(
            "crates/nn/src/lib.rs",
            "// analyze::allow(R4)\npub fn quiet() {}\n",
        )]);
        let f: Vec<_> = report.findings_for(Rule::R16StaleAllow).collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("allow(R4)"));
    }

    #[test]
    fn unknown_rule_id_is_flagged() {
        let report = analyze_sources(&[(
            "crates/nn/src/lib.rs",
            "// analyze::allow(R99)\npub fn quiet() {}\n",
        )]);
        let f: Vec<_> = report.findings_for(Rule::R16StaleAllow).collect();
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn marker_in_test_code_is_exempt() {
        let report = analyze_sources(&[(
            "crates/nn/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    // analyze::allow(R4)\n    fn quiet() {}\n}\n",
        )]);
        assert_eq!(report.findings_for(Rule::R16StaleAllow).count(), 0);
    }

    #[test]
    fn meta_grant_keeps_a_dormant_marker_alive() {
        let report = analyze_sources(&[(
            "crates/nn/src/lib.rs",
            "// kept for the quarterly fuzz run: analyze::allow(R4, R16)\npub fn quiet() {}\n",
        )]);
        assert_eq!(
            report.findings_for(Rule::R16StaleAllow).count(),
            0,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn one_live_id_does_not_shield_its_stale_neighbour() {
        let report = analyze_sources(&[(
            "crates/nn/src/lib.rs",
            "// analyze::allow(R4, R9)\npub fn log() { eprintln!(\"x\"); }\n",
        )]);
        // R4 is consumed; R9 never fires in crates/nn (not a trace crate).
        let f: Vec<_> = report.findings_for(Rule::R16StaleAllow).collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("allow(R9)"));
    }
}
