//! The analyzer rules (R1–R19), one module per rule family.
//!
//! R1–R9, R12 and R14 are token- or file-level checks over a single
//! [`SourceFile`] whose comments and strings have already been blanked
//! and whose remaining text has been tokenized. R10, R11 and R13 are
//! *workspace-level*: they additionally consume the item index
//! ([`crate::index`]) and the confident call graph ([`crate::graph`])
//! built over all scanned files. R15, R17 and R18 are *flow-sensitive*:
//! on top of the index/graph they build per-function CFGs
//! ([`crate::cfg`]) and reaching-definitions facts ([`crate::dataflow`]).
//! R19 compares the committed determinism certificate
//! ([`crate::certificate`]) against one recomputed from the findings so
//! far, and R16 runs dead last to audit which allow markers went unused.
//! Rules only fire in library-crate code outside `#[cfg(test)]` regions,
//! and every rule honours the `// analyze::allow(<rule>)` escape hatch.
//!
//! | module | rules |
//! |--------|-------|
//! | [`determinism`] | R1 — no ambient entropy or wall-clock reads |
//! | [`floats`] | R2 — no raw float equality / panicking `partial_cmp` |
//! | [`errors`] | R3 — public error enums are `#[non_exhaustive]` |
//! | [`io`] | R4 — no print-family macros in library crates |
//! | (here) | R5 — finiteness guards at declared numerical boundaries |
//! | [`units`] | R6 — unit-of-measure discipline on `f64` quantities |
//! | [`ordering`] | R7 — hardware constraints evaluated before objectives |
//! | [`rng`] | R8 — RNGs constructed only at declared seeded roots |
//! | [`collections`] | R9 — no unordered collections in trace-affecting crates |
//! | [`flow`] | R10 — wall-clock flow outside timing sinks (interprocedural) |
//! | [`flow`] | R11 — RNG minting reachable from non-root files (interprocedural) |
//! | [`concurrency`] | R12 — concurrency primitives confined to the executor boundary |
//! | [`header`] | R13 — checkpoint-header completeness (cross-file) |
//! | [`reductions`] | R14 — order-sensitive float reductions outside blessed helpers |
//! | [`panic_path`] | R15 — panic sites reachable from the executor commit path |
//! | [`stale_allow`] | R16 — unused `analyze::allow` escape hatches |
//! | [`results`] | R17 — discarded `Result`s and lossy unit casts |
//! | [`divergence`] | R18 — branch-divergent RNG draws |
//! | [`crate::certificate`] | R19 — determinism certificate drift |

pub mod collections;
pub mod concurrency;
pub mod determinism;
pub mod divergence;
pub mod errors;
pub mod floats;
pub mod flow;
pub mod header;
pub mod io;
pub mod ordering;
pub mod panic_path;
pub mod reductions;
pub mod results;
pub mod rng;
pub mod stale_allow;
pub mod units;

use crate::graph::CallGraph;
use crate::index::ItemIndex;
use crate::scan::SourceFile;
use crate::{Finding, Rule};

/// Sites that must carry a finiteness guard (R5): numerical boundaries
/// where a NaN/Inf slipping through would silently poison downstream
/// results. Paths are workspace-relative; the marker must appear in
/// non-test code of that file.
pub const GUARD_SITES: &[(&str, &str)] = &[
    (
        "crates/linalg/src/cholesky.rs",
        "Cholesky factorization entry",
    ),
    ("crates/linalg/src/lstsq.rs", "least-squares solver entry"),
    ("crates/gp/src/regressor.rs", "GP posterior boundary"),
    ("crates/core/src/model.rs", "constraint-model boundary"),
];

/// The marker R5 looks for at each guard site.
pub const FINITE_GUARD_MARKER: &str = "debug_assert_finite!";

/// Applies every per-file rule (R1–R4, R6–R9, R12, R14) to one file. R5
/// is applied separately per [`GUARD_SITES`] entry via
/// [`check_finite_guard`]; the workspace-level rules (R10, R11, R13) run
/// once over all files via [`apply_workspace_rules`].
pub fn apply_rules(file: &SourceFile, findings: &mut Vec<Finding>) {
    determinism::check(file, findings);
    floats::check(file, findings);
    errors::check(file, findings);
    io::check(file, findings);
    units::check(file, findings);
    ordering::check(file, findings);
    rng::check(file, findings);
    collections::check(file, findings);
    concurrency::check(file, findings);
    reductions::check(file, findings);
}

/// Applies the workspace-level rules (R10, R11, R13) and the
/// flow-sensitive rules (R15, R17, R18) over the full scan.
pub fn apply_workspace_rules(
    files: &[SourceFile],
    index: &ItemIndex,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    flow::check_wallclock_flow(files, index, graph, findings);
    flow::check_rng_flow(files, index, graph, findings);
    header::check(files, index, findings);
    panic_path::check(files, index, graph, findings);
    results::check(files, index, findings);
    divergence::check(files, index, findings);
}

/// R5: the file is a declared guard site and must contain the
/// `debug_assert_finite!` marker in live (non-test) code.
pub fn check_finite_guard(file: &SourceFile, what: &str, findings: &mut Vec<Finding>) {
    let present = file
        .lines
        .iter()
        .any(|l| !l.in_test && l.code.contains(FINITE_GUARD_MARKER));
    if !present && !file.any_line_allows(Rule::R5MissingFiniteGuard.id()) {
        findings.push(Finding {
            rule: Rule::R5MissingFiniteGuard,
            file: file.rel_path.display().to_string(),
            line: 1,
            excerpt: String::new(),
            message: format!(
                "{what}: no `{FINITE_GUARD_MARKER}` guard found; NaN/Inf can cross this numerical boundary unchecked"
            ),
        });
    }
}

/// Trims and clips a raw source line for use as a finding excerpt.
pub fn excerpt(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 120 {
        let cut = t
            .char_indices()
            .take_while(|(i, _)| *i < 117)
            .last()
            .map_or(0, |(i, c)| i + c.len_utf8());
        format!("{}...", &t[..cut])
    } else {
        t.to_string()
    }
}

/// Builds a [`Finding`] for `rule` at a 1-based `line` of `file`, with the
/// excerpt taken from the source.
pub(crate) fn finding_at(rule: Rule, file: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.display().to_string(),
        line,
        excerpt: file.excerpt_at(line),
        message,
    }
}

/// Builds a file-level [`Finding`] (no meaningful line or excerpt) — used
/// by rules whose subject is a whole artifact, like the determinism
/// certificate (R19).
pub(crate) fn finding_for_file(rule: Rule, file: &str, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: 1,
        excerpt: String::new(),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text)
    }

    #[test]
    fn r5_missing_and_present() {
        let mut f = Vec::new();
        check_finite_guard(&scan("pub fn predict() {}\n"), "GP posterior", &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R5MissingFiniteGuard);

        let mut ok = Vec::new();
        check_finite_guard(
            &scan("pub fn predict() { debug_assert_finite!(\"gp\", &mean); }\n"),
            "GP posterior",
            &mut ok,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn r5_marker_in_test_code_does_not_count() {
        let src = "pub fn predict() {}\n#[cfg(test)]\nmod tests {\n  fn t() { debug_assert_finite!(\"x\", &v); }\n}\n";
        let mut f = Vec::new();
        check_finite_guard(&scan(src), "GP posterior", &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn excerpt_clips_long_lines() {
        let long = "x".repeat(400);
        let e = excerpt(&long);
        assert!(e.len() <= 121);
        assert!(e.ends_with("..."));
    }
}
