//! R12 — concurrency primitives confined to the executor boundary, and
//! trace writes confined to the commit path.
//!
//! Determinism under parallel evaluation holds because *one* place owns
//! all cross-thread state: the executor's commit queue, which re-orders
//! worker results back into submission order before anything touches the
//! trace. A `Mutex` or atomic introduced elsewhere creates a second
//! synchronization point whose observable order depends on scheduling —
//! exactly the bug class the golden-trace tests can only catch after the
//! fact. Two checks:
//!
//! 1. **Boundary**: `Mutex`/`RwLock`/atomics/channels/`thread::…`/
//!    `unsafe`/`static mut` may appear only in the declared
//!    [`EXECUTOR_BOUNDARY`] files.
//! 2. **Commit path**: pushes onto a `samples` trace vector may appear
//!    only in the declared [`COMMIT_PATHS`] files, where the commit
//!    queue's ordering proof applies.

use crate::scan::SourceFile;
use crate::token::TokenKind;
use crate::{Finding, Rule};

/// Files allowed to hold concurrency primitives: the deterministic
/// parallel executor (threads, scoped spawns, channels).
pub const EXECUTOR_BOUNDARY: &[&str] = &["crates/core/src/executor.rs"];

/// Files allowed to append to a `samples` trace: the executor's commit
/// queue, the sequential driver it mirrors, and the ask–tell study core
/// whose single commit point both now share.
pub const COMMIT_PATHS: &[&str] = &[
    "crates/core/src/driver.rs",
    "crates/core/src/executor.rs",
    "crates/core/src/study.rs",
];

/// Concurrency primitive type/module names (token-exact).
const PRIMITIVE_IDENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "mpsc",
    "OnceLock",
    "LazyLock",
    "JoinHandle",
];

/// R12: concurrency primitives outside the boundary, trace writes
/// outside the commit path.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R12ConcurrencyBoundary;
    let rel = file.rel_path.to_string_lossy().replace('\\', "/");
    let in_boundary = EXECUTOR_BOUNDARY.contains(&rel.as_str());
    let in_commit_path = COMMIT_PATHS.contains(&rel.as_str());
    let toks = &file.tokens;
    let mut last_line = 0;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Trace-write check applies even inside the boundary files.
        if !in_commit_path
            && t.text == "samples"
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("push"))
            && !file.token_exempt(t, rule.id())
        {
            findings.push(super::finding_at(
                rule,
                file,
                t.line,
                "trace write (`samples.push`) outside the commit path: only the commit queue's submission-order replay guarantees deterministic traces (see rules::concurrency::COMMIT_PATHS)".to_string(),
            ));
            continue;
        }
        if in_boundary {
            continue;
        }
        let is_primitive = PRIMITIVE_IDENTS.contains(&t.text.as_str())
            || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len())
            || t.text == "unsafe"
            || (t.text == "thread" && toks.get(i + 1).is_some_and(|n| n.is_punct("::")))
            || (t.text == "static" && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")));
        if !is_primitive || t.line == last_line || file.token_exempt(t, rule.id()) {
            continue;
        }
        last_line = t.line;
        findings.push(super::finding_at(
            rule,
            file,
            t.line,
            format!(
                "concurrency primitive `{}` outside the executor boundary: cross-thread state is confined to {} so the commit queue stays the single ordering point",
                t.text,
                EXECUTOR_BOUNDARY.join(", ")
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_at(path: &str, text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from(path), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn mutex_outside_boundary_fires() {
        let f = run_at("crates/core/src/model.rs", "use std::sync::Mutex;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R12ConcurrencyBoundary);
    }

    #[test]
    fn atomics_threads_and_static_mut_fire() {
        assert_eq!(
            run_at(
                "crates/gp/src/kernel.rs",
                "use std::sync::atomic::AtomicU64;\n"
            )
            .len(),
            1
        );
        assert_eq!(
            run_at(
                "crates/nn/src/network.rs",
                "fn f() { std::thread::spawn(|| {}); }\n"
            )
            .len(),
            1
        );
        assert_eq!(
            run_at("crates/core/src/drift.rs", "static mut COUNTER: u64 = 0;\n").len(),
            1
        );
    }

    #[test]
    fn unsafe_outside_boundary_fires() {
        let f = run_at("crates/linalg/src/vector.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unsafe"));
    }

    #[test]
    fn boundary_file_may_use_threads() {
        assert!(run_at(
            "crates/core/src/executor.rs",
            "use std::sync::Mutex;\nfn f() { std::thread::scope(|s| {}); }\n"
        )
        .is_empty());
    }

    #[test]
    fn plain_thread_ident_without_path_is_fine() {
        // `worker_thread` variables or a field named `thread` are not spawns.
        assert!(run_at("crates/core/src/model.rs", "let thread = 1;\n").is_empty());
    }

    #[test]
    fn trace_write_outside_commit_path_fires() {
        let f = run_at(
            "crates/core/src/methods.rs",
            "fn f(t: &mut Trace) { t.samples.push(s); }\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("commit path"));
    }

    #[test]
    fn trace_write_in_commit_path_passes() {
        assert!(run_at(
            "crates/core/src/driver.rs",
            "fn f(t: &mut Trace) { t.samples.push(s); }\n"
        )
        .is_empty());
        assert!(run_at(
            "crates/core/src/executor.rs",
            "fn f(t: &mut Trace) { t.samples.push(s); }\n"
        )
        .is_empty());
    }

    #[test]
    fn test_code_and_allow_are_exempt() {
        assert!(run_at(
            "crates/core/src/model.rs",
            "#[cfg(test)]\nmod t {\n    use std::sync::Mutex;\n}\n"
        )
        .is_empty());
        assert!(run_at(
            "crates/core/src/model.rs",
            "// analyze::allow(R12)\nuse std::sync::Mutex;\n"
        )
        .is_empty());
    }
}
