//! R1 — no ambient entropy or wall-clock reads in library code.
//!
//! The HyperPower search must replay bit-identically from a seed: the BO
//! loop, the simulated GPU sensors and the dataset generators all thread
//! explicit RNG state. Any call that reaches for the OS entropy pool or
//! the wall clock (`thread_rng`, `OsRng`, `SystemTime`, `Instant::now`)
//! silently breaks that replay guarantee.

use crate::scan::SourceFile;
use crate::token::TokenKind;
use crate::{Finding, Rule};

/// Identifiers that introduce ambient, non-reproducible entropy or time.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_os_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "SystemTime",
];

/// R1: flags entropy/time identifiers token-exactly (a doc string or a
/// longer identifier containing one of the names never fires).
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R1NondeterministicEntropy;
    let mut last_line = 0usize;
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.line == last_line {
            continue;
        }
        let name = t.text.as_str();
        let instant_now = name == "Instant"
            && file.tokens.get(i + 1).is_some_and(|p| p.is_punct("::"))
            && file.tokens.get(i + 2).is_some_and(|n| n.is_ident("now"));
        if !(ENTROPY_IDENTS.contains(&name) || instant_now) {
            continue;
        }
        if file.token_exempt(t, rule.id()) {
            continue;
        }
        let shown = if instant_now { "Instant::now" } else { name };
        findings.push(super::finding_at(
            rule,
            file,
            t.line,
            format!(
                "`{shown}` introduces ambient entropy/time into a deterministic search path; seed all randomness explicitly"
            ),
        ));
        last_line = t.line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn fires_on_thread_rng() {
        let f = run("let mut rng = rand::thread_rng();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R1NondeterministicEntropy);
    }

    #[test]
    fn fires_on_instant_now_but_not_instant_alone() {
        assert_eq!(run("let t = Instant::now();\n").len(), 1);
        assert!(run("fn status(t: Instant) -> bool { t.elapsed }\n").is_empty());
    }

    #[test]
    fn token_exact_no_substring_hits() {
        // `my_thread_rng_wrapper` is one identifier; the old substring
        // scanner fired on it, the tokenizer must not.
        assert!(run("fn my_thread_rng_wrapper() {}\n").is_empty());
        assert!(run("let s = \"thread_rng\"; // thread_rng\n").is_empty());
    }

    #[test]
    fn test_code_and_allow_are_exempt() {
        assert!(run("#[cfg(test)]\nmod tests {\n  fn t() { thread_rng(); }\n}\n").is_empty());
        assert!(run("// analyze::allow(R1)\nlet t = SystemTime::now();\n").is_empty());
    }

    #[test]
    fn one_finding_per_line() {
        let f = run("let (a, b) = (OsRng, SystemTime::now());\n");
        assert_eq!(f.len(), 1);
    }
}
