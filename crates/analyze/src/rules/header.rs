//! R13 — checkpoint-header completeness: every semantic executor knob is
//! part of the checkpoint run identity.
//!
//! Resume safety (PR 4) rests on the `CheckpointHeader` capturing *all*
//! state that changes what a run commits: a knob that alters the trace
//! but is missing from the header lets a stale checkpoint resume into a
//! differently-configured run and silently corrupt the golden-prefix
//! guarantee. That contract lives across two files (`ExecutorOptions` in
//! `executor.rs`, `CheckpointHeader` in `checkpoint.rs`) and two
//! declared lists below, so it rots exactly when someone adds a knob —
//! this rule makes the analyzer, not a human reviewer, fail in that
//! moment:
//!
//! * every `ExecutorOptions` field must be declared either
//!   execution-only (cannot change the trace) or mapped to one or more
//!   header fields;
//! * every mapped header field must exist in `CheckpointHeader` and be
//!   mentioned at least twice in `checkpoint.rs` live code (declaration
//!   plus encode/decode use — a field that is declared but never
//!   serialised is not identity);
//! * stale map entries (naming fields that no longer exist) are findings
//!   too, so the declarations cannot drift from the code.
//!
//! The check is parameterised by a [`Spec`] so the fixture corpus and the
//! mutation test can run it against synthetic struct pairs.

use std::collections::BTreeMap;

use crate::index::ItemIndex;
use crate::scan::SourceFile;
use crate::{Finding, Rule};

/// What R13 verifies: the two structs and the semantic-knob declarations.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// File declaring the options struct.
    pub options_file: &'static str,
    /// The options struct name.
    pub options_struct: &'static str,
    /// File declaring the header struct (and its codec).
    pub header_file: &'static str,
    /// The header struct name.
    pub header_struct: &'static str,
    /// Options fields that can never change the committed trace.
    pub execution_only: &'static [&'static str],
    /// Semantic options fields → the header fields recording them. The
    /// pseudo-field `"__run"` maps the run-intrinsic identity (seed,
    /// method, …) that exists independently of any options knob.
    pub identity_map: &'static [(&'static str, &'static [&'static str])],
}

/// The workspace's real contract.
pub const DEFAULT_SPEC: Spec = Spec {
    options_file: "crates/core/src/executor.rs",
    options_struct: "ExecutorOptions",
    header_file: "crates/core/src/checkpoint.rs",
    header_struct: "CheckpointHeader",
    // `workers` is thread count (trace-neutral by the executor's core
    // guarantee); `checkpoint`/`resume_from` configure when/where
    // checkpoints are written, not what the run computes.
    execution_only: &["workers", "checkpoint", "resume_from"],
    identity_map: &[
        ("__run", &["seed", "method", "mode", "budget"]),
        ("simulated_gpus", &["simulated_gpus"]),
        ("fault_profile", &["fault_profile"]),
        ("retry", &["max_retries"]),
        (
            "drift",
            &["recalibrate", "drift_threshold", "safety_margin"],
        ),
    ],
};

/// The serving layer's contract: every `ServerConfig` knob is
/// execution-only (leases, bounds, priorities and snapshot cadence may
/// never change a committed byte), and the journal's run identity is the
/// study name plus the embedded checkpoint header.
pub const SERVER_SPEC: Spec = Spec {
    options_file: "crates/server/src/server.rs",
    options_struct: "ServerConfig",
    header_file: "crates/server/src/journal.rs",
    header_struct: "JournalHeader",
    execution_only: &[
        "root",
        "max_studies",
        "max_outstanding_per_study",
        "max_outstanding_total",
        "lease_policy",
        "snapshot_every_commits",
        "hedge_after_s",
        "tenant_rate_per_s",
        "tenant_burst",
        "breaker_threshold",
        "breaker_cooldown_s",
        "supervision_seed",
        "health",
    ],
    identity_map: &[("__run", &["name", "run"])],
};

/// R13 against the workspace's real contracts.
pub fn check(files: &[SourceFile], index: &ItemIndex, findings: &mut Vec<Finding>) {
    check_spec(&DEFAULT_SPEC, files, index, findings);
    check_spec(&SERVER_SPEC, files, index, findings);
}

/// R13 against an explicit spec (exposed for fixtures and the mutation
/// test).
pub fn check_spec(
    spec: &Spec,
    files: &[SourceFile],
    index: &ItemIndex,
    findings: &mut Vec<Finding>,
) {
    let rule = Rule::R13CheckpointHeader;
    let by_path: BTreeMap<String, &SourceFile> = files
        .iter()
        .map(|f| (f.rel_path.to_string_lossy().replace('\\', "/"), f))
        .collect();

    // Scratch workspaces without the executor are simply out of scope.
    let Some(options_src) = by_path.get(spec.options_file) else {
        return;
    };
    let Some(options) = index.struct_in(spec.options_file, spec.options_struct) else {
        findings.push(super::finding_at(
            rule,
            options_src,
            1,
            format!(
                "`{}` not found in {} — the checkpoint-identity contract cannot be verified (renamed? update rules::header::DEFAULT_SPEC)",
                spec.options_struct, spec.options_file
            ),
        ));
        return;
    };

    // 1. Every options field is declared execution-only or mapped.
    for field in &options.fields {
        let declared = spec.execution_only.contains(&field.name.as_str())
            || spec
                .identity_map
                .iter()
                .any(|(knob, _)| *knob == field.name);
        if declared || options_src.line_allowed(field.line, rule.id()) {
            continue;
        }
        findings.push(super::finding_at(
            rule,
            options_src,
            field.line,
            format!(
                "`{}.{}` is not declared in the checkpoint-identity contract: map it to header field(s) in rules::header::DEFAULT_SPEC (semantic knob) or list it execution-only (provably trace-neutral)",
                spec.options_struct, field.name
            ),
        ));
    }

    // 2. Stale map entries: knobs that no longer exist on the struct.
    for (knob, _) in spec.identity_map {
        if *knob != "__run" && !options.fields.iter().any(|f| f.name == *knob) {
            findings.push(super::finding_at(
                rule,
                options_src,
                options.line,
                format!(
                    "identity map declares knob `{knob}` but `{}` has no such field — remove the stale entry",
                    spec.options_struct
                ),
            ));
        }
    }

    // 3. The header struct exists and carries every mapped field.
    let Some(header_src) = by_path.get(spec.header_file) else {
        findings.push(super::finding_at(
            rule,
            options_src,
            options.line,
            format!(
                "{} is missing from the scan: `{}` has no run identity to bind to",
                spec.header_file, spec.header_struct
            ),
        ));
        return;
    };
    let Some(header) = index.struct_in(spec.header_file, spec.header_struct) else {
        findings.push(super::finding_at(
            rule,
            header_src,
            1,
            format!(
                "`{}` not found in {} — run identity lost (renamed? update rules::header::DEFAULT_SPEC)",
                spec.header_struct, spec.header_file
            ),
        ));
        return;
    };
    for (knob, targets) in spec.identity_map {
        for target in *targets {
            if header.fields.iter().any(|f| f.name == *target) {
                continue;
            }
            if header_src.line_allowed(header.line, rule.id()) {
                continue;
            }
            findings.push(super::finding_at(
                rule,
                header_src,
                header.line,
                format!(
                    "`{}` lacks field `{target}` recording knob `{knob}`: a resumed run cannot detect a mismatched `{knob}` setting",
                    spec.header_struct
                ),
            ));
        }
    }

    // 4. Each header field is mentioned ≥ 2× in the header file's live
    // code: its declaration plus at least one encode/decode use.
    for field in &header.fields {
        let mentions = header_src
            .tokens
            .iter()
            .filter(|t| t.is_ident(&field.name) && !header_src.line_in_test(t.line))
            .count();
        if mentions >= 2 || header_src.line_allowed(field.line, rule.id()) {
            continue;
        }
        findings.push(super::finding_at(
            rule,
            header_src,
            field.line,
            format!(
                "`{}.{}` is declared but never encoded/decoded in {}: a header field that is not serialised is not run identity",
                spec.header_struct, field.name, spec.header_file
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const TEST_SPEC: Spec = Spec {
        options_file: "crates/core/src/executor.rs",
        options_struct: "Opts",
        header_file: "crates/core/src/checkpoint.rs",
        header_struct: "Header",
        execution_only: &["workers"],
        identity_map: &[("__run", &["seed"]), ("gpus", &["gpus"])],
    };

    fn run(spec: &Spec, files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::from_source(PathBuf::from(p), s))
            .collect();
        let index = ItemIndex::build(&sources);
        let mut findings = Vec::new();
        check_spec(spec, &sources, &index, &mut findings);
        findings
    }

    const GOOD_OPTIONS: &str =
        "pub struct Opts {\n    pub workers: usize,\n    pub gpus: usize,\n}\n";
    const GOOD_HEADER: &str = "pub struct Header {\n    pub seed: u64,\n    pub gpus: usize,\n}\n\
         fn encode(h: &Header) -> String { format!(\"{} {}\", h.seed, h.gpus) }\n";

    #[test]
    fn consistent_pair_is_clean() {
        let f = run(
            &TEST_SPEC,
            &[
                ("crates/core/src/executor.rs", GOOD_OPTIONS),
                ("crates/core/src/checkpoint.rs", GOOD_HEADER),
            ],
        );
        assert!(f.is_empty(), "unexpected: {f:?}");
    }

    #[test]
    fn undeclared_options_knob_fires() {
        let opts = "pub struct Opts {\n    pub workers: usize,\n    pub gpus: usize,\n    pub voltage_v: f64,\n}\n";
        let f = run(
            &TEST_SPEC,
            &[
                ("crates/core/src/executor.rs", opts),
                ("crates/core/src/checkpoint.rs", GOOD_HEADER),
            ],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("voltage_v"));
    }

    #[test]
    fn missing_header_field_fires() {
        let header = "pub struct Header {\n    pub seed: u64,\n}\n\
             fn encode(h: &Header) -> String { h.seed.to_string() }\n";
        let f = run(
            &TEST_SPEC,
            &[
                ("crates/core/src/executor.rs", GOOD_OPTIONS),
                ("crates/core/src/checkpoint.rs", header),
            ],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lacks field `gpus`"));
    }

    #[test]
    fn unencoded_header_field_fires() {
        let header = "pub struct Header {\n    pub seed: u64,\n    pub gpus: usize,\n}\n\
             fn encode(h: &Header) -> String { h.seed.to_string() }\n";
        let f = run(
            &TEST_SPEC,
            &[
                ("crates/core/src/executor.rs", GOOD_OPTIONS),
                ("crates/core/src/checkpoint.rs", header),
            ],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never encoded"));
    }

    #[test]
    fn stale_map_entry_fires() {
        let opts = "pub struct Opts {\n    pub workers: usize,\n}\n";
        let f = run(
            &TEST_SPEC,
            &[
                ("crates/core/src/executor.rs", opts),
                ("crates/core/src/checkpoint.rs", GOOD_HEADER),
            ],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn missing_structs_fire() {
        let f = run(
            &TEST_SPEC,
            &[("crates/core/src/executor.rs", "pub struct Other;\n")],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("cannot be verified"));

        let f2 = run(
            &TEST_SPEC,
            &[
                ("crates/core/src/executor.rs", GOOD_OPTIONS),
                ("crates/core/src/checkpoint.rs", "pub struct Other;\n"),
            ],
        );
        assert!(f2.iter().any(|x| x.message.contains("run identity lost")));
    }

    #[test]
    fn absent_workspace_is_out_of_scope() {
        let f = run(&TEST_SPEC, &[("crates/gp/src/lib.rs", "pub fn f() {}\n")]);
        assert!(f.is_empty());
    }

    #[test]
    fn real_contract_spec_is_self_consistent() {
        // Every execution-only + mapped knob name is distinct, and the
        // pseudo-knob is present exactly once.
        let spec = DEFAULT_SPEC;
        let mut knobs: Vec<&str> = spec
            .identity_map
            .iter()
            .map(|(k, _)| *k)
            .chain(spec.execution_only.iter().copied())
            .collect();
        knobs.sort_unstable();
        let n = knobs.len();
        knobs.dedup();
        assert_eq!(n, knobs.len(), "duplicate knob declarations");
        assert_eq!(
            spec.identity_map
                .iter()
                .filter(|(k, _)| *k == "__run")
                .count(),
            1
        );
    }
}
