//! R4 — no print-family macros in library crates.
//!
//! Stdout/stderr belong to the `cli` and `bench` crates; a library that
//! prints corrupts machine-readable output and can't be silenced.

use crate::scan::SourceFile;
use crate::token::TokenKind;
use crate::{Finding, Rule};

/// Print-family macro names forbidden in library crates.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// R4: flags `name!` macro invocations token-exactly (a `writeln!` or a
/// `my_println!` never fires).
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R4PrintInLibrary;
    let mut last_line = 0usize;
    for (i, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || t.line == last_line
            || !PRINT_MACROS.contains(&t.text.as_str())
            || !file.tokens.get(i + 1).is_some_and(|b| b.is_punct("!"))
        {
            continue;
        }
        if file.token_exempt(t, rule.id()) {
            continue;
        }
        findings.push(super::finding_at(
            rule,
            file,
            t.line,
            format!(
                "`{}!` in library code; stdout/stderr are reserved for the cli and bench crates",
                t.text
            ),
        ));
        last_line = t.line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn fires_on_println_and_dbg() {
        let f = run("println!(\"progress: {pct}\");\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R4PrintInLibrary);
        assert_eq!(run("pub fn h() { dbg!(1); }\n").len(), 1);
    }

    #[test]
    fn token_boundaries() {
        assert!(run("writeln!(buf, \"x\").ok();\n").is_empty());
        assert!(run("my_println!(\"x\");\n").is_empty());
        // An ident named `print` without the bang is not a macro call.
        assert!(run("let print = 1; use_it(print);\n").is_empty());
        assert_eq!(run("eprintln!(\"warn\");\n").len(), 1);
    }

    #[test]
    fn test_code_and_allow_are_exempt() {
        assert!(run("#[cfg(test)]\nmod t {\n fn f() { println!(\"x\"); }\n}\n").is_empty());
        assert!(run("// analyze::allow(R4)\npub fn log() { eprintln!(\"x\"); }\n").is_empty());
    }
}
