//! R7 — hardware constraints are evaluated before objectives.
//!
//! The whole point of HW-IECI / HW-CWEI (HyperPower §III) is that the
//! power/memory constraint models are *cheap* (a dot product) while the
//! objective side (GP posterior, expected improvement) is *expensive*.
//! Any acquisition path that computes the objective before consulting the
//! constraint indicator both wastes that asymmetry and risks proposing
//! infeasible configurations. This rule checks, per function body, that
//! the first constraint call precedes the first objective call whenever
//! both appear.

use crate::scan::SourceFile;
use crate::token::{matching_close, TokenKind};
use crate::{Finding, Rule};

/// Cheap constraint-side calls (hardware indicator / probability).
const CONSTRAINT_CALLS: &[&str] = &[
    "predicted_feasible",
    "feasibility_probability",
    "acquisition_weight",
    "satisfied_by",
    "satisfied_by_measurements",
];

/// Expensive objective-side acquisition calls.
const OBJECTIVE_CALLS: &[&str] = &[
    "expected_improvement",
    "expected_improvement_at",
    "probability_of_improvement",
    "probability_of_improvement_at",
    "lower_confidence_bound",
    "lower_confidence_bound_at",
];

/// R7: within each `fn` body containing both call families, the first
/// constraint call must come before the first objective call.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R7ConstraintOrder;
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // Find the body `{` of this fn (a `;` first means no body).
        let mut open = None;
        let mut k = i + 1;
        while k < toks.len() {
            if toks[k].is_punct(";") {
                break;
            }
            if toks[k].is_punct("{") {
                open = Some(k);
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let close = matching_close(toks, open, "{", "}").unwrap_or(toks.len() - 1);

        let body = &toks[open..=close.min(toks.len() - 1)];
        let first_call = |names: &[&str]| {
            body.iter().enumerate().position(|(j, t)| {
                t.kind == TokenKind::Ident
                    && names.contains(&t.text.as_str())
                    && body.get(j + 1).is_some_and(|p| p.is_punct("("))
                    // A nested `fn name(` is a definition, not a call.
                    && !(j > 0 && body[j - 1].is_ident("fn"))
            })
        };
        if let (Some(c), Some(o)) = (first_call(CONSTRAINT_CALLS), first_call(OBJECTIVE_CALLS)) {
            if o < c {
                let tok = &body[o];
                if !file.token_exempt(tok, rule.id()) {
                    findings.push(super::finding_at(
                        rule,
                        file,
                        tok.line,
                        format!(
                            "`{}` (expensive objective) is evaluated before the hardware-constraint check in this function; compute the cheap constraint indicator first (HW-IECI/HW-CWEI)",
                            tok.text
                        ),
                    ));
                }
            }
        }
        i = close + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn objective_before_constraint_fires() {
        let src = "fn propose(&self) {\n    let ei = expected_improvement_at(m, s, best);\n    let w = self.acquisition_weight(z);\n    score(ei * w);\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R7ConstraintOrder);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn constraint_first_passes() {
        let src = "fn propose(&self) {\n    let w = self.acquisition_weight(z);\n    if w > 0.0 {\n        let ei = expected_improvement_at(m, s, best);\n    }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn single_family_functions_pass() {
        assert!(run("fn a(&self) { let w = self.predicted_feasible(z); }\n").is_empty());
        assert!(run("fn b(&self) { let e = expected_improvement_at(m, s, b); }\n").is_empty());
        assert!(run("fn c(&self) { plain(); }\n").is_empty());
    }

    #[test]
    fn definitions_are_not_calls() {
        // A file defining the objective helpers must not fire on itself.
        let src = "fn expected_improvement_at(m: f64, s: f64, best: f64) -> f64 { m + s + best }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn per_function_scoping() {
        // Objective in one fn, constraint in another: no ordering relation.
        let src = "fn a(&self) { expected_improvement_at(m, s, b); }\nfn b(&self) { self.predicted_feasible(z); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn escape_hatch_exempts() {
        let src = "fn propose(&self) {\n    // analyze::allow(R7)\n    let ei = expected_improvement_at(m, s, best);\n    let w = self.acquisition_weight(z);\n}\n";
        assert!(run(src).is_empty());
    }
}
