//! R18 — branch-divergent RNG draws in trace-affecting crates.
//!
//! With one shared RNG stream, two branch arms that draw a *different
//! number* of values leave the stream at different offsets depending on
//! which arm ran — every draw after the branch then depends on data, not
//! just on the seed. That is exactly how "same seed, different trace"
//! bugs are born (and why stream-aligned designs like rejection-free
//! sampling exist).
//!
//! The rule builds each function's CFG and, per [`crate::cfg::Branch`],
//! counts the draw calls (`.random(…)`, `.gen_range(…)`, `.sample(…)`,
//! …) in every arm — recursively: a nested branch whose own arms agree
//! contributes that agreed count; one whose arms disagree is reported at
//! its own line and makes the outer count incomparable (no cascading
//! noise). An `if` without `else` has an implicit zero-draw arm. Arms
//! that pass an RNG into an opaque call (an `rng`-ish identifier not in
//! receiver position) are skipped — the domain cannot count those draws.
//!
//! Warning severity: unequal counts are sometimes intended (e.g. a
//! branch that finishes a run early); `analyze::allow(R18)` on the
//! branch line records that intent.

use crate::cfg::{Branch, Cfg};
use crate::index::ItemIndex;
use crate::scan::SourceFile;
use crate::token::{Token, TokenKind};
use crate::{Finding, Rule};

use super::collections::TRACE_CRATES;
use super::finding_at;
use super::rng::CONSTRUCT_IDENTS;

/// Method names that advance an RNG stream by drawing from it.
pub const DRAW_METHODS: &[&str] = &[
    "random",
    "random_range",
    "random_bool",
    "random_ratio",
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
];

fn in_scope(rel_path: &str) -> bool {
    TRACE_CRATES.iter().any(|c| rel_path.starts_with(c))
}

/// Applies R18 over the workspace.
pub fn check(files: &[SourceFile], index: &ItemIndex, findings: &mut Vec<Finding>) {
    for file in files {
        let rel = file.rel_path.to_string_lossy().replace('\\', "/");
        if !in_scope(&rel) {
            continue;
        }
        for f in index
            .functions
            .iter()
            .filter(|f| f.file == rel && !f.in_test)
        {
            let Some(body) = f.body else { continue };
            // Constructor shims legitimately branch on which seeded root
            // to mint; their arms do not share a live stream yet.
            if CONSTRUCT_IDENTS.iter().any(|c| f.body_mentions(c)) {
                continue;
            }
            let cfg = Cfg::build(&file.tokens, body);
            for b in &cfg.branches {
                if file.line_allowed(b.line, Rule::R18BranchDivergentRng.id()) {
                    continue;
                }
                let Some(counts) = arm_draw_counts(&file.tokens, &cfg, b) else {
                    continue;
                };
                let mut all = counts.clone();
                if !b.has_else {
                    all.push(0); // the untaken path draws nothing
                }
                if all.iter().any(|&c| c != all[0]) && all.iter().any(|&c| c > 0) {
                    findings.push(finding_at(
                        Rule::R18BranchDivergentRng,
                        file,
                        b.line,
                        format!(
                            "branch arms draw unequal RNG counts ({}): the stream offset after this branch depends on data, not the seed; align the arms or carry analyze::allow(R18)",
                            describe(&all)
                        ),
                    ));
                }
            }
        }
    }
}

fn describe(counts: &[usize]) -> String {
    counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(" vs ")
}

/// Resolved draw counts per arm of `b`, or `None` when any arm is
/// incomparable (opaque RNG escape, or a nested disagreeing branch —
/// which reports at its own line).
fn arm_draw_counts(toks: &[Token], cfg: &Cfg, b: &Branch) -> Option<Vec<usize>> {
    b.arms
        .iter()
        .map(|&(lo, hi)| span_draws(toks, cfg, b, lo, hi))
        .collect()
}

/// Draw count of the token span `[lo, hi]`, counting nested branches by
/// their resolved count. `None` = incomparable.
fn span_draws(toks: &[Token], cfg: &Cfg, parent: &Branch, lo: usize, hi: usize) -> Option<usize> {
    // Nested branches strictly inside this span (maximal ones only —
    // grandchildren are counted within their parent).
    let mut children: Vec<&Branch> = cfg
        .branches
        .iter()
        .filter(|c| !std::ptr::eq(*c, parent) && c.span().0 >= lo && c.span().1 <= hi)
        .collect();
    children.retain(|c| {
        !cfg.branches.iter().any(|o| {
            !std::ptr::eq(o, parent)
                && !std::ptr::eq(o, *c)
                && o.span().0 >= lo
                && o.span().1 <= hi
                && o.span().0 <= c.span().0
                && c.span().1 <= o.span().1
                && (o.span() != c.span() || (o as *const Branch) < (*c as *const Branch))
        })
    });

    let mut total = 0usize;
    let inside_child = |k: usize| {
        children
            .iter()
            .any(|c| (c.span().0..=c.span().1).contains(&k))
    };

    let mut k = lo;
    while k <= hi && k < toks.len() {
        if inside_child(k) {
            k += 1;
            continue;
        }
        let t = &toks[k];
        if t.kind == TokenKind::Ident {
            let is_draw = DRAW_METHODS.contains(&t.text.as_str())
                && k > 0
                && toks[k - 1].is_punct(".")
                && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                // `gen` is also an ordinary word; require an rng-ish receiver.
                && (t.text != "gen" || k >= 2 && rng_ish(&toks[k - 2].text));
            if is_draw {
                total += 1;
            } else if rng_ish(&t.text) {
                let receiver = toks.get(k + 1).is_some_and(|n| n.is_punct("."))
                    && toks
                        .get(k + 2)
                        .is_some_and(|n| DRAW_METHODS.contains(&n.text.as_str()));
                if !receiver {
                    return None; // stream escapes into an opaque call
                }
            }
        }
        k += 1;
    }

    for c in children {
        let mut arm_counts = arm_draw_counts(toks, cfg, c)?;
        if !c.has_else {
            arm_counts.push(0);
        }
        if arm_counts.iter().any(|&n| n != arm_counts[0]) {
            return None; // the child is the finding, not us
        }
        total += arm_counts[0];
    }
    Some(total)
}

/// An identifier that names an RNG stream by convention.
fn rng_ish(name: &str) -> bool {
    name == "rng" || name.ends_with("_rng")
}

#[cfg(test)]
mod tests {
    use crate::analyze_sources;
    use crate::Rule;

    fn count(src: &str) -> usize {
        let report = analyze_sources(&[("crates/core/src/search.rs", src)]);
        report.findings_for(Rule::R18BranchDivergentRng).count()
    }

    #[test]
    fn unequal_if_else_draws_are_flagged() {
        let src = "pub fn step(&mut self, hot: bool) -> f64 {\n\
                   \x20   if hot {\n        self.rng.random_range(0.0..1.0)\n    } else {\n        self.rng.random_range(0.0..1.0) + self.rng.random_range(0.0..1.0)\n    }\n\
                   }\n";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn equal_draws_across_arms_are_fine() {
        let src = "pub fn step(&mut self, hot: bool) -> f64 {\n\
                   \x20   if hot {\n        self.rng.random_range(0.0..1.0)\n    } else {\n        self.rng.random_range(2.0..3.0)\n    }\n\
                   }\n";
        assert_eq!(count(src), 0);
    }

    #[test]
    fn if_without_else_that_draws_is_flagged() {
        let src = "pub fn maybe(&mut self, hot: bool) {\n\
                   \x20   if hot {\n        self.score = self.rng.random_range(0.0..1.0);\n    }\n\
                   }\n";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn branchless_draws_and_drawless_branches_are_fine() {
        let src = "pub fn all(&mut self, hot: bool) -> f64 {\n\
                   \x20   let x = self.rng.random_range(0.0..1.0);\n\
                   \x20   if hot { x } else { -x }\n\
                   }\n";
        assert_eq!(count(src), 0);
    }

    #[test]
    fn opaque_rng_escape_disarms_the_branch() {
        let src = "pub fn step(&mut self, hot: bool) -> f64 {\n\
                   \x20   if hot {\n        helper(&mut self.rng)\n    } else {\n        0.0\n    }\n\
                   }\n";
        assert_eq!(count(src), 0);
    }

    #[test]
    fn agreeing_nested_branch_counts_toward_its_parent() {
        // Inner if/else draws 1 on both arms; outer arms are 1 vs 1.
        let src = "pub fn step(&mut self, a: bool, b: bool) -> f64 {\n\
                   \x20   if a {\n        if b {\n            self.rng.random_range(0.0..1.0)\n        } else {\n            self.rng.random_range(1.0..2.0)\n        }\n    } else {\n        self.rng.random_range(2.0..3.0)\n    }\n\
                   }\n";
        assert_eq!(count(src), 0);
    }

    #[test]
    fn match_arms_with_unequal_draws_are_flagged() {
        let src = "pub fn pick(&mut self, m: Mode) -> f64 {\n\
                   \x20   match m {\n        Mode::Fast => self.rng.random_range(0.0..1.0),\n        Mode::Slow => self.rng.random_range(0.0..1.0) * self.rng.random_range(0.0..1.0),\n    }\n\
                   }\n";
        assert_eq!(count(src), 1);
    }

    #[test]
    fn constructor_shims_are_exempt() {
        let src = "pub fn mint(&self, hot: bool) -> Rng {\n\
                   \x20   if hot {\n        Rng::seed_from_u64(self.seed)\n    } else {\n        Rng::seed_from_u64(self.seed ^ 1)\n    }\n\
                   }\n";
        assert_eq!(count(src), 0);
    }

    #[test]
    fn allow_marker_on_branch_line_suppresses() {
        let src = "pub fn maybe(&mut self, hot: bool) {\n\
                   \x20   // early exit draws nothing by design. analyze::allow(R18)\n\
                   \x20   if hot {\n        self.score = self.rng.random_range(0.0..1.0);\n    }\n\
                   }\n";
        // Marker line is the line above the `if`; line_allowed covers it.
        assert_eq!(count(src), 0);
    }
}
