//! R17 — discarded `Result`s and lossy unit casts in trace-affecting
//! crates.
//!
//! Two flow-sensitive leaks of correctness information:
//!
//! 1. **`let _ = fallible()`** — binding a workspace call's `Result` to
//!    `_` throws the error away without even a `.ok()` to mark intent.
//!    In `core`/`gpu-sim` a swallowed `Err` means a sample silently
//!    missing from the trace. The callee is resolved with the same
//!    confidence discipline as the call graph (qualified `Type::f` via
//!    impl ownership, plain names only when workspace-unique) and
//!    flagged only when its declared return type is a `Result`.
//! 2. **unit-dropping arithmetic** — a local proved (by reaching
//!    definitions) to hold a `units::` newtype (`Watts`, `Joules`,
//!    `Seconds`, `Mebibytes`) whose raw `.0` projection is added,
//!    subtracted or compared against the `.0` of a *different* unit.
//!    Multiplication and division legitimately change dimension (R6's
//!    convention) and stay exempt.

use crate::cfg::Cfg;
use crate::dataflow::{AbstractValue, Dataflow};
use crate::index::{FnItem, ItemIndex};
use crate::scan::SourceFile;
use crate::token::TokenKind;
use crate::{Finding, Rule};

use super::collections::TRACE_CRATES;
use super::finding_at;

/// The `units::` newtypes tracked through `.0` projections.
pub const UNIT_TYPES: &[&str] = &["Watts", "Joules", "Seconds", "Mebibytes"];

fn in_scope(rel_path: &str) -> bool {
    TRACE_CRATES.iter().any(|c| rel_path.starts_with(c))
}

/// Applies R17 over the workspace.
pub fn check(files: &[SourceFile], index: &ItemIndex, findings: &mut Vec<Finding>) {
    for file in files {
        let rel = file.rel_path.to_string_lossy().replace('\\', "/");
        if !in_scope(&rel) {
            continue;
        }
        check_discarded_results(file, &rel, index, findings);
        for f in index
            .functions
            .iter()
            .filter(|f| f.file == rel && !f.in_test)
        {
            if let Some(body) = f.body {
                check_unit_drops(file, f, body, findings);
            }
        }
    }
}

/// R17a: `let _ = call(…)` where the callee confidently resolves to a
/// workspace function returning `Result`.
fn check_discarded_results(
    file: &SourceFile,
    rel: &str,
    index: &ItemIndex,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if !(toks[k].is_ident("let")
            && toks.get(k + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct("=")))
        {
            continue;
        }
        let t = &toks[k];
        if file.line_in_test(t.line) || file.line_allowed(t.line, Rule::R17DiscardedResult.id()) {
            continue;
        }
        // The call head on the right-hand side: the last ident before the
        // first `(`, with an optional `Type::` qualifier.
        let mut head = None;
        let mut j = k + 3;
        while j + 1 < toks.len() && !toks[j].is_punct(";") {
            if toks[j].kind == TokenKind::Ident && toks[j + 1].is_punct("(") {
                let qualifier =
                    (j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokenKind::Ident)
                        .then(|| toks[j - 2].text.clone());
                head = Some((toks[j].text.clone(), qualifier));
                break;
            }
            j += 1;
        }
        let Some((name, qualifier)) = head else {
            continue;
        };
        let Some(callee) = resolve(index, &name, qualifier.as_deref()) else {
            continue;
        };
        if returns_result(callee) {
            findings.push(finding_at(
                Rule::R17DiscardedResult,
                file,
                t.line,
                format!(
                    "`let _ =` discards the Result of `{name}` in {rel}; handle the error or mark intent with `.ok()`"
                ),
            ));
        }
    }
}

/// Whether the declared return type is a `Result` (head token, so
/// aliases like `crate::Result<T>` count too).
fn returns_result(f: &FnItem) -> bool {
    f.ret
        .split_whitespace()
        .next()
        .is_some_and(|head| head == "Result" || f.ret.starts_with("Result <"))
        || f.ret.split(' ').any(|t| t == "Result")
}

/// Resolves a call head with the call graph's confidence rules.
fn resolve<'a>(index: &'a ItemIndex, name: &str, qualifier: Option<&str>) -> Option<&'a FnItem> {
    if let Some(q) = qualifier {
        return index
            .functions
            .iter()
            .find(|f| f.name == name && f.owner.as_deref() == Some(q));
    }
    let mut candidates = index.functions.iter().filter(|f| f.name == name);
    let first = candidates.next()?;
    candidates.next().is_none().then_some(first)
}

/// R17b: `.0` of a proved unit newtype mixed additively/comparatively
/// with the `.0` of a different unit.
fn check_unit_drops(
    file: &SourceFile,
    f: &FnItem,
    body: (usize, usize),
    findings: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let cfg = Cfg::build(toks, body);
    let df = Dataflow::solve(&cfg, toks, &f.params);

    let proj_unit = |k: usize| -> Option<(usize, &'static str)> {
        // `v . 0` starting at ident index k → (index after projection, unit).
        let v = toks.get(k)?;
        if v.kind != TokenKind::Ident
            || !toks.get(k + 1).is_some_and(|t| t.is_punct("."))
            || !toks
                .get(k + 2)
                .is_some_and(|t| t.kind == TokenKind::Int && t.text == "0")
        {
            return None;
        }
        let defs = df.reaching(&cfg, &v.text, k);
        if defs.is_empty() {
            return None;
        }
        let mut unit = None;
        for d in defs {
            let u = match &d.value {
                AbstractValue::Ctor(c) => UNIT_TYPES.iter().find(|u| *u == c).copied(),
                AbstractValue::Param(ty) => UNIT_TYPES
                    .iter()
                    .find(|u| ty.split(' ').any(|t| t == **u))
                    .copied(),
                _ => None,
            }?;
            match unit {
                None => unit = Some(u),
                Some(prev) if prev != u => return None, // conflicting proofs
                Some(_) => {}
            }
        }
        unit.map(|u| (k + 3, u))
    };

    for k in body.0 + 1..body.1 {
        let Some((after, left_unit)) = proj_unit(k) else {
            continue;
        };
        let Some(op) = toks.get(after) else { continue };
        let mixing = matches!(
            op.text.as_str(),
            "+" | "-" | "<" | "<=" | ">" | ">=" | "==" | "!="
        ) && op.kind == TokenKind::Punct;
        if !mixing {
            continue;
        }
        let Some((_, right_unit)) = proj_unit(after + 1) else {
            continue;
        };
        if left_unit == right_unit {
            continue;
        }
        let t = &toks[k];
        if file.token_exempt(t, Rule::R17DiscardedResult.id()) {
            continue;
        }
        findings.push(finding_at(
            Rule::R17DiscardedResult,
            file,
            t.line,
            format!(
                "`.0` drops the units: `{}` holds {left_unit} but is combined with {right_unit} via `{}`; keep the newtypes (or convert explicitly)",
                t.text, op.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_sources;
    use crate::Rule;

    #[test]
    fn discarded_result_from_workspace_call_is_flagged() {
        let src = "pub fn persist(&self) -> Result<(), Error> { Ok(()) }\n\
                   pub fn tick(&self) {\n    let _ = persist(&self);\n}\n";
        let report = analyze_sources(&[("crates/core/src/driver.rs", src)]);
        assert_eq!(
            report.findings_for(Rule::R17DiscardedResult).count(),
            1,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn discarding_a_non_result_is_fine() {
        let src = "pub fn measure(&self) -> Watts { Watts(1.0) }\n\
                   pub fn tick(&self) {\n    let _ = measure(&self);\n}\n";
        let report = analyze_sources(&[("crates/core/src/driver.rs", src)]);
        assert_eq!(report.findings_for(Rule::R17DiscardedResult).count(), 0);
    }

    #[test]
    fn discarded_result_outside_trace_crates_is_fine() {
        let src = "pub fn persist() -> Result<(), Error> { Ok(()) }\n\
                   pub fn tick() {\n    let _ = persist();\n}\n";
        let report = analyze_sources(&[("crates/gp/src/lib.rs", src)]);
        assert_eq!(report.findings_for(Rule::R17DiscardedResult).count(), 0);
    }

    #[test]
    fn mixed_unit_projection_arithmetic_is_flagged() {
        let src = "pub fn energy_report(&self) -> f64 {\n\
                   \x20   let p = Watts(2.0);\n\
                   \x20   let t = Seconds(3.0);\n\
                   \x20   p.0 + t.0\n\
                   }\n";
        let report = analyze_sources(&[("crates/gpu-sim/src/analysis.rs", src)]);
        assert_eq!(
            report.findings_for(Rule::R17DiscardedResult).count(),
            1,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn same_unit_and_dimension_changing_ops_are_fine() {
        let src = "pub fn combine(&self) -> f64 {\n\
                   \x20   let a = Watts(2.0);\n\
                   \x20   let b = Watts(3.0);\n\
                   \x20   let t = Seconds(4.0);\n\
                   \x20   a.0 + b.0 + a.0 * t.0\n\
                   }\n";
        let report = analyze_sources(&[("crates/gpu-sim/src/analysis.rs", src)]);
        assert_eq!(
            report.findings_for(Rule::R17DiscardedResult).count(),
            0,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn unit_params_are_tracked_too() {
        let src = "pub fn check(p: Watts, limit: Seconds) -> bool {\n    p.0 < limit.0\n}\n";
        let report = analyze_sources(&[("crates/core/src/constraints.rs", src)]);
        assert_eq!(
            report.findings_for(Rule::R17DiscardedResult).count(),
            1,
            "{:?}",
            report.findings
        );
    }
}
