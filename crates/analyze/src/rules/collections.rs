//! R9 — no unordered collections in trace-affecting crates.
//!
//! The workspace's headline guarantee is byte-identical traces for a
//! given (seed, committed prefix). `HashMap`/`HashSet` iteration order is
//! randomized per process (std's SipHash keys), so *any* iteration over
//! them — directly, via `drain`, or by collecting keys — is a latent
//! nondeterminism that only shows up when someone adds a loop later.
//! Rather than guessing which uses iterate, the trace-affecting crates
//! ban the types outright: use `BTreeMap`/`BTreeSet` (deterministic
//! order, and every key in this workspace is already `Ord`), or sort
//! explicitly before iterating and carry an `analyze::allow(R9)` marker.
//!
//! `--fix` rewrites the unambiguous cases: when a file uses none of the
//! hash-only APIs (`with_capacity`, `drain`, …) the type tokens are
//! renamed mechanically (see [`crate::fix`]).

use crate::scan::SourceFile;
use crate::token::TokenKind;
use crate::{Finding, Rule};

/// Path prefixes of the trace-affecting crates: everything that runs
/// between seeding and trace commit. `linalg`/`nn`/`gp` compute pure
/// functions of their inputs and may use hashing internally; `data`
/// generates datasets with sequential loops and is checked by R1/R8
/// instead. The serving layer replays committed traces, so it is held to
/// the same ordering discipline.
pub const TRACE_CRATES: &[&str] = &["crates/core/", "crates/gpu-sim/", "crates/server/"];

/// The banned unordered collection types.
pub const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Hash-only APIs whose presence makes the mechanical `HashMap →
/// BTreeMap` rewrite unsafe (no BTree equivalent, or different
/// semantics). A file using any of these must be migrated by hand.
pub const HASH_ONLY_APIS: &[&str] = &[
    "with_capacity",
    "reserve",
    "capacity",
    "hasher",
    "with_hasher",
    "shrink_to",
    "shrink_to_fit",
    "drain",
    "extract_if",
    "raw_entry",
];

/// Whether R9 applies to this workspace-relative path.
pub fn in_scope(rel_path: &str) -> bool {
    TRACE_CRATES.iter().any(|p| rel_path.starts_with(p))
}

/// R9: flags every live `HashMap`/`HashSet` token in trace-affecting
/// crates (one finding per line).
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R9UnorderedCollections;
    let rel = file.rel_path.to_string_lossy().replace('\\', "/");
    if !in_scope(&rel) {
        return;
    }
    let mut last_line = 0;
    for t in &file.tokens {
        if t.kind != TokenKind::Ident || !UNORDERED_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        if t.line == last_line || file.token_exempt(t, rule.id()) {
            continue;
        }
        last_line = t.line;
        let ordered = if t.text == "HashMap" {
            "BTreeMap"
        } else {
            "BTreeSet"
        };
        findings.push(super::finding_at(
            rule,
            file,
            t.line,
            format!(
                "`{}` in a trace-affecting crate: iteration order is randomized per process; use `{ordered}` (or sort before iterating and mark `analyze::allow(R9)`)",
                t.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_at(path: &str, text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from(path), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn hashmap_in_core_fires_once_per_line() {
        let f = run_at(
            "crates/core/src/executor.rs",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u64, u64>) -> HashMap<u64, u64> { m.clone() }\n",
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::R9UnorderedCollections));
    }

    #[test]
    fn hashset_in_gpu_sim_fires() {
        let f = run_at(
            "crates/gpu-sim/src/fault.rs",
            "use std::collections::HashSet;\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("BTreeSet"));
    }

    #[test]
    fn btree_collections_pass() {
        assert!(run_at(
            "crates/core/src/executor.rs",
            "use std::collections::{BTreeMap, BTreeSet};\n"
        )
        .is_empty());
    }

    #[test]
    fn non_trace_crates_are_out_of_scope() {
        assert!(run_at(
            "crates/gp/src/kernel.rs",
            "use std::collections::HashMap;\n"
        )
        .is_empty());
        assert!(run_at(
            "crates/data/src/generator.rs",
            "use std::collections::HashMap;\n"
        )
        .is_empty());
    }

    #[test]
    fn test_code_and_allow_are_exempt() {
        assert!(run_at(
            "crates/core/src/methods.rs",
            "#[cfg(test)]\nmod t {\n    use std::collections::HashSet;\n}\n"
        )
        .is_empty());
        assert!(run_at(
            "crates/core/src/methods.rs",
            "// analyze::allow(R9)\nuse std::collections::HashMap;\n"
        )
        .is_empty());
    }
}
