//! R6 — unit-of-measure discipline on `f64` quantities.
//!
//! HyperPower's constraint pipeline moves physical quantities (watts,
//! mebibytes, seconds, joules) through plain `f64`s at several layers.
//! Two defenses keep `P(z) ≤ P_B` / `M(z) ≤ M_B` checks honest:
//!
//! 1. the typed newtypes in `hyperpower_linalg::units` (`Watts`,
//!    `Mebibytes`, `Seconds`, `Joules`) make mixups a *compile* error at
//!    API boundaries, and
//! 2. this rule enforces naming discipline where raw `f64`s remain
//!    (regression targets, report rows): a declared `f64` whose name says
//!    it is a physical quantity must carry a unit suffix (`power_w`,
//!    `latency_s`, `memory_bytes`, …), and arithmetic or comparison that
//!    mixes two *different* declared units (`power_w + latency_s`,
//!    `m_mb <= m_bytes`) is flagged.
//!
//! Multiplication and division are exempt from the mixing check — they
//! legitimately change dimension (`power_w * latency_s` is energy).

use crate::scan::SourceFile;
use crate::token::{Token, TokenKind};
use crate::{Finding, Rule};

/// The dimension a unit suffix declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    Power,
    Energy,
    Time,
    Memory,
    Bandwidth,
    Compute,
    Frequency,
    /// Recognised as "has a suffix" but never participates in mixing
    /// checks (ratios, percentages, element counts).
    Dimensionless,
}

/// Recognised unit suffixes (the final `_`-separated segment of a name).
const SUFFIXES: &[(&str, Dim)] = &[
    ("w", Dim::Power),
    ("mw", Dim::Power),
    ("kw", Dim::Power),
    ("watts", Dim::Power),
    ("j", Dim::Energy),
    ("kj", Dim::Energy),
    ("mj", Dim::Energy),
    ("joules", Dim::Energy),
    ("s", Dim::Time),
    ("ms", Dim::Time),
    ("us", Dim::Time),
    ("ns", Dim::Time),
    ("secs", Dim::Time),
    ("seconds", Dim::Time),
    ("hours", Dim::Time),
    ("bytes", Dim::Memory),
    ("kb", Dim::Memory),
    ("kib", Dim::Memory),
    ("mb", Dim::Memory),
    ("mib", Dim::Memory),
    ("gb", Dim::Memory),
    ("gib", Dim::Memory),
    ("gbps", Dim::Bandwidth),
    ("mbps", Dim::Bandwidth),
    ("flops", Dim::Compute),
    ("gflops", Dim::Compute),
    ("tflops", Dim::Compute),
    ("hz", Dim::Frequency),
    ("khz", Dim::Frequency),
    ("mhz", Dim::Frequency),
    ("ghz", Dim::Frequency),
    ("pct", Dim::Dimensionless),
    ("frac", Dim::Dimensionless),
    ("ratio", Dim::Dimensionless),
    ("elems", Dim::Dimensionless),
    ("count", Dim::Dimensionless),
];

/// Name segments that mark a declaration as a physical quantity. Matched
/// as whole snake-case segments, so `lifetime` and `timestamp` never hit
/// the `time` stem.
const QUANTITY_STEMS: &[&str] = &[
    "power",
    "powers",
    "energy",
    "energies",
    "latency",
    "latencies",
    "memory",
    "watt",
    "watts",
    "joule",
    "joules",
    "time",
    "duration",
    "durations",
    "runtime",
    "bandwidth",
];

/// The suffix `--fix` appends for each stem (workspace canonical units:
/// watts, joules, seconds, bytes, Gbit/s).
const STEM_FIX_SUFFIX: &[(&str, &str)] = &[
    ("power", "_w"),
    ("powers", "_w"),
    ("watt", "_w"),
    ("watts", "_w"),
    ("energy", "_j"),
    ("energies", "_j"),
    ("joule", "_j"),
    ("joules", "_j"),
    ("latency", "_s"),
    ("latencies", "_s"),
    ("time", "_s"),
    ("duration", "_s"),
    ("durations", "_s"),
    ("runtime", "_s"),
    ("memory", "_bytes"),
    ("bandwidth", "_gbps"),
];

/// Looks up the declared unit of a snake-case name: the suffix string and
/// its dimension, from the final `_`-segment (or the whole name).
fn declared_unit(name: &str) -> Option<(&'static str, Dim)> {
    let last = name.rsplit('_').next().unwrap_or(name);
    SUFFIXES
        .iter()
        .find(|(s, _)| *s == last)
        .map(|(s, d)| (*s, *d))
}

/// Whether any snake-case segment of `name` is a quantity stem.
fn quantity_stem(name: &str) -> Option<&'static str> {
    name.split('_')
        .find_map(|seg| QUANTITY_STEMS.iter().find(|s| **s == seg).copied())
}

/// The suffix `--fix` would append to an unsuffixed quantity name, if the
/// stem maps to a canonical unit. Used by the autofix engine.
pub(crate) fn suggested_suffix(name: &str) -> Option<&'static str> {
    let stem = quantity_stem(name)?;
    STEM_FIX_SUFFIX
        .iter()
        .find(|(s, _)| *s == stem)
        .map(|(_, suf)| *suf)
}

/// Whether `name` needs a unit suffix and lacks one: a lowercase
/// snake-case quantity name whose final segment is not a recognised unit.
/// Shared with the autofix engine.
pub(crate) fn missing_suffix(name: &str) -> bool {
    !name.chars().any(|c| c.is_ascii_uppercase())
        && quantity_stem(name).is_some()
        && declared_unit(name).is_none()
}

/// R6 entry point: declaration, return-type, and unit-mixing checks.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    check_declarations(file, findings);
    check_returns(file, findings);
    check_mixing(file, findings);
}

/// `power: f64` — a field, param or binding declared as a bare `f64`
/// whose name says "physical quantity" but carries no unit.
fn check_declarations(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R6UnitDiscipline;
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let typed_f64 = toks.get(i + 1).is_some_and(|c| c.is_punct(":"))
            && toks.get(i + 2).is_some_and(|ty| ty.is_ident("f64"));
        if !typed_f64 || !missing_suffix(&t.text) || file.token_exempt(t, rule.id()) {
            continue;
        }
        let suggestion = suggested_suffix(&t.text)
            .map(|s| format!(" (e.g. `{}{}`)", t.text, s))
            .unwrap_or_default();
        findings.push(super::finding_at(
            rule,
            file,
            t.line,
            format!(
                "`{}: f64` is a physical quantity without a unit suffix; name the unit{} or use a typed newtype (`Watts`, `Mebibytes`, `Seconds`, `Joules`)",
                t.text, suggestion
            ),
        ));
    }
}

/// `fn total_time(…) -> f64` — a function returning a bare `f64` whose
/// name says "physical quantity" but carries no unit.
fn check_returns(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R6UnitDiscipline;
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct("->") && toks.get(i + 1).is_some_and(|ty| ty.is_ident("f64"))) {
            continue;
        }
        // Walk back to the `fn` of this signature; stop at any statement
        // boundary so we never cross into a previous item (closures and
        // `fn`-pointer types have no reachable `fn` and are skipped).
        let Some(name) = (0..i).rev().find_map(|j| {
            let t = &toks[j];
            if t.is_punct("{") || t.is_punct("}") || t.is_punct(";") || t.is_punct("=") {
                return Some(None); // boundary: not a named fn signature
            }
            if t.is_ident("fn") {
                return Some(toks.get(j + 1).filter(|n| n.kind == TokenKind::Ident));
            }
            None
        }) else {
            continue;
        };
        let Some(name) = name else { continue };
        if !missing_suffix(&name.text) || file.token_exempt(name, rule.id()) {
            continue;
        }
        let suggestion = suggested_suffix(&name.text)
            .map(|s| format!(" (e.g. `{}{}`)", name.text, s))
            .unwrap_or_default();
        findings.push(super::finding_at(
            rule,
            file,
            name.line,
            format!(
                "`fn {}` returns a bare `f64` physical quantity without a unit suffix; name the unit{} or return a typed newtype",
                name.text, suggestion
            ),
        ));
    }
}

/// Additive/comparison operators that require both operands to be in the
/// same unit. `*` and `/` are absent: they change dimension legitimately.
const SAME_UNIT_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];

/// `power_w + latency_s`, `m_mb <= m_bytes` — additive or comparison
/// arithmetic whose operands declare *different* units.
fn check_mixing(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R6UnitDiscipline;
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let op = &toks[i];
        if op.kind != TokenKind::Punct || !SAME_UNIT_OPS.contains(&op.text.as_str()) {
            continue;
        }
        let Some(lhs) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
            continue;
        };
        if lhs.kind != TokenKind::Ident {
            continue;
        }
        // Precedence guard: if either operand is itself a factor of a
        // product/quotient (`a_s + flops / throughput_flops`), the
        // adjacent ident's unit is not the operand's unit — skip.
        let lhs_in_product = i
            .checked_sub(2)
            .and_then(|j| toks.get(j))
            .is_some_and(|p| p.is_punct("*") || p.is_punct("/"));
        let Some(rhs_off) = rhs_operand_ident(&toks[i + 1..]) else {
            continue;
        };
        let rhs = &toks[i + 1 + rhs_off];
        let rhs_in_product = toks
            .get(i + 1 + rhs_off + 1)
            .is_some_and(|p| p.is_punct("*") || p.is_punct("/"));
        if lhs_in_product || rhs_in_product {
            continue;
        }
        let (Some((ls, ld)), Some((rs, rd))) = (declared_unit(&lhs.text), declared_unit(&rhs.text))
        else {
            continue;
        };
        if ld == Dim::Dimensionless || rd == Dim::Dimensionless || ls == rs {
            continue;
        }
        if file.token_exempt(op, rule.id()) {
            continue;
        }
        let kind = if ld == rd {
            "mixed scales of the same dimension"
        } else {
            "mixed dimensions"
        };
        findings.push(super::finding_at(
            rule,
            file,
            op.line,
            format!(
                "`{} {} {}` {}: `_{ls}` vs `_{rs}`; convert explicitly or use typed newtypes",
                lhs.text, op.text, rhs.text, kind
            ),
        ));
    }
}

/// The identifier carrying the unit on the right of an operator: skips
/// over `self`, `.`, `(`, `&` and unary `-`/`*` so `self.latency_s` and
/// `(total_bytes)` resolve to the suffixed name. Returns the offset into
/// `rest`.
fn rhs_operand_ident(rest: &[Token]) -> Option<usize> {
    for (off, t) in rest.iter().enumerate().take(5) {
        match t.kind {
            TokenKind::Ident if t.text != "self" => return Some(off),
            TokenKind::Ident => continue, // `self`
            TokenKind::Punct if matches!(t.text.as_str(), "." | "(" | "&" | "-" | "*" | "::") => {
                continue
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn unsuffixed_quantity_field_fires() {
        let f = run("pub struct R { pub power: f64 }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("power_w"));
    }

    #[test]
    fn suffixed_and_typed_fields_pass() {
        assert!(run("pub struct R { pub power_w: f64, pub memory_mib: f64 }\n").is_empty());
        assert!(run("pub struct R { pub power: Watts }\n").is_empty());
        assert!(run("pub struct R { pub memory: Option<f64> }\n").is_empty());
    }

    #[test]
    fn typed_margin_fields_pass_but_bare_margins_fire() {
        // The adaptive safety margins on `Budgets` are typed newtypes —
        // exactly the shape this rule exists to steer raw `f64`s toward.
        assert!(
            run("pub struct B { pub power_margin: Watts, pub memory_margin: Mebibytes }\n")
                .is_empty()
        );
        let f = run("pub struct B { pub power_margin: f64 }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("power_margin"));
        assert_eq!(run("pub struct B { pub memory_margin: f64 }\n").len(), 1);
    }

    #[test]
    fn stems_match_whole_segments_only() {
        // `lifetime` must not hit the `time` stem; `timestamp_s` is fine.
        assert!(run("fn f(lifetime: f64) {}\n").is_empty());
        assert!(run("fn f(timestamp_s: f64) {}\n").is_empty());
        assert_eq!(run("fn f(total_time: f64) {}\n").len(), 1);
    }

    #[test]
    fn unsuffixed_param_and_return_fire() {
        assert_eq!(run("fn f(latency: f64) {}\n").len(), 1);
        let f = run("fn total_time(&self) -> f64 { 0.0 }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("total_time_s"));
    }

    #[test]
    fn suffixed_return_and_nonquantity_pass() {
        assert!(run("fn total_time_s(&self) -> f64 { 0.0 }\n").is_empty());
        assert!(run("fn utilization(&self) -> f64 { 0.0 }\n").is_empty());
        // `-> Option<f64>` is not a bare f64 return.
        assert!(run("fn duration(&self) -> Option<f64> { None }\n").is_empty());
    }

    #[test]
    fn closures_and_fn_pointer_types_are_skipped() {
        assert!(run("let g = |x: u32| -> f64 { f(x) };\n").is_empty());
        assert!(run("type F = fn(u32) -> f64;\n").is_empty());
    }

    #[test]
    fn mixing_dimensions_fires() {
        let f = run("let x = power_w + latency_s;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("mixed dimensions"));
    }

    #[test]
    fn mixing_scales_fires() {
        let f = run("if used_mb <= budget_bytes { go(); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("mixed scales"));
    }

    #[test]
    fn mixing_through_self_and_parens() {
        assert_eq!(run("let e = self.power_w - self.latency_s;\n").len(), 1);
        assert_eq!(run("let e = power_w + (latency_s);\n").len(), 1);
    }

    #[test]
    fn same_unit_and_conversions_pass() {
        assert!(run("let p = idle_power_w + dynamic_power_w;\n").is_empty());
        // Multiplication/division change dimension legitimately.
        assert!(run("let e_j = power_w * latency_s;\n").is_empty());
        assert!(run("let w = energy_j / latency_s;\n").is_empty());
        // Comparisons against literals or unsuffixed names don't fire.
        assert!(run("if power_w > 0.0 { go(); }\n").is_empty());
        assert!(run("if power_w > limit { go(); }\n").is_empty());
    }

    #[test]
    fn precedence_guard_skips_products() {
        // `flops / throughput_flops` *is* seconds; the ident adjacent to
        // `+` does not carry the operand's unit.
        assert!(run("let t = overhead_s + flops / throughput_flops;\n").is_empty());
        assert!(run("let t = overhead_s + epoch_secs * n;\n").is_empty());
        assert!(run("let t = n * epoch_secs + overhead_s;\n").is_empty());
    }

    #[test]
    fn dimensionless_suffixes_never_mix() {
        assert!(run("let r = speedup_ratio + wait_frac;\n").is_empty());
        assert!(run("if util_pct < batch_elems { go(); }\n").is_empty());
    }

    #[test]
    fn generics_do_not_false_positive() {
        assert!(run("fn f(x: Vec<f64>, y: Option<Watts>) {}\n").is_empty());
    }

    #[test]
    fn escape_hatch_and_tests_exempt() {
        assert!(run("// analyze::allow(R6)\nfn f(power: f64) {}\n").is_empty());
        assert!(run("#[cfg(test)]\nmod t {\n fn f(power: f64) {}\n}\n").is_empty());
    }

    #[test]
    fn fix_suggestions() {
        assert_eq!(suggested_suffix("power"), Some("_w"));
        assert_eq!(suggested_suffix("total_time"), Some("_s"));
        assert_eq!(suggested_suffix("peak_memory"), Some("_bytes"));
        assert_eq!(suggested_suffix("utilization"), None);
    }
}
