//! R2 — no raw float equality and no panicking `partial_cmp` on
//! objectives.
//!
//! Acquisition scores and constraint slacks are floats; `==` against a
//! non-zero literal is bit-exact and brittle, and
//! `partial_cmp(..).unwrap()` panics the search loop on the first NaN.
//! `f64::total_cmp` (or an explicit tolerance) is the sanctioned
//! alternative. Exact-zero comparisons are exempt — they test "was this
//! field ever written", which is well-defined.

use crate::scan::SourceFile;
use crate::token::{matching_close, TokenKind};
use crate::{Finding, Rule};

/// R2: token-based float-comparison checks.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R2RawFloatEq;
    let mut last_line = 0usize;
    for (i, t) in file.tokens.iter().enumerate() {
        if t.line == last_line || file.token_exempt(t, rule.id()) {
            continue;
        }

        // `partial_cmp(…).unwrap()` / `.expect(…)`: find the call's close
        // paren in the token stream and look at what chains off it.
        if t.is_ident("partial_cmp") && file.tokens.get(i + 1).is_some_and(|p| p.is_punct("(")) {
            if let Some(close) = matching_close(&file.tokens, i + 1, "(", ")") {
                let chained_panic = file.tokens.get(close + 1).is_some_and(|d| d.is_punct("."))
                    && file
                        .tokens
                        .get(close + 2)
                        .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"));
                if chained_panic {
                    findings.push(super::finding_at(
                        rule,
                        file,
                        t.line,
                        "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` for objective/constraint ordering".to_string(),
                    ));
                    last_line = t.line;
                    continue;
                }
            }
        }

        // `x == 0.5` / `0.5 != x`: either operand a non-zero float literal.
        if t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
            let operand = [i.checked_sub(1), Some(i + 1)]
                .into_iter()
                .flatten()
                .filter_map(|j| file.tokens.get(j))
                .find(|o| o.kind == TokenKind::Float && !is_zero_literal(&o.text));
            if let Some(lit) = operand {
                findings.push(super::finding_at(
                    rule,
                    file,
                    t.line,
                    format!(
                        "raw `==`/`!=` against float literal `{}` is bit-exact and brittle; compare with a tolerance or use `total_cmp` (exact-zero checks are exempt)",
                        lit.text
                    ),
                ));
                last_line = t.line;
            }
        }
    }
}

/// True when a float-literal token spells exactly zero (`0.0`, `0.`,
/// `0.0f32`, `0e0`, …).
fn is_zero_literal(text: &str) -> bool {
    let t = text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .replace('_', "");
    t.trim_end_matches('.')
        .parse::<f64>()
        .is_ok_and(|v| v == 0.0) // covers -0.0 too
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn fires_on_partial_cmp_unwrap() {
        let f = run("xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R2RawFloatEq);
    }

    #[test]
    fn fires_on_partial_cmp_expect() {
        assert_eq!(run("let o = a.partial_cmp(&b).expect(\"nan\");\n").len(), 1);
    }

    #[test]
    fn partial_cmp_without_panic_is_fine() {
        assert!(run("if let Some(o) = a.partial_cmp(&b) { use_it(o); }\n").is_empty());
        // `unwrap_or` is not `unwrap`.
        assert!(run("let o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);\n").is_empty());
    }

    #[test]
    fn fires_on_nonzero_float_literal_eq() {
        let f = run("if x == 0.5 { y(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(run("if 1.0 == x { y(); }\n").len(), 1);
        assert_eq!(run("if x != 2.5f64 { y(); }\n").len(), 1);
    }

    #[test]
    fn exempts_exact_zero_and_integers() {
        assert!(run("if x == 0.0 { y(); }\n").is_empty());
        assert!(run("if x != 0.0f32 { y(); }\n").is_empty());
        assert!(run("if n == 10 { y(); }\n").is_empty());
        assert!(run("if x <= 0.5 { y(); }\n").is_empty());
        assert!(run("match x { 0 => a, _ => b }\n").is_empty());
    }

    #[test]
    fn escape_hatch_and_tests_exempt() {
        assert!(run("// analyze::allow(R2)\nif x == 0.5 { y(); }\n").is_empty());
        assert!(run("#[cfg(test)]\nmod t {\n fn f() { assert!(x == 0.5); }\n}\n").is_empty());
    }
}
