//! R8 — RNGs are constructed only at declared seeded roots and threaded
//! `&mut` everywhere else.
//!
//! Reproducibility in this workspace hinges on a single discipline: each
//! top-level component derives its RNG once from an explicit seed (a
//! *seeded root*), and every helper below it borrows that stream as
//! `&mut StdRng`. A helper that constructs its own RNG — even seeded —
//! forks the stream and silently decouples replay from the recorded seed;
//! a helper that takes `StdRng` by value or `&StdRng` either splits or
//! can't advance the stream.

use crate::scan::SourceFile;
use crate::token::TokenKind;
use crate::{Finding, Rule};

/// Files allowed to construct and own RNG state. Everything else must
/// borrow `&mut StdRng`.
pub const RNG_ROOTS: &[&str] = &[
    "crates/core/src/drift.rs",
    "crates/core/src/driver.rs",
    "crates/core/src/executor.rs",
    "crates/core/src/profiler.rs",
    "crates/core/src/scenario.rs",
    // The ask–tell core derives per-lease jitter from the run seed.
    "crates/core/src/study.rs",
    "crates/data/src/generator.rs",
    "crates/gpu-sim/src/fault.rs",
    "crates/gpu-sim/src/sensor.rs",
    // Seeded corpus generation for the linalg hot-path benches: the bench
    // workload is pinned by BENCH_linalg.json, so the module owns its RNG.
    "crates/linalg/src/corpus.rs",
    "crates/nn/src/layers/dropout.rs",
    "crates/nn/src/network.rs",
    "crates/nn/src/sim.rs",
    // The chaos harness derives its entire fault schedule from one seed.
    "crates/server/src/chaos.rs",
    // Supervision derives probation/parole jitter from one seed.
    "crates/server/src/health.rs",
    // The server installs studies, each of which owns the RNG for its
    // journaled run seed.
    "crates/server/src/server.rs",
];

/// Seeded-construction methods that only roots may call.
pub(crate) const CONSTRUCT_IDENTS: &[&str] = &["seed_from_u64", "from_seed", "from_rng"];

/// R8: outside the declared roots, flags RNG construction and non-`&mut`
/// RNG ownership.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R8RngThreading;
    let rel = file.rel_path.to_string_lossy().replace('\\', "/");
    if RNG_ROOTS.contains(&rel.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if CONSTRUCT_IDENTS.contains(&t.text.as_str()) {
            if !file.token_exempt(t, rule.id()) {
                findings.push(super::finding_at(
                    rule,
                    file,
                    t.line,
                    format!(
                        "`{}` constructs an RNG outside a declared seeded root; accept `&mut StdRng` from the caller instead (roots: see rules::rng::RNG_ROOTS)",
                        t.text
                    ),
                ));
            }
            continue;
        }
        if t.text == "StdRng" {
            // How is the type used? Look at the token immediately before.
            let prev = i.checked_sub(1).and_then(|j| toks.get(j));
            let problem = match prev {
                // `rng: StdRng` (owned param/field), `-> StdRng`,
                // `Option<StdRng>`: holds or transfers an owned stream.
                Some(p) if p.is_punct(":") || p.is_punct("->") || p.is_punct("<") => {
                    Some("owns an RNG stream")
                }
                // `&StdRng`: a shared borrow can never advance the stream.
                Some(p) if p.is_punct("&") => Some("takes `&StdRng` (cannot advance the stream)"),
                // `&mut StdRng`, `use …::StdRng`, `StdRng::…` paths: fine.
                _ => None,
            };
            if let Some(what) = problem {
                if !file.token_exempt(t, rule.id()) {
                    findings.push(super::finding_at(
                        rule,
                        file,
                        t.line,
                        format!(
                            "{what} outside a declared seeded root; thread the root's stream as `&mut StdRng`"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_at(path: &str, text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from(path), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    fn run(text: &str) -> Vec<Finding> {
        run_at("crates/gp/src/sampler.rs", text)
    }

    #[test]
    fn construction_outside_root_fires() {
        let f = run("let mut rng = StdRng::seed_from_u64(7);\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R8RngThreading);
    }

    #[test]
    fn construction_inside_root_is_fine() {
        let f = run_at(
            "crates/gpu-sim/src/sensor.rs",
            "let mut rng = StdRng::seed_from_u64(7);\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn owned_and_shared_rng_params_fire() {
        assert_eq!(run("fn f(rng: StdRng) {}\n").len(), 1);
        assert_eq!(run("fn f(rng: &StdRng) {}\n").len(), 1);
        assert_eq!(run("fn f() -> StdRng { make() }\n").len(), 1);
        assert_eq!(run("struct S { rng: Option<StdRng> }\n").len(), 1);
    }

    #[test]
    fn mut_borrow_and_imports_pass() {
        assert!(run("fn f(rng: &mut StdRng) { step(rng); }\n").is_empty());
        assert!(run("use rand::rngs::StdRng;\n").is_empty());
        assert!(run("fn f(rng: &mut StdRng) -> f64 { draw(rng) }\n").is_empty());
    }

    #[test]
    fn test_code_and_allow_are_exempt() {
        assert!(
            run("#[cfg(test)]\nmod t {\n fn f() { StdRng::seed_from_u64(1); }\n}\n").is_empty()
        );
        assert!(run("// analyze::allow(R8)\nfn f(rng: StdRng) {}\n").is_empty());
    }
}
