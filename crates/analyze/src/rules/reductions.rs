//! R14 — order-sensitive float reductions outside blessed helpers.
//!
//! Float addition is not associative: `a + (b + c) ≠ (a + b) + c` in
//! general, so an accumulating `+=` inside a loop bakes the *iteration
//! order* into the result. That is exactly the pattern a future parallel
//! refactor (rayon-style chunking, SIMD lanes — ROADMAP item 2) silently
//! breaks: same elements, different order, different bits, golden traces
//! diverge. In the trace-affecting crates, loop accumulations must go
//! through a blessed ordered-reduction helper
//! (`hyperpower_linalg::vector::sum_ordered`), which pins the summation
//! order in one audited place that any SIMD work must preserve.
//!
//! Detection is deliberately narrow to stay false-positive-free: an
//! identifier declared `f64` in the same file (via `: f64` or
//! `let [mut] x = <float literal>`), compound-assigned (`+=`/`-=`)
//! inside a `for` loop body. Integer counters and straight-line float
//! updates (EWMA-style `self.x += y` outside loops) are untouched.

use crate::scan::SourceFile;
use crate::token::{matching_close, TokenKind};
use crate::{Finding, Rule};

/// Path prefixes where the rule applies — the same trace-affecting
/// crates as R9. `linalg` and `nn` are the blessed home of fixed-order
/// kernels (their loops *define* the canonical order), and `data`'s
/// generator loops run sequentially before any trace exists. The serving
/// layer replays committed traces, so it is held to the same discipline.
pub const TRACE_CRATES: &[&str] = &["crates/core/", "crates/gpu-sim/", "crates/server/"];

/// R14: float compound assignment inside `for` bodies of trace-affecting
/// crates.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rule = Rule::R14OrderSensitiveReduction;
    let rel = file.rel_path.to_string_lossy().replace('\\', "/");
    if !TRACE_CRATES.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    let toks = &file.tokens;

    // Identifiers declared f64 anywhere in the file: `name: f64` (params,
    // fields, typed lets) or `let [mut] name = <float literal>`.
    let mut float_vars: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(":"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("f64"))
        {
            float_vars.push(&t.text);
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).map(|n| n.kind) == Some(TokenKind::Ident)
                && toks.get(j + 1).is_some_and(|n| n.is_punct("="))
                && toks.get(j + 2).map(|n| n.kind) == Some(TokenKind::Float)
            {
                float_vars.push(&toks[j].text);
            }
        }
    }
    if float_vars.is_empty() {
        return;
    }

    // `for` loop body token ranges. The body is the first `{` after the
    // `for` keyword (closure braces in iterator chains are rare enough in
    // this codebase that the approximation holds; a miss only widens the
    // range, which can only over-report inside what is still a loop).
    let mut loop_bodies: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct("{") {
            if toks[j].is_punct(";") {
                break; // `impl Trait for Type;`-ish: not a loop
            }
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct("{") {
            if let Some(close) = matching_close(toks, j, "{", "}") {
                loop_bodies.push((j, close));
            }
        }
    }
    if loop_bodies.is_empty() {
        return;
    }

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let compound = toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct("+=") || n.is_punct("-="));
        if !compound
            || !float_vars.contains(&t.text.as_str())
            || !loop_bodies
                .iter()
                .any(|(open, close)| *open < i && i < *close)
            || file.token_exempt(t, rule.id())
        {
            continue;
        }
        findings.push(super::finding_at(
            rule,
            file,
            t.line,
            format!(
                "order-sensitive float reduction: `{} +=` in a loop bakes iteration order into the result; sum through `hyperpower_linalg::vector::sum_ordered` (the blessed ordered reduction) so parallel/SIMD refactors cannot reorder it",
                t.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_at(path: &str, text: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from(path), text);
        let mut f = Vec::new();
        check(&file, &mut f);
        f
    }

    #[test]
    fn float_accumulation_in_for_loop_fires() {
        let f = run_at(
            "crates/gpu-sim/src/analysis.rs",
            "fn f(xs: &[f64]) -> f64 {\n    let mut total = 0.0;\n    for x in xs { total += x; }\n    total\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R14OrderSensitiveReduction);
        assert!(f[0].message.contains("sum_ordered"));
    }

    #[test]
    fn typed_f64_and_minus_assign_fire() {
        let f = run_at(
            "crates/core/src/profiler.rs",
            "fn f(xs: &[f64]) -> f64 {\n    let mut acc: f64 = 0.0;\n    for x in xs { acc -= x; }\n    acc\n}\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn integer_counters_pass() {
        assert!(run_at(
            "crates/core/src/driver.rs",
            "fn f(xs: &[u64]) -> u64 {\n    let mut n = 0;\n    for _x in xs { n += 1; }\n    n\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn float_update_outside_loops_passes() {
        // EWMA-style straight-line updates are order-independent per call.
        assert!(run_at(
            "crates/core/src/drift.rs",
            "struct S { sum: f64 }\nimpl S {\n    fn observe(&mut self, x: f64) { self.sum += x; }\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn blessed_crates_are_out_of_scope() {
        assert!(run_at(
            "crates/linalg/src/vector.rs",
            "pub fn sum_ordered(xs: &[f64]) -> f64 {\n    let mut total = 0.0;\n    for x in xs { total += x; }\n    total\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn test_code_and_allow_are_exempt() {
        assert!(run_at(
            "crates/core/src/recovery.rs",
            "#[cfg(test)]\nmod t {\n    fn f(xs: &[f64]) -> f64 {\n        let mut e = 0.0;\n        for x in xs { e += x; }\n        e\n    }\n}\n",
        )
        .is_empty());
        assert!(run_at(
            "crates/core/src/recovery.rs",
            "fn f(xs: &[f64]) -> f64 {\n    let mut e = 0.0;\n    // analyze::allow(R14)\n    for x in xs { e += x; }\n    e\n}\n",
        )
        .is_empty());
    }
}
