//! R15 — panic-path: no panicking construct reachable from the executor
//! commit path.
//!
//! A panic between "task result computed" and "sample committed to the
//! trace" can tear a run down mid-commit, which is exactly the window
//! kill-and-resume exactness cannot tolerate. This rule finds the
//! *commit roots* — non-test functions in [`super::concurrency::COMMIT_PATHS`]
//! files that push onto the samples trace — closes over the confident
//! call graph in the *callee* direction (everything a commit root can
//! execute), and inside that closure flags:
//!
//! - **unchecked indexing** `seq[i]`, *unless* the reaching-definitions
//!   engine proves every definition of `i` ranges over `0..seq.len()`
//!   (the canonical safe loop shape). Checked forms (`get`, iterators)
//!   never match.
//! - **non-literal integer division/remainder** whose divisor has
//!   integer evidence and may be zero (a literal `0`, a tracked
//!   `len()`, a loop index). Float division and divisors the domain
//!   cannot type are left alone — R15 only fires on what it can argue.
//! - **`unreachable!` / `todo!` / `unimplemented!`** — on the commit
//!   path, "this cannot happen" is a determinism claim that belongs in
//!   an `analyze::allow(R15)` justification, not a panic.
//!
//! The call graph under-approximates (only confident edges), so the
//! closure can miss dynamic dispatch — R15 trades recall for a zero
//! false-positive budget on the hot path, like R10/R11.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dataflow::{AbstractValue, Dataflow};
use crate::graph::CallGraph;
use crate::index::{FnItem, ItemIndex};
use crate::scan::SourceFile;
use crate::token::{matching_close, Token, TokenKind};
use crate::{Finding, Rule};

use super::concurrency::COMMIT_PATHS;
use super::finding_at;

/// Macros that are unconditional panics when reached.
const PANIC_MACROS: &[&str] = &["unreachable", "todo", "unimplemented"];

/// A commit root: a live function in a commit-path file that writes the
/// samples trace.
fn is_commit_root(f: &FnItem) -> bool {
    COMMIT_PATHS.contains(&f.file.as_str())
        && !f.in_test
        && f.body_mentions("samples")
        && f.body_mentions("push")
}

/// Forward closure over the call graph: every function a root can reach.
fn reachable_from_roots(index: &ItemIndex, graph: &CallGraph) -> Vec<bool> {
    let n = index.functions.len();
    let mut reach = vec![false; n];
    let mut work: Vec<usize> = (0..n)
        .filter(|&i| is_commit_root(&index.functions[i]))
        .collect();
    for &r in &work {
        reach[r] = true;
    }
    while let Some(f) = work.pop() {
        for e in graph.edges.iter().filter(|e| e.caller == f) {
            if !reach[e.callee] && !index.functions[e.callee].in_test {
                reach[e.callee] = true;
                work.push(e.callee);
            }
        }
    }
    reach
}

/// Applies R15 over the workspace.
pub fn check(
    files: &[SourceFile],
    index: &ItemIndex,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    let reach = reachable_from_roots(index, graph);
    let by_path: std::collections::BTreeMap<String, &SourceFile> = files
        .iter()
        .map(|f| (f.rel_path.to_string_lossy().replace('\\', "/"), f))
        .collect();

    // De-duplicate sites shared by several reachable fns in one file.
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();

    for (i, f) in index.functions.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let Some(body) = f.body else { continue };
        let Some(src) = by_path.get(&f.file) else {
            continue;
        };
        let cfg = Cfg::build(&src.tokens, body);
        let df = Dataflow::solve(&cfg, &src.tokens, &f.params);
        check_body(src, &cfg, &df, body, &mut |line, excerpt_line, msg| {
            if seen.insert((f.file.clone(), line, msg.clone())) {
                findings.push(finding_at(Rule::R15PanicPath, src, excerpt_line, msg));
            }
        });
    }
}

/// Scans one reachable body for panic sites; `emit(line, line, message)`.
fn check_body(
    src: &SourceFile,
    cfg: &Cfg,
    df: &Dataflow,
    body: (usize, usize),
    emit: &mut dyn FnMut(usize, usize, String),
) {
    let toks = &src.tokens;
    for k in body.0 + 1..body.1 {
        let t = &toks[k];
        if src.token_exempt(t, Rule::R15PanicPath.id()) {
            continue;
        }
        // Unconditional panic macros.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
        {
            emit(
                t.line,
                t.line,
                format!(
                    "`{}!` is reachable from the executor commit path; prove the invariant or carry analyze::allow(R15)",
                    t.text
                ),
            );
            continue;
        }
        // Unchecked indexing `seq[…]`.
        if t.is_punct("[") && k > 0 && toks[k - 1].kind == TokenKind::Ident {
            let seq = &toks[k - 1];
            if crate::dataflow::is_df_keyword(&seq.text) {
                continue;
            }
            let Some(close) = matching_close(toks, k, "[", "]") else {
                continue;
            };
            if close == k + 2 && toks[k + 1].kind == TokenKind::Ident {
                let idx = &toks[k + 1];
                let defs = df.reaching(cfg, &idx.text, k + 1);
                let proved = !defs.is_empty()
                    && defs
                        .iter()
                        .all(|d| d.value == AbstractValue::RangeIndexOf(seq.text.clone()));
                if proved {
                    continue;
                }
            }
            emit(
                t.line,
                t.line,
                format!(
                    "unchecked index into `{}` on the commit path; use .get()/iterators or prove the bound (loop over 0..{}.len()) or carry analyze::allow(R15)",
                    seq.text, seq.text
                ),
            );
            continue;
        }
        // Integer division / remainder by a possibly-zero value.
        if (t.is_punct("/") || t.is_punct("%")) && k > 0 {
            if let Some(msg) = divisor_hazard(toks, k, cfg, df) {
                emit(t.line, t.line, msg);
            }
        }
    }
}

/// Whether the `/` or `%` at `k` has a divisor the domain can argue may
/// be zero. Returns the finding message, or `None` when safe/unknown.
fn divisor_hazard(toks: &[Token], k: usize, cfg: &Cfg, df: &Dataflow) -> Option<String> {
    let op = &toks[k].text;
    // Float context on either side disarms the check (float division
    // yields inf/NaN, not a panic; R5 guards cover those).
    if toks[k - 1].kind == TokenKind::Float
        || toks.get(k + 1).is_some_and(|t| t.kind == TokenKind::Float)
    {
        return None;
    }
    let rhs = toks.get(k + 1)?;
    if rhs.kind == TokenKind::Int {
        return if rhs.text.chars().all(|c| c == '0' || c == '_') {
            Some(format!("literal zero divisor in `{op}` on the commit path"))
        } else {
            None
        };
    }
    if rhs.kind != TokenKind::Ident || crate::dataflow::is_df_keyword(&rhs.text) {
        return None;
    }
    // A bare variable divisor (not a call/field chain).
    if toks
        .get(k + 2)
        .is_some_and(|n| n.is_punct(".") || n.is_punct("::") || n.is_punct("("))
    {
        return None;
    }
    let defs = df.reaching(cfg, &rhs.text, k + 1);
    if defs.is_empty() || !defs.iter().all(|d| d.value.is_integer_evidence()) {
        return None; // cannot type the divisor — stay silent
    }
    let may_be_zero = defs.iter().any(|d| match &d.value {
        AbstractValue::Int(v) => *v == 0,
        AbstractValue::LenOf(_) | AbstractValue::RangeIndexOf(_) => true,
        _ => false,
    });
    may_be_zero.then(|| {
        format!(
            "integer `{op}` by `{}` on the commit path may divide by zero (a reaching definition is 0 or a length); guard it or carry analyze::allow(R15)",
            rhs.text
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_sources;

    const COMMIT_FN: &str = "pub fn commit(&mut self) {\n    self.samples.push(self.next());\n    helper(&self.tasks, self.cursor);\n}\n";

    fn executor(body: &str) -> String {
        format!("{COMMIT_FN}{body}")
    }

    #[test]
    fn unchecked_index_in_reachable_helper_is_flagged() {
        let src = executor(
            "pub fn helper(tasks: &[u64], cursor: usize) -> u64 {\n    tasks[cursor]\n}\n",
        );
        let report = analyze_sources(&[("crates/core/src/executor.rs", &src)]);
        assert_eq!(
            report.findings_for(Rule::R15PanicPath).count(),
            1,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn proved_range_loop_index_is_safe() {
        let src = executor(
            "pub fn helper(tasks: &[u64], cursor: usize) -> u64 {\n    let mut acc = 0;\n    for i in 0..tasks.len() {\n        acc += tasks[i];\n    }\n    acc + cursor as u64\n}\n",
        );
        let report = analyze_sources(&[("crates/core/src/executor.rs", &src)]);
        assert_eq!(
            report.findings_for(Rule::R15PanicPath).count(),
            0,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn unreachable_macro_on_commit_path_is_flagged() {
        let src = executor(
            "pub fn helper(tasks: &[u64], cursor: usize) -> u64 {\n    if cursor > tasks.len() { unreachable!() } else { 0 }\n}\n",
        );
        let report = analyze_sources(&[("crates/core/src/executor.rs", &src)]);
        assert_eq!(report.findings_for(Rule::R15PanicPath).count(), 1);
    }

    #[test]
    fn unreferenced_function_is_not_on_the_commit_path() {
        let src = executor("pub fn elsewhere(xs: &[u64]) -> u64 { xs[0] }\n");
        // `elsewhere` is never called from the commit root.
        let src = src.replace("helper(&self.tasks, self.cursor);", "");
        let report = analyze_sources(&[("crates/core/src/executor.rs", &src)]);
        assert_eq!(
            report.findings_for(Rule::R15PanicPath).count(),
            0,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn possibly_zero_divisor_is_flagged_and_nonzero_literal_is_not() {
        let src = executor(
            "pub fn helper(tasks: &[u64], cursor: usize) -> usize {\n    let n = tasks.len();\n    let half = cursor / 2;\n    half + cursor % n\n}\n",
        );
        let report = analyze_sources(&[("crates/core/src/executor.rs", &src)]);
        let msgs: Vec<_> = report
            .findings_for(Rule::R15PanicPath)
            .map(|f| f.message.clone())
            .collect();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs[0].contains("% ") || msgs[0].contains("`%`"),
            "{msgs:?}"
        );
    }

    #[test]
    fn allow_marker_suppresses_and_registers_usage() {
        let src = executor(
            "pub fn helper(tasks: &[u64], cursor: usize) -> u64 {\n    // known in-bounds: cursor is clamped by the scheduler. analyze::allow(R15)\n    tasks[cursor]\n}\n",
        );
        let report = analyze_sources(&[("crates/core/src/executor.rs", &src)]);
        assert_eq!(report.findings_for(Rule::R15PanicPath).count(), 0);
        // ... and the consumed marker is not stale (no R16 either).
        assert_eq!(report.findings_for(Rule::R16StaleAllow).count(), 0);
    }
}
