//! R19 — the per-crate determinism certificate.
//!
//! After every other rule has run, the analyzer knows, for each
//! trace-affecting crate, whether the five determinism facts the
//! reproduction depends on actually hold: no wall-clock flow (R1/R10),
//! all RNG construction rooted (R8/R11), no unordered collections (R9),
//! a panic-free commit path (R15), and checkpoint-header completeness
//! (R13). [`generate`] serialises that knowledge into a byte-deterministic
//! `determinism-certificate.json`, committed at the repo root; [`check`]
//! (rule R19) structurally compares the committed certificate against
//! what the current analysis proves and reports every divergence — a
//! regressed fact, a stale entry, a missing certificate — as a finding.
//! Tier-1 additionally byte-compares the committed file (see
//! `tests/static_analysis.rs`), so the certificate ratchets exactly like
//! `analyze-baseline.json`.
//!
//! A fact's status is `proved` when no backing rule fired in the crate
//! and no allow marker for a backing rule was consumed,
//! `proved-with-N-allowances` when markers absorbed would-be findings,
//! and `refuted-by-N-findings` otherwise. Allowance counts are part of
//! the certificate on purpose: adding an escape hatch on the commit path
//! is a reviewable event, not a silent one.

use std::collections::BTreeMap;

use crate::rules::finding_for_file;
use crate::scan::SourceFile;
use crate::{Finding, Rule};

/// The committed certificate's repo-root file name.
pub const CERTIFICATE_FILE: &str = "determinism-certificate.json";

/// Schema identifier for forward compatibility.
pub const CERT_SCHEMA: &str = "hyperpower-determinism-certificate/v1";

/// Trace-affecting crates the certificate covers (workspace-relative
/// directory prefixes, no trailing slash).
pub const CERT_CRATES: &[&str] = &["crates/core", "crates/gpu-sim", "crates/server"];

/// The proved facts, in emission order, with their backing rules.
pub const FACTS: &[(&str, &[&str])] = &[
    ("no-wall-clock-flow", &["R1", "R10"]),
    ("all-rng-rooted", &["R8", "R11"]),
    ("no-unordered-collections", &["R9"]),
    ("panic-free-commit-path", &["R15"]),
    ("header-complete", &["R13"]),
];

/// One crate's analyzed certificate content.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CrateFacts {
    files: usize,
    /// fact name → status string.
    statuses: BTreeMap<String, String>,
}

/// crate prefix → facts. Both the freshly-analyzed state and the parsed
/// committed certificate normalize to this shape for comparison.
type CertMap = BTreeMap<String, CrateFacts>;

fn crate_of(rel_path: &str) -> Option<&'static str> {
    CERT_CRATES
        .iter()
        .copied()
        .find(|c| rel_path.starts_with(&format!("{c}/")))
}

/// Computes the certificate content from the analyzed files and the
/// findings of every rule that ran before R19.
fn compute(files: &[SourceFile], findings: &[Finding]) -> CertMap {
    let mut map = CertMap::new();
    for &krate in CERT_CRATES {
        let crate_files: Vec<&SourceFile> = files
            .iter()
            .filter(|f| crate_of(&f.rel_path.to_string_lossy().replace('\\', "/")) == Some(krate))
            .collect();
        if crate_files.is_empty() {
            continue;
        }
        let mut statuses = BTreeMap::new();
        for &(fact, rules) in FACTS {
            let refutations = findings
                .iter()
                .filter(|f| rules.contains(&f.rule.id()) && crate_of(&f.file) == Some(krate))
                .count();
            let allowances: usize = crate_files
                .iter()
                .map(|f| {
                    f.markers
                        .iter()
                        .filter(|m| !f.line_in_test(m.line))
                        .flat_map(|m| m.ids.iter().map(move |id| (m.line, id)))
                        .filter(|(line, id)| {
                            rules.contains(&id.as_str()) && f.allow_used(*line, id)
                        })
                        .count()
                })
                .sum();
            let status = if refutations > 0 {
                format!("refuted-by-{refutations}-findings")
            } else if allowances > 0 {
                format!("proved-with-{allowances}-allowances")
            } else {
                "proved".to_string()
            };
            statuses.insert(fact.to_string(), status);
        }
        map.insert(
            krate.to_string(),
            CrateFacts {
                files: crate_files.len(),
                statuses,
            },
        );
    }
    map
}

/// Serialises the certificate for the analyzed files. Returns `None` when
/// no trace-affecting crate was scanned (nothing to certify). The output
/// is byte-deterministic: fixed key order, fixed fact order, no
/// timestamps.
pub fn generate(files: &[SourceFile], findings: &[Finding]) -> Option<String> {
    let map = compute(files, findings);
    if map.is_empty() {
        return None;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{CERT_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"provenance\": \"{}\",\n",
        crate::baseline::PROVENANCE
    ));
    out.push_str("  \"crates\": [\n");
    let crates: Vec<_> = CERT_CRATES
        .iter()
        .filter(|c| map.contains_key(**c))
        .collect();
    for (ci, &&krate) in crates.iter().enumerate() {
        let facts = &map[krate];
        out.push_str("    {\n");
        out.push_str(&format!("      \"crate\": \"{krate}\",\n"));
        out.push_str(&format!("      \"files\": {},\n", facts.files));
        out.push_str("      \"facts\": [\n");
        for (fi, &(fact, rules)) in FACTS.iter().enumerate() {
            let rule_list = rules
                .iter()
                .map(|r| format!("\"{r}\""))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "        {{\"fact\": \"{fact}\", \"rules\": [{rule_list}], \"status\": \"{}\"}}{}\n",
                facts.statuses[fact],
                if fi + 1 < FACTS.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if ci + 1 < crates.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    Some(out)
}

/// Parses a committed certificate. Line-oriented, like the baseline
/// parser: resilient to whitespace, strict about the fields it needs.
fn parse(text: &str) -> Option<CertMap> {
    let mut schema_ok = false;
    let mut map = CertMap::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        if let Some(s) = extract_str(line, "schema") {
            schema_ok = s == CERT_SCHEMA;
        }
        if let Some(c) = extract_str(line, "crate") {
            map.insert(
                c.clone(),
                CrateFacts {
                    files: 0,
                    statuses: BTreeMap::new(),
                },
            );
            current = Some(c);
        }
        if let Some(n) = extract_usize(line, "files") {
            if let Some(c) = &current {
                map.get_mut(c)?.files = n;
            }
        }
        if let (Some(fact), Some(status)) = (extract_str(line, "fact"), extract_str(line, "status"))
        {
            let c = current.as_ref()?;
            map.get_mut(c)?.statuses.insert(fact, status);
        }
    }
    if schema_ok {
        Some(map)
    } else {
        None
    }
}

/// R19: structurally compares the committed certificate (if any) against
/// the freshly analyzed facts and reports every divergence.
pub fn check(
    committed: Option<&str>,
    files: &[SourceFile],
    findings_so_far: &[Finding],
    findings: &mut Vec<Finding>,
) {
    let analyzed = compute(files, findings_so_far);
    if analyzed.is_empty() {
        return;
    }
    let Some(text) = committed else {
        findings.push(finding_for_file(
            Rule::R19DeterminismCertificate,
            CERTIFICATE_FILE,
            format!(
                "missing determinism certificate: {} trace-affecting crate(s) analyzed but no {} committed (run `--write-certificate`)",
                analyzed.len(),
                CERTIFICATE_FILE
            ),
        ));
        return;
    };
    let Some(parsed) = parse(text) else {
        findings.push(finding_for_file(
            Rule::R19DeterminismCertificate,
            CERTIFICATE_FILE,
            format!("unparseable determinism certificate (expected schema {CERT_SCHEMA})"),
        ));
        return;
    };
    for (krate, facts) in &analyzed {
        let Some(committed_facts) = parsed.get(krate) else {
            findings.push(finding_for_file(
                Rule::R19DeterminismCertificate,
                CERTIFICATE_FILE,
                format!("certificate has no entry for analyzed crate {krate}"),
            ));
            continue;
        };
        if committed_facts.files != facts.files {
            findings.push(finding_for_file(
                Rule::R19DeterminismCertificate,
                CERTIFICATE_FILE,
                format!(
                    "{krate}: certificate covers {} files but {} were analyzed",
                    committed_facts.files, facts.files
                ),
            ));
        }
        for &(fact, _) in FACTS {
            let fresh = &facts.statuses[fact];
            match committed_facts.statuses.get(fact) {
                None => findings.push(finding_for_file(
                    Rule::R19DeterminismCertificate,
                    CERTIFICATE_FILE,
                    format!("{krate}: fact {fact} missing from certificate (analysis: {fresh})"),
                )),
                Some(stale) if stale != fresh => findings.push(finding_for_file(
                    Rule::R19DeterminismCertificate,
                    CERTIFICATE_FILE,
                    format!(
                        "{krate}: fact {fact} regressed or stale — certificate says {stale}, analysis yields {fresh}"
                    ),
                )),
                Some(_) => {}
            }
        }
    }
    for krate in parsed.keys() {
        if !analyzed.contains_key(krate) {
            findings.push(finding_for_file(
                Rule::R19DeterminismCertificate,
                CERTIFICATE_FILE,
                format!("certificate entry for {krate} but no files of that crate were analyzed"),
            ));
        }
    }
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    rest.find('"').map(|end| rest[..end].to_string())
}

fn extract_usize(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(path), text)
    }

    fn finding(rule: Rule, path: &str) -> Finding {
        Finding {
            rule,
            file: path.to_string(),
            line: 1,
            excerpt: String::new(),
            message: String::new(),
        }
    }

    #[test]
    fn generation_is_byte_deterministic_and_skips_non_trace_crates() {
        let files = vec![
            file("crates/core/src/lib.rs", "pub fn f() {}\n"),
            file("crates/gp/src/lib.rs", "pub fn g() {}\n"),
        ];
        let a = generate(&files, &[]).unwrap();
        let b = generate(&files, &[]).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"crate\": \"crates/core\""));
        assert!(!a.contains("crates/gp"));
        assert!(a.contains("\"status\": \"proved\""));
    }

    #[test]
    fn findings_refute_the_backing_fact() {
        let files = vec![file("crates/core/src/lib.rs", "pub fn f() {}\n")];
        let findings = vec![
            finding(Rule::R9UnorderedCollections, "crates/core/src/lib.rs"),
            finding(Rule::R9UnorderedCollections, "crates/core/src/lib.rs"),
        ];
        let cert = generate(&files, &findings).unwrap();
        assert!(cert.contains(
            "\"fact\": \"no-unordered-collections\", \"rules\": [\"R9\"], \"status\": \"refuted-by-2-findings\""
        ));
    }

    #[test]
    fn used_allowances_are_counted() {
        let f = file(
            "crates/core/src/lib.rs",
            "// analyze::allow(R9)\nuse std::collections::HashMap;\n",
        );
        // Simulate the rule consuming the marker.
        assert!(f.line_allowed(2, "R9"));
        let cert = generate(std::slice::from_ref(&f), &[]).unwrap();
        assert!(
            cert.contains("\"status\": \"proved-with-1-allowances\""),
            "{cert}"
        );
    }

    #[test]
    fn roundtrip_matches_and_mutation_is_flagged() {
        let files = vec![file("crates/core/src/lib.rs", "pub fn f() {}\n")];
        let cert = generate(&files, &[]).unwrap();
        let mut out = Vec::new();
        check(Some(&cert), &files, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");

        let mutated = cert.replace(
            "\"fact\": \"panic-free-commit-path\", \"rules\": [\"R15\"], \"status\": \"proved\"",
            "\"fact\": \"panic-free-commit-path\", \"rules\": [\"R15\"], \"status\": \"refuted-by-1-findings\"",
        );
        let mut out = Vec::new();
        check(Some(&mutated), &files, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::R19DeterminismCertificate);
        assert!(out[0].message.contains("panic-free-commit-path"));
    }

    #[test]
    fn missing_certificate_is_a_finding_only_when_trace_crates_present() {
        let trace = vec![file("crates/core/src/lib.rs", "pub fn f() {}\n")];
        let mut out = Vec::new();
        check(None, &trace, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing determinism certificate"));

        let lib_only = vec![file("crates/gp/src/lib.rs", "pub fn g() {}\n")];
        let mut out = Vec::new();
        check(None, &lib_only, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stale_crate_entry_is_flagged() {
        let files = vec![
            file("crates/core/src/lib.rs", "pub fn f() {}\n"),
            file("crates/gpu-sim/src/lib.rs", "pub fn g() {}\n"),
        ];
        let cert = generate(&files, &[]).unwrap();
        let core_only = vec![file("crates/core/src/lib.rs", "pub fn f() {}\n")];
        let mut out = Vec::new();
        check(Some(&cert), &core_only, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("crates/gpu-sim"));
    }
}
