//! SARIF 2.1.0 output.
//!
//! Emits the minimal valid subset of the Static Analysis Results
//! Interchange Format that code-review UIs (GitHub code scanning, VS
//! Code SARIF viewers) consume: one run, the rule catalogue under
//! `tool.driver.rules`, and one result per finding with a physical
//! location. Output is deterministic: findings arrive pre-sorted from
//! [`crate::analyze_workspace`] and rules are emitted in id order.

use crate::{json_escape, Report, Rule};

/// The SARIF schema this writer targets.
const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Serialises a report as a SARIF 2.1.0 log.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"hyperpower-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://arxiv.org/abs/1712.02446\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}\n",
            rule.id(),
            rule.slug(),
            json_escape(rule.description()),
            rule.severity().as_str(),
            if i + 1 < Rule::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let rule_index = Rule::ALL
            .iter()
            .position(|r| *r == f.rule)
            .unwrap_or_default();
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", f.rule.id()));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str(&format!(
            "          \"level\": \"{}\",\n",
            f.rule.severity().as_str()
        ));
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            json_escape(&f.message)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}}, \"region\": {{\"startLine\": {}}}}}}}]\n",
            json_escape(&f.file),
            f.line.max(1)
        ));
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn sarif_contains_rules_and_results() {
        let report = Report {
            findings: vec![Finding {
                rule: Rule::R6UnitDiscipline,
                file: "crates/a/src/lib.rs".to_string(),
                line: 12,
                excerpt: "let power: f64 = 1.0;".to_string(),
                message: "needs a \"unit\" suffix".to_string(),
            }],
            files_scanned: 1,
        };
        let s = to_sarif(&report);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"R6\""));
        assert!(s.contains("\"startLine\": 12"));
        assert!(s.contains("needs a \\\"unit\\\" suffix"));
        // Severity is per-rule: R6 findings are errors, and the rule
        // catalogue carries R14's warning default.
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"defaultConfiguration\": {\"level\": \"warning\"}"));
        // One rule descriptor per rule.
        assert_eq!(s.matches("\"shortDescription\"").count(), Rule::ALL.len());
        // Cheap well-formedness smoke checks.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_report_is_valid() {
        let report = Report {
            findings: vec![],
            files_scanned: 0,
        };
        let s = to_sarif(&report);
        assert!(s.contains("\"results\": [\n      ]"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
