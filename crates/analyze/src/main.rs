//! Command-line entry point for the workspace static-analysis pass.
//!
//! Usage:
//!
//! ```text
//! hyperpower-analyze [--format text|json|sarif] [--fix] [--include-self]
//!                    [--baseline <path>] [--write-baseline]
//!                    [--write-certificate] [root]
//! ```
//!
//! When a baseline exists (`analyze-baseline.json` at the workspace root,
//! or the `--baseline` path), findings are judged as *drift* against it:
//! both new findings and stale baseline grants fail. Without a baseline,
//! any finding fails.
//!
//! Exits 0 when the workspace is clean (or matches its baseline), 1 on
//! findings/drift, 2 on usage or I/O errors.

// This binary owns its stdout/stderr; the R4/print lints apply to the
// library crates only.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

use hyperpower_analyze::baseline::{Baseline, BASELINE_FILE};
use hyperpower_analyze::certificate::CERTIFICATE_FILE;
use hyperpower_analyze::{
    analyze_workspace_with, find_workspace_root, fix, generate_certificate, sarif, Rule,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() {
    println!(
        "usage: hyperpower-analyze [--format text|json|sarif] [--fix] [--include-self] [--baseline <path>] [--write-baseline] [--write-certificate] [workspace-root]"
    );
    println!(
        "  --format <f>      output format (default: text; --json is shorthand for --format json)"
    );
    println!("  --fix             apply mechanical rewrites (unit suffixes, HashMap/HashSet -> BTree in trace crates, allow-marker normalization, stale allow removal) before analyzing");
    println!("  --baseline <p>    compare findings against a baseline file (default: <root>/{BASELINE_FILE} when present)");
    println!(
        "  --write-baseline  accept the current findings into the baseline file and exit clean"
    );
    println!(
        "  --write-certificate  regenerate <root>/{CERTIFICATE_FILE} from the current analysis and exit"
    );
    println!("  --include-self    also scan the analyzer's own sources (crates/analyze, main.rs excluded)");
    println!("rules:");
    for rule in Rule::ALL {
        println!("  {} ({}): {}", rule.id(), rule.slug(), rule.description());
    }
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut apply_fix = false;
    let mut include_self = false;
    let mut write_baseline = false;
    let mut write_certificate = false;
    let mut baseline_arg: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "invalid --format {:?}: expected text, json or sarif",
                            other.unwrap_or("<missing>")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--fix" => apply_fix = true,
            "--include-self" => include_self = true,
            "--write-baseline" => write_baseline = true,
            "--write-certificate" => write_certificate = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if root_arg.is_none() && !other.starts_with('-') => {
                root_arg = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if apply_fix {
        match fix::apply_fixes(&root) {
            Ok(r) => eprintln!(
                "fix: {} file(s) changed, {} identifier(s) renamed, {} marker(s) normalized, {} stale allow id(s) removed",
                r.files_changed, r.renames, r.markers_normalized, r.allows_removed
            ),
            Err(e) => {
                eprintln!("fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if write_certificate {
        let cert_path = root.join(CERTIFICATE_FILE);
        match generate_certificate(&root) {
            Ok(Some(json)) => {
                if let Err(e) = std::fs::write(&cert_path, json) {
                    eprintln!("cannot write {}: {e}", cert_path.display());
                    return ExitCode::from(2);
                }
                eprintln!("certificate: wrote {}", cert_path.display());
                return ExitCode::SUCCESS;
            }
            Ok(None) => {
                eprintln!(
                    "certificate: no trace-affecting crates under {}",
                    root.display()
                );
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("certificate generation failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match analyze_workspace_with(&root, include_self) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        // A typo'd root would otherwise report a vacuously clean pass.
        eprintln!("no Rust sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let baseline_path = baseline_arg.unwrap_or_else(|| root.join(BASELINE_FILE));

    if write_baseline {
        let base = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&baseline_path, base.to_json()) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "baseline: accepted {} finding(s) across {} bucket(s) into {}",
            report.findings.len(),
            base.entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("invalid baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let drift = base.diff(&report);

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", sarif::to_sarif(&report)),
        Format::Text => {
            println!(
                "hyperpower-analyze: scanned {} files across {} rules",
                report.files_scanned,
                Rule::ALL.len()
            );
            for rule in Rule::ALL {
                let n = report.findings_for(rule).count();
                println!(
                    "  {} {} ({}): {} finding{}",
                    if n == 0 { "ok " } else { "note" },
                    rule.id(),
                    rule.slug(),
                    n,
                    if n == 1 { "" } else { "s" }
                );
            }
            for f in &report.findings {
                println!("\n[{}] {}:{}", f.rule.id(), f.file, f.line);
                if !f.excerpt.is_empty() {
                    println!("    {}", f.excerpt);
                }
                println!("    {}", f.message);
            }
            if !base.entries.is_empty() {
                println!(
                    "\nbaseline: {} accepted bucket(s) from {}",
                    base.entries.len(),
                    baseline_path.display()
                );
            }
            if drift.is_empty() {
                if report.is_clean() {
                    println!("\nclean: all invariants hold");
                } else {
                    println!("\nclean: all findings are baselined");
                }
            } else {
                print!("\n{}", drift.describe());
            }
        }
    }

    if drift.is_empty() {
        ExitCode::SUCCESS
    } else {
        if format != Format::Text {
            eprint!("{}", drift.describe());
        }
        ExitCode::FAILURE
    }
}
