//! Command-line entry point for the workspace static-analysis pass.
//!
//! Usage: `cargo run -p hyperpower-analyze [-- --json] [root]`
//!
//! Exits 0 when the workspace is clean, 1 when any rule fired, 2 on
//! usage or I/O errors.

// This binary owns its stdout/stderr; the R4/print lints apply to the
// library crates only.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

use hyperpower_analyze::{analyze_workspace, find_workspace_root, Rule};

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: hyperpower-analyze [--json] [workspace-root]");
                println!("rules:");
                for rule in Rule::ALL {
                    println!("  {} ({}): {}", rule.id(), rule.slug(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            other if root_arg.is_none() && !other.starts_with('-') => {
                root_arg = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "hyperpower-analyze: scanned {} files across {} rules",
            report.files_scanned,
            Rule::ALL.len()
        );
        for rule in Rule::ALL {
            let n = report.findings_for(rule).count();
            println!(
                "  {} {} ({}): {} finding{}",
                if n == 0 { "ok " } else { "FAIL" },
                rule.id(),
                rule.slug(),
                n,
                if n == 1 { "" } else { "s" }
            );
        }
        for f in &report.findings {
            println!("\n[{}] {}:{}", f.rule.id(), f.file, f.line);
            if !f.excerpt.is_empty() {
                println!("    {}", f.excerpt);
            }
            println!("    {}", f.message);
        }
        if report.is_clean() {
            println!("\nclean: all invariants hold");
        } else {
            println!(
                "\n{} violation{} found",
                report.findings.len(),
                if report.findings.len() == 1 { "" } else { "s" }
            );
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
