//! Reaching-definitions dataflow over [`crate::cfg`] CFGs.
//!
//! A small worklist solver: each block's straight-line segments are
//! scanned for definitions (`let` bindings, assignments, loop variables,
//! function parameters), each definition is abstracted into a per-rule
//! value domain ([`AbstractValue`]), and the classic `IN = ∪ OUT[preds]`,
//! `OUT = gen ∪ (IN − kill)` equations are iterated to a fixpoint. Rules
//! then ask [`Dataflow::reaching`] which definitions of a variable can
//! reach a given token — the def-use chains behind R15's safe-index
//! proofs, R17's unit tracking, and anything later PRs build on top.
//!
//! The domain is deliberately shallow: enough to prove the facts the
//! rules need (`i` ranges over `0..xs.len()`, `n` is the non-zero literal
//! `4`, `p` came from `Watts(…)`) and nothing more. Unknown shapes map to
//! [`AbstractValue::Other`], which every rule treats as "cannot prove" —
//! approximation only ever loses proofs, never soundness.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::index::Param;
use crate::token::{Token, TokenKind};

/// What a definition binds, abstractly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractValue {
    /// A literal integer (sign folded in).
    Int(i128),
    /// `seq.len()` / `self.seq.len()` for the named sequence.
    LenOf(String),
    /// A loop variable ranging over `0..seq.len()` — a proved in-bounds
    /// index for `seq`.
    RangeIndexOf(String),
    /// `Name(…)` or `Name::assoc(…)` with an uppercase head — a
    /// constructor, recorded by type name.
    Ctor(String),
    /// `name(…)` / `.name(…)` — a call, recorded by callee name.
    Call(String),
    /// A function parameter, recorded with its declared type tokens.
    Param(String),
    /// Anything else.
    Other,
}

impl AbstractValue {
    /// Whether this value is integer-typed as far as the domain can tell.
    pub fn is_integer_evidence(&self) -> bool {
        matches!(
            self,
            AbstractValue::Int(_) | AbstractValue::LenOf(_) | AbstractValue::RangeIndexOf(_)
        )
    }
}

/// One definition of a variable.
#[derive(Debug, Clone)]
pub struct Def {
    /// The defined variable name.
    pub var: String,
    /// Token index where the definition takes effect.
    pub at: usize,
    /// 1-based source line of the definition.
    pub line: usize,
    /// The abstracted bound value.
    pub value: AbstractValue,
}

/// The solved reaching-definitions facts for one function.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Every definition found, including parameter pseudo-defs.
    pub defs: Vec<Def>,
    /// Per block: def indices in program order.
    block_defs: Vec<Vec<usize>>,
    /// Per block: def indices reaching the block entry.
    ins: Vec<BTreeSet<usize>>,
}

impl Dataflow {
    /// Solves reaching definitions for one function body.
    pub fn solve(cfg: &Cfg, toks: &[Token], params: &[Param]) -> Dataflow {
        let mut defs: Vec<Def> = Vec::new();
        let mut block_defs: Vec<Vec<usize>> = vec![Vec::new(); cfg.blocks.len()];

        // Parameter pseudo-defs sit before every body token in the entry
        // block, so they behave like ordinary defs (and later bindings of
        // the same name kill them).
        let body_open = cfg.blocks[cfg.entry]
            .segments
            .first()
            .map_or(0, |&(s, _)| s.saturating_sub(1));
        for p in params {
            block_defs[cfg.entry].push(defs.len());
            defs.push(Def {
                var: p.name.clone(),
                at: body_open,
                line: toks.get(body_open).map_or(1, |t| t.line),
                value: AbstractValue::Param(p.ty.clone()),
            });
        }

        for (b, block) in cfg.blocks.iter().enumerate() {
            for &(s, e) in &block.segments {
                scan_defs(toks, s, e, &mut defs, &mut block_defs[b]);
            }
        }

        // gen/kill per block.
        let n = cfg.blocks.len();
        let mut gens: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut killed_vars: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); n];
        for b in 0..n {
            let mut last: std::collections::BTreeMap<&str, usize> = Default::default();
            for &d in &block_defs[b] {
                last.insert(defs[d].var.as_str(), d);
                killed_vars[b].insert(defs[d].var.as_str());
            }
            gens[b] = last.values().copied().collect();
        }

        let preds = cfg.preds();
        let mut ins: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut outs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut work: Vec<usize> = (0..n).collect();
        while let Some(b) = work.pop() {
            let mut inn = BTreeSet::new();
            for &p in &preds[b] {
                inn.extend(outs[p].iter().copied());
            }
            let mut out = gens[b].clone();
            for &d in &inn {
                if !killed_vars[b].contains(defs[d].var.as_str()) {
                    out.insert(d);
                }
            }
            ins[b] = inn;
            if out != outs[b] {
                outs[b] = out;
                work.extend(cfg.blocks[b].succs.iter().copied());
            }
        }

        Dataflow {
            defs,
            block_defs,
            ins,
        }
    }

    /// The definitions of `var` that can reach token index `at`.
    ///
    /// An empty answer means "nothing provable" (the variable is bound by
    /// a pattern shape the scanner does not model, or `at` sits outside
    /// the lowered region) — callers must treat it as unknown, not as
    /// dead code.
    pub fn reaching(&self, cfg: &Cfg, var: &str, at: usize) -> Vec<&Def> {
        let Some(b) = cfg.block_at(at) else {
            return Vec::new();
        };
        // A def earlier in the same block shadows everything inbound.
        let mut local = None;
        for &d in &self.block_defs[b] {
            if self.defs[d].var == var && self.defs[d].at < at {
                local = Some(d);
            }
        }
        if let Some(d) = local {
            return vec![&self.defs[d]];
        }
        self.ins[b]
            .iter()
            .filter(|&&d| self.defs[d].var == var)
            .map(|&d| &self.defs[d])
            .collect()
    }
}

/// Scans one straight-line token segment `[s, e)` for definitions.
fn scan_defs(toks: &[Token], s: usize, e: usize, defs: &mut Vec<Def>, block_defs: &mut Vec<usize>) {
    let mut i = s;
    while i < e {
        let t = &toks[i];
        if t.is_ident("let") {
            i = scan_let(toks, i, e, defs, block_defs);
            continue;
        }
        if t.is_ident("for") {
            i = scan_for(toks, i, e, defs, block_defs);
            continue;
        }
        // Plain assignment / compound assignment to a simple name.
        if t.kind == TokenKind::Ident
            && !is_keyword(&t.text)
            && (i == s || !(toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")))
        {
            if let Some(op) = toks.get(i + 1) {
                let compound = matches!(
                    op.text.as_str(),
                    "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
                ) && op.kind == TokenKind::Punct;
                if op.is_punct("=") || compound {
                    let end = stmt_end(toks, i + 2, e);
                    let value = if compound {
                        AbstractValue::Other
                    } else {
                        classify_rhs(&toks[i + 2..end])
                    };
                    push_def(toks, i, t.text.clone(), value, defs, block_defs);
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Scans a `let` statement starting at the `let` keyword; returns the
/// index to resume from.
fn scan_let(
    toks: &[Token],
    kw: usize,
    e: usize,
    defs: &mut Vec<Def>,
    block_defs: &mut Vec<usize>,
) -> usize {
    // Pattern variables: lowercase-head idents up to the top-level `=`,
    // `;`, or a type annotation `:` (skipping `mut`/`ref`; uppercase
    // heads are constructors like `Some`).
    let mut vars: Vec<(usize, String)> = Vec::new();
    let mut depth = 0i32;
    let mut eq = None;
    let mut in_type = false;
    let mut j = kw + 1;
    while j < e {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct(":") && depth == 0 {
            in_type = true;
        } else if t.is_punct("=") && depth == 0 {
            eq = Some(j);
            break;
        } else if t.is_punct(";") && depth == 0 {
            break;
        } else if !in_type
            && t.kind == TokenKind::Ident
            && !is_keyword(&t.text)
            && t.text != "_"
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
            && !toks.get(j + 1).is_some_and(|n| n.is_punct("("))
        {
            vars.push((j, t.text.clone()));
        }
        j += 1;
    }
    let Some(eq) = eq else {
        // `let x;` — a declaration without a value; treat as no def.
        return j + 1;
    };
    let end = stmt_end(toks, eq + 1, e);
    let value = if vars.len() == 1 {
        classify_rhs(&toks[eq + 1..end])
    } else {
        AbstractValue::Other
    };
    for (at, name) in vars {
        push_def(toks, at, name, value.clone(), defs, block_defs);
    }
    end
}

/// Scans a `for PAT in ITER` header; returns the resume index.
fn scan_for(
    toks: &[Token],
    kw: usize,
    e: usize,
    defs: &mut Vec<Def>,
    block_defs: &mut Vec<usize>,
) -> usize {
    // Find the `in` at top level.
    let mut depth = 0i32;
    let mut in_at = None;
    for (j, t) in toks.iter().enumerate().take(e).skip(kw + 1) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("in") && depth == 0 {
            in_at = Some(j);
            break;
        } else if t.is_punct("{") && depth == 0 {
            break;
        }
    }
    let Some(in_at) = in_at else { return kw + 1 };

    let iter_end = e; // header segments end at the body brace already
    let simple_var = (in_at == kw + 2 || (in_at == kw + 3 && toks[kw + 1].is_ident("mut")))
        .then(|| &toks[in_at - 1])
        .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
        .map(|t| t.text.clone());

    if let Some(var) = simple_var {
        let value = classify_range_iter(&toks[in_at + 1..iter_end]);
        push_def(toks, in_at - 1, var, value, defs, block_defs);
    } else {
        // Destructuring pattern: every lowercase-head ident binds Other.
        for j in kw + 1..in_at {
            let t = &toks[j];
            if t.kind == TokenKind::Ident
                && !is_keyword(&t.text)
                && t.text != "_"
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
            {
                push_def(
                    toks,
                    j,
                    t.text.clone(),
                    AbstractValue::Other,
                    defs,
                    block_defs,
                );
            }
        }
    }
    in_at + 1
}

fn push_def(
    toks: &[Token],
    at: usize,
    var: String,
    value: AbstractValue,
    defs: &mut Vec<Def>,
    block_defs: &mut Vec<usize>,
) {
    block_defs.push(defs.len());
    defs.push(Def {
        var,
        at,
        line: toks[at].line,
        value,
    });
}

/// First top-level `;` in `[from, e)`, or `e`.
fn stmt_end(toks: &[Token], from: usize, e: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(e).skip(from) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(";") && depth <= 0 {
            return j;
        }
    }
    e
}

/// Abstracts the right-hand side of a binding.
fn classify_rhs(r: &[Token]) -> AbstractValue {
    // Literal integers, with unary minus.
    if r.len() == 1 && r[0].kind == TokenKind::Int {
        return parse_int(&r[0].text).map_or(AbstractValue::Other, AbstractValue::Int);
    }
    if r.len() == 2 && r[0].is_punct("-") && r[1].kind == TokenKind::Int {
        return parse_int(&r[1].text).map_or(AbstractValue::Other, |v| AbstractValue::Int(-v));
    }
    // `seq.len()` / `self.seq.len()`.
    if let Some(seq) = match_len_of(r) {
        return AbstractValue::LenOf(seq);
    }
    // `Name(…)` / `Name::assoc(…)` constructor with uppercase head.
    if r.len() >= 2
        && r[0].kind == TokenKind::Ident
        && r[0].text.chars().next().is_some_and(|c| c.is_uppercase())
    {
        if r[1].is_punct("(") {
            return AbstractValue::Ctor(r[0].text.clone());
        }
        if r.len() >= 4
            && r[1].is_punct("::")
            && r[2].kind == TokenKind::Ident
            && r[3].is_punct("(")
        {
            return AbstractValue::Ctor(r[0].text.clone());
        }
    }
    // First call head: `name(…)`, `path::name(…)`, `recv.name(…)`.
    let mut k = 0;
    while k + 1 < r.len() {
        if r[k].kind == TokenKind::Ident && r[k + 1].is_punct("(") && !is_keyword(&r[k].text) {
            return AbstractValue::Call(r[k].text.clone());
        }
        k += 1;
    }
    AbstractValue::Other
}

/// Recognises `xs.len()` and `self.xs.len()`, returning `xs`.
fn match_len_of(r: &[Token]) -> Option<String> {
    let base = if r.len() == 5 && r[0].kind == TokenKind::Ident {
        0
    } else if r.len() == 7 && r[0].is_ident("self") && r[1].is_punct(".") {
        2
    } else {
        return None;
    };
    let seq = &r[base];
    if seq.kind == TokenKind::Ident
        && r[base + 1].is_punct(".")
        && r[base + 2].is_ident("len")
        && r[base + 3].is_punct("(")
        && r[base + 4].is_punct(")")
    {
        Some(seq.text.clone())
    } else {
        None
    }
}

/// Abstracts a `for` iterable: `0..seq.len()` (exclusive!) proves the
/// loop variable in-bounds for `seq`; everything else is [`AbstractValue::Other`].
fn classify_range_iter(r: &[Token]) -> AbstractValue {
    if r.len() >= 3
        && r[0].kind == TokenKind::Int
        && parse_int(&r[0].text) == Some(0)
        && r[1].is_punct("..")
    {
        if let Some(seq) = match_len_of(&r[2..]) {
            return AbstractValue::RangeIndexOf(seq);
        }
    }
    AbstractValue::Other
}

/// Parses a Rust integer literal (underscores, radix prefixes, type
/// suffixes).
fn parse_int(text: &str) -> Option<i128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix): (&str, u32) =
        if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            (h, 16)
        } else if let Some(o) = t.strip_prefix("0o") {
            (o, 8)
        } else if let Some(b) = t.strip_prefix("0b") {
            (b, 2)
        } else {
            (&t, 10)
        };
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    i128::from_str_radix(&digits[..end], radix).ok()
}

/// Rust keywords the def scanner must never treat as variable names.
/// Shared with the flow-sensitive rules (e.g. R15's index-site filter).
pub(crate) fn is_df_keyword(s: &str) -> bool {
    is_keyword(s)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "dyn"
            | "box"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{matching_close, tokenize};

    fn solve(src: &str) -> (Vec<Token>, Cfg, Dataflow) {
        let toks = tokenize(src);
        let open = toks.iter().position(|t| t.is_punct("{")).unwrap();
        let close = matching_close(&toks, open, "{", "}").unwrap();
        let cfg = Cfg::build(&toks, (open, close));
        let df = Dataflow::solve(&cfg, &toks, &[]);
        (toks, cfg, df)
    }

    fn token_of(toks: &[Token], text: &str, nth: usize) -> usize {
        toks.iter()
            .enumerate()
            .filter(|(_, t)| t.text == text)
            .map(|(i, _)| i)
            .nth(nth)
            .unwrap()
    }

    #[test]
    fn straight_line_let_reaches_use() {
        let (toks, cfg, df) = solve("fn f() { let n = 4; emit(n); }");
        let use_at = token_of(&toks, "n", 1);
        let r = df.reaching(&cfg, "n", use_at);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, AbstractValue::Int(4));
    }

    #[test]
    fn rebinding_shadows_earlier_def_in_same_block() {
        let (toks, cfg, df) = solve("fn f() { let n = 4; let n = 0; emit(n); }");
        let use_at = token_of(&toks, "n", 2);
        let r = df.reaching(&cfg, "n", use_at);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, AbstractValue::Int(0));
    }

    #[test]
    fn both_branch_defs_reach_the_join() {
        let (toks, cfg, df) =
            solve("fn f(c: bool) { let mut n = 1; if c { n = 2; } else { n = 3; } emit(n); }");
        let use_at = token_of(&toks, "n", 3);
        let r = df.reaching(&cfg, "n", use_at);
        let mut vals: Vec<_> = r.iter().map(|d| d.value.clone()).collect();
        vals.sort_by_key(|v| format!("{v:?}"));
        assert_eq!(
            vals,
            vec![AbstractValue::Int(2), AbstractValue::Int(3)],
            "branch defs must both reach the join (and kill the initial 1)"
        );
    }

    #[test]
    fn if_without_else_keeps_the_inbound_def() {
        let (toks, cfg, df) = solve("fn f(c: bool) { let mut n = 1; if c { n = 2; } emit(n); }");
        let use_at = token_of(&toks, "n", 2);
        let r = df.reaching(&cfg, "n", use_at);
        assert_eq!(r.len(), 2, "skipping the arm keeps n = 1 live");
    }

    #[test]
    fn range_loop_var_is_proved_index_of_sequence() {
        let (toks, cfg, df) = solve("fn f(xs: &[f64]) { for i in 0..xs.len() { touch(xs[i]); } }");
        let use_at = token_of(&toks, "i", 1);
        let r = df.reaching(&cfg, "i", use_at);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, AbstractValue::RangeIndexOf("xs".into()));
    }

    #[test]
    fn inclusive_range_is_not_a_proof() {
        let (toks, cfg, df) = solve("fn f(xs: &[f64]) { for i in 0..=xs.len() { touch(i); } }");
        let use_at = token_of(&toks, "i", 1);
        let r = df.reaching(&cfg, "i", use_at);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r[0].value,
            AbstractValue::Other,
            "0..=len can go out of bounds"
        );
    }

    #[test]
    fn len_binding_is_tracked() {
        let (toks, cfg, df) = solve("fn f(xs: &[f64]) { let n = xs.len(); emit(n); }");
        let use_at = token_of(&toks, "n", 1);
        let r = df.reaching(&cfg, "n", use_at);
        assert_eq!(r[0].value, AbstractValue::LenOf("xs".into()));
    }

    #[test]
    fn unit_constructor_is_tracked_by_type_name() {
        let (toks, cfg, df) = solve("fn f() { let p = Watts(2.5); emit(p); }");
        let use_at = token_of(&toks, "p", 1);
        let r = df.reaching(&cfg, "p", use_at);
        assert_eq!(r[0].value, AbstractValue::Ctor("Watts".into()));
        let (toks, cfg, df) = solve("fn g() { let m = Mebibytes::from_gib(1.0); emit(m); }");
        let use_at = token_of(&toks, "m", 1);
        let r = df.reaching(&cfg, "m", use_at);
        assert_eq!(r[0].value, AbstractValue::Ctor("Mebibytes".into()));
    }

    #[test]
    fn params_are_pseudo_defs_killed_by_rebinding() {
        let toks = tokenize("fn f(n: usize) { emit(n); let n = 1; emit(n); }");
        let open = toks.iter().position(|t| t.is_punct("{")).unwrap();
        let close = matching_close(&toks, open, "{", "}").unwrap();
        let cfg = Cfg::build(&toks, (open, close));
        let params = vec![Param {
            name: "n".into(),
            ty: "usize".into(),
        }];
        let df = Dataflow::solve(&cfg, &toks, &params);
        let first_use = token_of(&toks, "n", 1);
        let r = df.reaching(&cfg, "n", first_use);
        assert_eq!(r[0].value, AbstractValue::Param("usize".into()));
        let second_use = token_of(&toks, "n", 3);
        let r = df.reaching(&cfg, "n", second_use);
        assert_eq!(r[0].value, AbstractValue::Int(1));
    }

    #[test]
    fn loop_carried_defs_flow_around_the_back_edge() {
        let (toks, cfg, df) = solve(
            "fn f(xs: &[u64]) { let mut acc = 0; for x in xs { acc = step(acc, x); } emit(acc); }",
        );
        let use_at = token_of(&toks, "acc", 3);
        let r = df.reaching(&cfg, "acc", use_at);
        assert_eq!(r.len(), 2, "initial 0 and the loop-carried call both reach");
    }
}
