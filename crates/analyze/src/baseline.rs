//! Findings baseline with drift detection.
//!
//! A baseline records the *accepted* findings of a repository as
//! `(rule, file, count)` entries — deliberately keyed without line
//! numbers, so unrelated edits that shift lines don't invalidate it.
//! Tier-1 enforcement then becomes a drift check in both directions:
//!
//! * a file/rule pair exceeding its baselined count is a **new**
//!   violation and fails the build;
//! * a pair below its baselined count is a **stale** entry: the debt was
//!   paid down, and the baseline must be regenerated (with
//!   `hyperpower-analyze --write-baseline`) so the ratchet only ever
//!   tightens.
//!
//! **Schema v2** adds per-entry metadata: `severity` (the rule's level,
//! mirrored into SARIF) and `since` (provenance: which analyzer
//! generation accepted the bucket, or `"migrated-v1"` for entries read
//! from a v1 file). Both are informational — the ratchet still keys on
//! `(rule, file, count)` only, so v1 and v2 baselines enforce
//! identically. v1 files (no `schema` line, no `severity`/`since`) load
//! transparently; `--write-baseline` always emits v2.

use std::collections::BTreeMap;
use std::path::Path;

use crate::{Report, Rule};

/// The canonical baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// The schema marker written into v2 baselines.
pub const SCHEMA_V2: &str = "hyperpower-analyze-baseline/v2";

/// Provenance stamped on buckets accepted by this analyzer generation.
pub const PROVENANCE: &str = "analyzer-v4";

/// Provenance stamped on buckets migrated from a v1 baseline file.
pub const PROVENANCE_MIGRATED: &str = "migrated-v1";

/// One accepted (grandfathered) findings bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id (`"R6"`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Accepted number of findings of `rule` in `file`.
    pub count: usize,
    /// The rule's severity wire form (`"error"`/`"warning"`).
    pub severity: String,
    /// Which analyzer generation accepted this bucket.
    pub since: String,
}

impl Entry {
    /// Builds an entry with the rule's default severity and current
    /// provenance.
    pub fn new(rule: &str, file: &str, count: usize) -> Self {
        Entry {
            severity: default_severity(rule),
            since: PROVENANCE.to_string(),
            rule: rule.to_string(),
            file: file.to_string(),
            count,
        }
    }
}

fn default_severity(rule_id: &str) -> String {
    Rule::from_id(rule_id)
        .map(|r| r.severity().as_str())
        .unwrap_or("error")
        .to_string()
}

/// A set of accepted findings buckets, sorted by (file, rule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The accepted buckets.
    pub entries: Vec<Entry>,
}

/// The result of comparing a report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Drift {
    /// Buckets whose current count exceeds the baseline (new violations).
    /// Each carries the excess count.
    pub new: Vec<Entry>,
    /// Buckets whose current count is below the baseline (paid-down debt;
    /// the baseline must be regenerated). Each carries the deficit count.
    pub stale: Vec<Entry>,
}

impl Drift {
    /// True when the report matches the baseline exactly.
    pub fn is_empty(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Human-readable drift summary, one line per bucket.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for e in &self.new {
            out.push_str(&format!(
                "new: {} finding(s) of {} in {} beyond baseline\n",
                e.count, e.rule, e.file
            ));
        }
        for e in &self.stale {
            out.push_str(&format!(
                "stale: baseline grants {} more {} finding(s) in {} than currently exist; run --write-baseline to ratchet down\n",
                e.count, e.rule, e.file
            ));
        }
        out
    }
}

impl Baseline {
    /// Builds a baseline accepting every finding in `report`.
    pub fn from_report(report: &Report) -> Self {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            *counts
                .entry((f.file.clone(), f.rule.id().to_string()))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule), count)| Entry::new(&rule, &file, count))
                .collect(),
        }
    }

    /// Serialises the baseline as schema v2 (deterministic: entries are
    /// sorted).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"schema\": \"{SCHEMA_V2}\",\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}, \"severity\": \"{}\", \"since\": \"{}\"}}{}\n",
                e.rule,
                crate::json_escape(&e.file),
                e.count,
                crate::json_escape(&e.severity),
                crate::json_escape(&e.since),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON produced by [`Baseline::to_json`] — either schema
    /// v2 or the legacy v1 shape (no `schema` line, entries carry only
    /// rule/file/count). v1 entries migrate transparently: severity comes
    /// from the rule's current default and `since` is stamped
    /// [`PROVENANCE_MIGRATED`]. The parser is line-oriented and only
    /// accepts those exact shapes — good enough for a file the tool
    /// itself writes, without a JSON dependency.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim().trim_end_matches(',');
            if line.contains("\"schema\"") {
                let schema = extract_str(line, "schema")
                    .ok_or_else(|| format!("baseline line {}: malformed \"schema\"", n + 1))?;
                if schema != SCHEMA_V2 {
                    return Err(format!(
                        "baseline line {}: unsupported schema {schema:?} (expected {SCHEMA_V2:?})",
                        n + 1
                    ));
                }
                continue;
            }
            if !line.contains("\"rule\"") {
                continue;
            }
            let rule = extract_str(line, "rule")
                .ok_or_else(|| format!("baseline line {}: missing \"rule\"", n + 1))?;
            let file = extract_str(line, "file")
                .ok_or_else(|| format!("baseline line {}: missing \"file\"", n + 1))?;
            let count = extract_usize(line, "count")
                .ok_or_else(|| format!("baseline line {}: missing \"count\"", n + 1))?;
            if !Rule::ALL.iter().any(|r| r.id() == rule) {
                return Err(format!("baseline line {}: unknown rule {rule}", n + 1));
            }
            let severity = match extract_str(line, "severity") {
                Some(s) => {
                    if crate::Severity::parse(&s).is_none() {
                        return Err(format!("baseline line {}: unknown severity {s:?}", n + 1));
                    }
                    s
                }
                None => default_severity(&rule),
            };
            let since =
                extract_str(line, "since").unwrap_or_else(|| PROVENANCE_MIGRATED.to_string());
            entries.push(Entry {
                rule,
                file,
                count,
                severity,
                since,
            });
        }
        entries.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        Ok(Baseline { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Compares a report against this baseline.
    pub fn diff(&self, report: &Report) -> Drift {
        let mut current: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            *current
                .entry((f.file.clone(), f.rule.id().to_string()))
                .or_insert(0) += 1;
        }
        let mut accepted: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *accepted
                .entry((e.file.clone(), e.rule.clone()))
                .or_insert(0) += e.count;
        }

        let mut drift = Drift::default();
        for (key, &n) in &current {
            let base = accepted.get(key).copied().unwrap_or(0);
            if n > base {
                drift.new.push(Entry::new(&key.1, &key.0, n - base));
            }
        }
        for (key, &base) in &accepted {
            let n = current.get(key).copied().unwrap_or(0);
            if base > n {
                drift.stale.push(Entry::new(&key.1, &key.0, base - n));
            }
        }
        drift
    }
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn extract_usize(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Report};

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            excerpt: String::new(),
            message: String::new(),
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            files_scanned: 1,
        }
    }

    #[test]
    fn roundtrip() {
        let r = report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 9),
            finding(Rule::R4PrintInLibrary, "crates/b/src/lib.rs", 1),
        ]);
        let base = Baseline::from_report(&r);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        assert!(base.diff(&r).is_empty());
    }

    #[test]
    fn line_drift_is_invisible() {
        let base = Baseline::from_report(&report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            3,
        )]));
        // Same finding, different line: not drift.
        let moved = report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            77,
        )]);
        assert!(base.diff(&moved).is_empty());
    }

    #[test]
    fn new_findings_are_drift() {
        let base = Baseline::from_report(&report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            3,
        )]));
        let grown = report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 4),
        ]);
        let d = base.diff(&grown);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].count, 1);
        assert!(d.stale.is_empty());
        assert!(d.describe().contains("beyond baseline"));
    }

    #[test]
    fn paid_down_debt_is_stale() {
        let base = Baseline::from_report(&report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 4),
        ]));
        let shrunk = report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            3,
        )]);
        let d = base.diff(&shrunk);
        assert!(d.new.is_empty());
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].count, 1);
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/analyze-baseline.json")).unwrap();
        assert!(b.entries.is_empty());
    }

    #[test]
    fn unknown_rule_rejected() {
        let bad =
            "{\n  \"entries\": [\n    {\"rule\": \"R99\", \"file\": \"x\", \"count\": 1}\n  ]\n}\n";
        assert!(Baseline::parse(bad).is_err());
    }

    #[test]
    fn v2_emits_schema_severity_and_provenance() {
        let base = Baseline::from_report(&report(vec![finding(
            Rule::R14OrderSensitiveReduction,
            "crates/a/src/lib.rs",
            3,
        )]));
        let json = base.to_json();
        assert!(json.contains(SCHEMA_V2));
        assert!(json.contains("\"severity\": \"warning\""));
        assert!(json.contains(&format!("\"since\": \"{PROVENANCE}\"")));
    }

    #[test]
    fn v1_baseline_migrates_transparently() {
        // The pre-v3 on-disk shape: no schema line, bare rule/file/count.
        let v1 = "{\n  \"entries\": [\n    {\"rule\": \"R6\", \"file\": \"crates/a/src/lib.rs\", \"count\": 2}\n  ]\n}\n";
        let parsed = Baseline::parse(v1).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].severity, "error");
        assert_eq!(parsed.entries[0].since, PROVENANCE_MIGRATED);

        // Ratchet semantics are unchanged by migration: two findings
        // match, three drift.
        let two = report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 9),
        ]);
        assert!(parsed.diff(&two).is_empty());
        let mut three = two.clone();
        three
            .findings
            .push(finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 12));
        assert_eq!(parsed.diff(&three).new.len(), 1);
    }

    #[test]
    fn bad_severity_and_schema_rejected() {
        let bad_sev = "{\n  \"entries\": [\n    {\"rule\": \"R6\", \"file\": \"x\", \"count\": 1, \"severity\": \"fatal\", \"since\": \"analyzer-v3\"}\n  ]\n}\n";
        assert!(Baseline::parse(bad_sev).is_err());
        let bad_schema =
            "{\n  \"schema\": \"hyperpower-analyze-baseline/v9\",\n  \"entries\": [\n  ]\n}\n";
        assert!(Baseline::parse(bad_schema).is_err());
    }
}
