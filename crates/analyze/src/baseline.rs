//! Findings baseline with drift detection.
//!
//! A baseline records the *accepted* findings of a repository as
//! `(rule, file, count)` entries — deliberately keyed without line
//! numbers, so unrelated edits that shift lines don't invalidate it.
//! Tier-1 enforcement then becomes a drift check in both directions:
//!
//! * a file/rule pair exceeding its baselined count is a **new**
//!   violation and fails the build;
//! * a pair below its baselined count is a **stale** entry: the debt was
//!   paid down, and the baseline must be regenerated (with
//!   `hyperpower-analyze --write-baseline`) so the ratchet only ever
//!   tightens.

use std::collections::BTreeMap;
use std::path::Path;

use crate::{Report, Rule};

/// The canonical baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// One accepted (grandfathered) findings bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id (`"R6"`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Accepted number of findings of `rule` in `file`.
    pub count: usize,
}

/// A set of accepted findings buckets, sorted by (file, rule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The accepted buckets.
    pub entries: Vec<Entry>,
}

/// The result of comparing a report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Drift {
    /// Buckets whose current count exceeds the baseline (new violations).
    /// Each carries the excess count.
    pub new: Vec<Entry>,
    /// Buckets whose current count is below the baseline (paid-down debt;
    /// the baseline must be regenerated). Each carries the deficit count.
    pub stale: Vec<Entry>,
}

impl Drift {
    /// True when the report matches the baseline exactly.
    pub fn is_empty(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Human-readable drift summary, one line per bucket.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for e in &self.new {
            out.push_str(&format!(
                "new: {} finding(s) of {} in {} beyond baseline\n",
                e.count, e.rule, e.file
            ));
        }
        for e in &self.stale {
            out.push_str(&format!(
                "stale: baseline grants {} more {} finding(s) in {} than currently exist; run --write-baseline to ratchet down\n",
                e.count, e.rule, e.file
            ));
        }
        out
    }
}

impl Baseline {
    /// Builds a baseline accepting every finding in `report`.
    pub fn from_report(report: &Report) -> Self {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            *counts
                .entry((f.file.clone(), f.rule.id().to_string()))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule), count)| Entry { rule, file, count })
                .collect(),
        }
    }

    /// Serialises the baseline (deterministic: entries are sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}}}{}\n",
                e.rule,
                crate::json_escape(&e.file),
                e.count,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON produced by [`Baseline::to_json`]. The parser is
    /// line-oriented and only accepts that exact shape — good enough for
    /// a file the tool itself writes, without a JSON dependency.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim().trim_end_matches(',');
            if !line.contains("\"rule\"") {
                continue;
            }
            let rule = extract_str(line, "rule")
                .ok_or_else(|| format!("baseline line {}: missing \"rule\"", n + 1))?;
            let file = extract_str(line, "file")
                .ok_or_else(|| format!("baseline line {}: missing \"file\"", n + 1))?;
            let count = extract_usize(line, "count")
                .ok_or_else(|| format!("baseline line {}: missing \"count\"", n + 1))?;
            if !Rule::ALL.iter().any(|r| r.id() == rule) {
                return Err(format!("baseline line {}: unknown rule {rule}", n + 1));
            }
            entries.push(Entry { rule, file, count });
        }
        entries.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        Ok(Baseline { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Compares a report against this baseline.
    pub fn diff(&self, report: &Report) -> Drift {
        let mut current: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            *current
                .entry((f.file.clone(), f.rule.id().to_string()))
                .or_insert(0) += 1;
        }
        let mut accepted: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *accepted
                .entry((e.file.clone(), e.rule.clone()))
                .or_insert(0) += e.count;
        }

        let mut drift = Drift::default();
        for (key, &n) in &current {
            let base = accepted.get(key).copied().unwrap_or(0);
            if n > base {
                drift.new.push(Entry {
                    rule: key.1.clone(),
                    file: key.0.clone(),
                    count: n - base,
                });
            }
        }
        for (key, &base) in &accepted {
            let n = current.get(key).copied().unwrap_or(0);
            if base > n {
                drift.stale.push(Entry {
                    rule: key.1.clone(),
                    file: key.0.clone(),
                    count: base - n,
                });
            }
        }
        drift
    }
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn extract_usize(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Report};

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            excerpt: String::new(),
            message: String::new(),
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            files_scanned: 1,
        }
    }

    #[test]
    fn roundtrip() {
        let r = report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 9),
            finding(Rule::R4PrintInLibrary, "crates/b/src/lib.rs", 1),
        ]);
        let base = Baseline::from_report(&r);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        assert!(base.diff(&r).is_empty());
    }

    #[test]
    fn line_drift_is_invisible() {
        let base = Baseline::from_report(&report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            3,
        )]));
        // Same finding, different line: not drift.
        let moved = report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            77,
        )]);
        assert!(base.diff(&moved).is_empty());
    }

    #[test]
    fn new_findings_are_drift() {
        let base = Baseline::from_report(&report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            3,
        )]));
        let grown = report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 4),
        ]);
        let d = base.diff(&grown);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].count, 1);
        assert!(d.stale.is_empty());
        assert!(d.describe().contains("beyond baseline"));
    }

    #[test]
    fn paid_down_debt_is_stale() {
        let base = Baseline::from_report(&report(vec![
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 3),
            finding(Rule::R6UnitDiscipline, "crates/a/src/lib.rs", 4),
        ]));
        let shrunk = report(vec![finding(
            Rule::R6UnitDiscipline,
            "crates/a/src/lib.rs",
            3,
        )]);
        let d = base.diff(&shrunk);
        assert!(d.new.is_empty());
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].count, 1);
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/analyze-baseline.json")).unwrap();
        assert!(b.entries.is_empty());
    }

    #[test]
    fn unknown_rule_rejected() {
        let bad =
            "{\n  \"entries\": [\n    {\"rule\": \"R99\", \"file\": \"x\", \"count\": 1}\n  ]\n}\n";
        assert!(Baseline::parse(bad).is_err());
    }
}
