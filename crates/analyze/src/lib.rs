//! `hyperpower-analyze`: a dependency-light static-analysis pass enforcing
//! the workspace's numerics and determinism invariants.
//!
//! Clippy's lint gate (see the root `Cargo.toml`) covers the generic
//! hygiene rules — no unwraps in library code, no raw float equality the
//! compiler can see, and so on. This crate covers the *project-specific*
//! invariants clippy cannot express:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `R1` | no ambient entropy (`thread_rng`, `SystemTime`, …) in deterministic search paths |
//! | `R2` | no raw `==`/`!=` against non-zero float literals, no `partial_cmp().unwrap()` on objectives |
//! | `R3` | every public error enum is `#[non_exhaustive]` |
//! | `R4` | no `println!`/`eprintln!`/`dbg!` in library crates (stdout is the cli's) |
//! | `R5` | `debug_assert_finite!` guards present at declared numerical boundaries |
//! | `R6` | `f64` physical quantities carry unit suffixes (`_w`, `_mb`, `_s`, `_j`) or typed newtypes; no mixed-unit arithmetic |
//! | `R7` | acquisition paths evaluate the cheap hardware-constraint indicator before the expensive objective (HW-IECI/HW-CWEI) |
//! | `R8` | RNGs are constructed only at declared seeded roots and threaded `&mut` elsewhere |
//! | `R9` | no unordered collections (`HashMap`/`HashSet`) in trace-affecting crates |
//! | `R10` | wall-clock reads unreachable from non-sink files (R1, interprocedurally) |
//! | `R11` | RNG minting unreachable from non-root files (R8, interprocedurally) |
//! | `R12` | concurrency primitives confined to the executor boundary; trace writes confined to the commit path |
//! | `R13` | every semantic `ExecutorOptions` knob appears in the `CheckpointHeader` run identity |
//! | `R14` | order-sensitive float reductions only in blessed helpers |
//! | `R15` | no panicking construct (unchecked index, non-literal div/rem, `unreachable!`) reachable from the executor commit path |
//! | `R16` | no stale `analyze::allow` markers (an allow that suppresses nothing is itself a finding) |
//! | `R17` | no discarded workspace `Result`s, no unit newtypes dropped into bare mixed arithmetic |
//! | `R18` | branch arms in trace-affecting code draw from the RNG equally often |
//! | `R19` | the committed determinism certificate matches the proved facts |
//!
//! The pass tokenizes each file after blanking comments and string/char
//! literals (see [`token`]), so matching is token-exact rather than
//! substring-based, `#[cfg(test)]` regions are exempt, and no
//! syn/rustc dependency is needed (this workspace builds hermetically, so
//! the analyzer must stay dependency-free). On top of the per-file token
//! rules, a workspace layer builds an item index ([`index`]: functions,
//! impl owners, struct fields, `use` leaves) and a conservative call
//! graph ([`graph`]) that power the cross-file rules R10/R11/R13, and a
//! flow-sensitive layer lowers function bodies into per-function CFGs
//! ([`cfg`]) solved by a reaching-definitions worklist engine
//! ([`dataflow`]) that powers R15/R17/R18. R19 compares the committed
//! determinism certificate ([`certificate`]) against the proved facts,
//! and R16 closes the loop by flagging allow markers nothing consumed.
//! Intentional exceptions are annotated in the source with
//! `// analyze::allow(<rule>)`, which silences the named rule on that
//! line and the next.
//!
//! Run it as `cargo run -p hyperpower-analyze` (human-readable), with
//! `--format json` or `--format sarif` for machine-readable reports, with
//! `--fix` to apply mechanical rewrites, or with `--write-baseline` to
//! accept the current findings into `analyze-baseline.json`. Tier-1
//! enforcement lives in the root `tests/static_analysis.rs`: any finding
//! beyond the committed baseline fails the build, and so does a stale
//! baseline entry (the ratchet only tightens).

pub mod baseline;
pub mod certificate;
pub mod cfg;
pub mod corpus;
pub mod dataflow;
pub mod fix;
pub mod graph;
pub mod index;
pub mod rules;
pub mod sarif;
mod scan;
pub mod token;

pub use scan::{rust_files, AllowMarker, Line, SourceFile};

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees the pass scans. The `cli` and `bench`
/// crates are intentionally absent: they own stdout, and their wiring
/// code may panic on startup errors.
pub const LIBRARY_CRATES: &[&str] = &["core", "data", "gp", "gpu-sim", "linalg", "nn", "server"];

/// Analyzer errors (I/O only — scanning itself is total).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Reading a source file or directory failed.
    Io {
        /// The path that could not be read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "io error at {}: {source}", path.display()),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
        }
    }
}

/// Analyzer result type.
pub type Result<T> = std::result::Result<T, Error>;

/// The severity a rule's findings carry in SARIF output and the v2
/// baseline. Severity is *metadata* — the ratchet treats warnings and
/// errors identically (any drift fails) — but review UIs render them
/// differently and future policy can key off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Severity {
    /// Suspicious pattern; the fix may legitimately be an allow marker.
    Warning,
    /// Invariant violation; the fix is a code change.
    Error,
}

impl Severity {
    /// The wire form used in SARIF `level` and baseline v2 entries.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the wire form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// The rule kinds the pass checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// R1: ambient entropy / wall-clock time in deterministic search paths.
    R1NondeterministicEntropy,
    /// R2: raw float equality or `partial_cmp().unwrap()` on objectives.
    R2RawFloatEq,
    /// R3: public error enum without `#[non_exhaustive]`.
    R3ErrorEnumExhaustive,
    /// R4: print-family macro in a library crate.
    R4PrintInLibrary,
    /// R5: declared numerical boundary missing its finiteness guard.
    R5MissingFiniteGuard,
    /// R6: `f64` physical quantity without a unit suffix, or arithmetic
    /// mixing different declared units.
    R6UnitDiscipline,
    /// R7: expensive objective evaluated before the cheap hardware
    /// constraint in an acquisition path.
    R7ConstraintOrder,
    /// R8: RNG constructed or owned outside a declared seeded root.
    R8RngThreading,
    /// R9: unordered collection (`HashMap`/`HashSet`) in a
    /// trace-affecting crate.
    R9UnorderedCollections,
    /// R10: call path from a non-sink file into a wall-clock read.
    R10WallClockFlow,
    /// R11: call path from a non-root file into an RNG-minting function.
    R11RngFlow,
    /// R12: concurrency primitive outside the executor boundary, or
    /// trace write outside the commit path.
    R12ConcurrencyBoundary,
    /// R13: semantic executor knob missing from the checkpoint-header
    /// run identity (or vice versa).
    R13CheckpointHeader,
    /// R14: order-sensitive float reduction outside blessed helpers.
    R14OrderSensitiveReduction,
    /// R15: panicking construct (unchecked index, non-literal integer
    /// div/rem, `unreachable!`) reachable from the executor commit path.
    R15PanicPath,
    /// R16: an `analyze::allow` marker whose rule no longer fires in its
    /// scope (or that names an unknown rule).
    R16StaleAllow,
    /// R17: discarded `Result` (`let _ =`) from a workspace call, or a
    /// unit newtype flowing into unit-dropping arithmetic.
    R17DiscardedResult,
    /// R18: match/if arms in trace-affecting code whose RNG-draw counts
    /// differ, misaligning the seeded stream across replays.
    R18BranchDivergentRng,
    /// R19: the committed determinism certificate diverges from what the
    /// analysis proves.
    R19DeterminismCertificate,
}

impl Rule {
    /// All rule kinds, in id order.
    pub const ALL: [Rule; 19] = [
        Rule::R1NondeterministicEntropy,
        Rule::R2RawFloatEq,
        Rule::R3ErrorEnumExhaustive,
        Rule::R4PrintInLibrary,
        Rule::R5MissingFiniteGuard,
        Rule::R6UnitDiscipline,
        Rule::R7ConstraintOrder,
        Rule::R8RngThreading,
        Rule::R9UnorderedCollections,
        Rule::R10WallClockFlow,
        Rule::R11RngFlow,
        Rule::R12ConcurrencyBoundary,
        Rule::R13CheckpointHeader,
        Rule::R14OrderSensitiveReduction,
        Rule::R15PanicPath,
        Rule::R16StaleAllow,
        Rule::R17DiscardedResult,
        Rule::R18BranchDivergentRng,
        Rule::R19DeterminismCertificate,
    ];

    /// Short id used in reports and `analyze::allow(..)` markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1NondeterministicEntropy => "R1",
            Rule::R2RawFloatEq => "R2",
            Rule::R3ErrorEnumExhaustive => "R3",
            Rule::R4PrintInLibrary => "R4",
            Rule::R5MissingFiniteGuard => "R5",
            Rule::R6UnitDiscipline => "R6",
            Rule::R7ConstraintOrder => "R7",
            Rule::R8RngThreading => "R8",
            Rule::R9UnorderedCollections => "R9",
            Rule::R10WallClockFlow => "R10",
            Rule::R11RngFlow => "R11",
            Rule::R12ConcurrencyBoundary => "R12",
            Rule::R13CheckpointHeader => "R13",
            Rule::R14OrderSensitiveReduction => "R14",
            Rule::R15PanicPath => "R15",
            Rule::R16StaleAllow => "R16",
            Rule::R17DiscardedResult => "R17",
            Rule::R18BranchDivergentRng => "R18",
            Rule::R19DeterminismCertificate => "R19",
        }
    }

    /// The rule with this id, if any.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// Human-readable slug.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::R1NondeterministicEntropy => "nondeterministic-entropy",
            Rule::R2RawFloatEq => "raw-float-eq",
            Rule::R3ErrorEnumExhaustive => "error-enum-exhaustive",
            Rule::R4PrintInLibrary => "print-in-library",
            Rule::R5MissingFiniteGuard => "missing-finite-guard",
            Rule::R6UnitDiscipline => "unit-of-measure",
            Rule::R7ConstraintOrder => "constraint-before-objective",
            Rule::R8RngThreading => "rng-threading",
            Rule::R9UnorderedCollections => "unordered-collections",
            Rule::R10WallClockFlow => "wall-clock-flow",
            Rule::R11RngFlow => "rng-flow",
            Rule::R12ConcurrencyBoundary => "concurrency-boundary",
            Rule::R13CheckpointHeader => "checkpoint-header-completeness",
            Rule::R14OrderSensitiveReduction => "order-sensitive-reduction",
            Rule::R15PanicPath => "panic-path",
            Rule::R16StaleAllow => "stale-allow",
            Rule::R17DiscardedResult => "discarded-result",
            Rule::R18BranchDivergentRng => "branch-divergent-rng",
            Rule::R19DeterminismCertificate => "determinism-certificate",
        }
    }

    /// The default severity of the rule's findings. R14's narrow
    /// detector can flag sequential loops that are deterministic *today*
    /// (the hazard is the future refactor), R16 flags dead escape hatches
    /// (hygiene, not breakage), and R18's draw-count comparison cannot
    /// see through helper calls — those three report as warnings; every
    /// other rule flags a present violation.
    pub fn severity(self) -> Severity {
        match self {
            Rule::R14OrderSensitiveReduction
            | Rule::R16StaleAllow
            | Rule::R18BranchDivergentRng => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description of the invariant the rule protects.
    pub fn description(self) -> &'static str {
        match self {
            Rule::R1NondeterministicEntropy => {
                "search paths must draw randomness only from explicitly seeded RNGs"
            }
            Rule::R2RawFloatEq => {
                "objective/constraint floats are ordered with total_cmp, never raw == or panicking partial_cmp"
            }
            Rule::R3ErrorEnumExhaustive => "public error enums stay extensible via #[non_exhaustive]",
            Rule::R4PrintInLibrary => "library crates never write to stdout/stderr",
            Rule::R5MissingFiniteGuard => {
                "numerical boundaries carry debug_assert_finite! guards against NaN/Inf"
            }
            Rule::R6UnitDiscipline => {
                "f64 physical quantities carry unit suffixes or typed newtypes, and arithmetic never mixes units"
            }
            Rule::R7ConstraintOrder => {
                "acquisition paths evaluate the cheap hardware-constraint indicator before the expensive objective"
            }
            Rule::R8RngThreading => {
                "RNGs are constructed only at declared seeded roots and passed &mut everywhere else"
            }
            Rule::R9UnorderedCollections => {
                "trace-affecting crates use ordered collections (BTreeMap/BTreeSet), never randomized-iteration hash types"
            }
            Rule::R10WallClockFlow => {
                "no call path from deterministic code into wall-clock reads outside declared timing sinks"
            }
            Rule::R11RngFlow => {
                "no call path from non-root files into RNG-constructing functions; streams are threaded from seeded roots"
            }
            Rule::R12ConcurrencyBoundary => {
                "concurrency primitives live only in the executor boundary, and trace writes only in the commit path"
            }
            Rule::R13CheckpointHeader => {
                "every semantic executor knob is recorded in the checkpoint-header run identity"
            }
            Rule::R14OrderSensitiveReduction => {
                "loop float accumulation goes through blessed ordered-reduction helpers"
            }
            Rule::R15PanicPath => {
                "code reachable from the executor commit path uses checked indexing/arithmetic and never unreachable!"
            }
            Rule::R16StaleAllow => {
                "every analyze::allow marker still suppresses a live finding; dead escape hatches are removed"
            }
            Rule::R17DiscardedResult => {
                "trace-affecting code never discards workspace Results or drops units via bare newtype arithmetic"
            }
            Rule::R18BranchDivergentRng => {
                "branch arms in trace-affecting code draw from the RNG the same number of times"
            }
            Rule::R19DeterminismCertificate => {
                "the committed determinism certificate matches the facts the analysis proves, byte for byte"
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (1 for file-level findings).
    pub line: usize,
    /// Trimmed source excerpt (empty for file-level findings).
    pub excerpt: String,
    /// Explanation of the violation.
    pub message: String,
}

/// The result of an analysis run.
#[derive(Debug, Clone)]
pub struct Report {
    /// All findings, sorted by (file, line, rule id).
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one rule.
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Machine-readable JSON report (hand-rolled: the analyzer is
    /// dependency-free by design). Deterministic: findings are already
    /// sorted by (file, line, rule id) and rules are emitted in id order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"slug\": \"{}\", \"findings\": {}}}{}\n",
                rule.id(),
                rule.slug(),
                self.findings_for(*rule).count(),
                if i + 1 < Rule::ALL.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"excerpt\": \"{}\", \"message\": \"{}\"}}{}\n",
                f.rule.id(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.excerpt),
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Analyzes the library crates of the workspace rooted at `root`.
///
/// Scans `crates/<name>/src/**/*.rs` for each name in [`LIBRARY_CRATES`]
/// (crates absent from the tree are skipped, so the pass also works on
/// the scratch workspaces the unit tests build), then runs both analysis
/// phases via [`analyze_files`].
pub fn analyze_workspace(root: &Path) -> Result<Report> {
    analyze_workspace_with(root, false)
}

/// Like [`analyze_workspace`], with `include_self` additionally scanning
/// the analyzer's own sources (`crates/analyze/src`, minus `main.rs`,
/// which owns stdout) — the CI self-analysis job.
pub fn analyze_workspace_with(root: &Path, include_self: bool) -> Result<Report> {
    let files = load_workspace_files(root, include_self)?;
    let committed = std::fs::read_to_string(root.join(certificate::CERTIFICATE_FILE)).ok();
    Ok(analyze_files(&files, committed.as_deref()))
}

/// Generates the determinism certificate for the workspace at `root`
/// (the bytes `--write-certificate` commits), or `None` when no
/// trace-affecting crate exists.
pub fn generate_certificate(root: &Path) -> Result<Option<String>> {
    let files = load_workspace_files(root, false)?;
    let findings = pre_certificate_findings(&files);
    Ok(certificate::generate(&files, &findings))
}

fn load_workspace_files(root: &Path, include_self: bool) -> Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut crates: Vec<&str> = LIBRARY_CRATES.to_vec();
    if include_self {
        crates.push("analyze");
    }
    for krate in crates {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for path in scan::rust_files(&src)? {
            if krate == "analyze" && path.file_name().is_some_and(|n| n == "main.rs") {
                continue;
            }
            files.push(SourceFile::load(root, &path)?);
        }
    }
    Ok(files)
}

/// Analyzes in-memory sources: `(workspace-relative path, text)` pairs.
/// This is the disk-free twin of [`analyze_workspace`], used by the
/// fixture corpus and the throughput bench; paths still determine rule
/// scope (trace crates, roots, boundaries), so fixtures choose them
/// deliberately. A source whose path is `determinism-certificate.json`
/// is not scanned as code — it plays the committed certificate, enabling
/// R19 (without one, R19 stays off so corpora need no certificate).
pub fn analyze_sources(sources: &[(&str, &str)]) -> Report {
    let committed = sources
        .iter()
        .find(|(path, _)| *path == certificate::CERTIFICATE_FILE)
        .map(|(_, text)| *text);
    let files: Vec<SourceFile> = sources
        .iter()
        .filter(|(path, _)| *path != certificate::CERTIFICATE_FILE)
        .map(|(path, text)| SourceFile::from_source(PathBuf::from(path), text))
        .collect();
    analyze_files_inner(&files, committed, committed.is_some())
}

/// Every rule that runs before the certificate layer (R1–R15, R17, R18):
/// the per-file rules, R5 guard sites, the symbol-graph rules, and the
/// flow-sensitive rules.
fn pre_certificate_findings(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        rules::apply_rules(file, &mut findings);
    }
    for (rel, what) in rules::GUARD_SITES {
        if let Some(file) = files
            .iter()
            .find(|f| f.rel_path.to_string_lossy().replace('\\', "/") == *rel)
        {
            rules::check_finite_guard(file, what, &mut findings);
        }
    }

    let index = index::ItemIndex::build(files);
    let graph = graph::CallGraph::build(&index);
    rules::apply_workspace_rules(files, &index, &graph, &mut findings);
    findings
}

/// All analysis phases over already-scanned files. `committed_cert` is
/// the committed determinism certificate, if one exists on disk.
fn analyze_files(files: &[SourceFile], committed_cert: Option<&str>) -> Report {
    analyze_files_inner(files, committed_cert, true)
}

fn analyze_files_inner(
    files: &[SourceFile],
    committed_cert: Option<&str>,
    check_cert: bool,
) -> Report {
    let mut findings = pre_certificate_findings(files);

    // R19 after every fact-backing rule; R16 last, once every rule that
    // can consume an allow marker has run.
    if check_cert {
        let so_far = findings.clone();
        certificate::check(committed_cert, files, &so_far, &mut findings);
    }
    for file in files {
        rules::stale_allow::check(file, &mut findings);
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id()))
    });
    Report {
        findings,
        files_scanned: files.len(),
    }
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`. Used by the binary so it works from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A scratch workspace on disk, deleted on drop. Unique names come
    /// from the pid plus a process-wide counter (no clock needed).
    struct Scratch {
        root: PathBuf,
    }

    impl Scratch {
        fn new() -> Self {
            static COUNTER: AtomicU32 = AtomicU32::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let root = std::env::temp_dir().join(format!(
                "hyperpower-analyze-test-{}-{n}",
                std::process::id()
            ));
            std::fs::create_dir_all(&root).unwrap();
            Scratch { root }
        }

        fn write(&self, rel: &str, text: &str) {
            let path = self.root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn clean_scratch_workspace_is_clean() {
        let ws = Scratch::new();
        ws.write(
            "crates/gp/src/lib.rs",
            "pub fn posterior(x: f64) -> f64 { x + 1.0 }\n",
        );
        let report = analyze_workspace(&ws.root).unwrap();
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn seeded_violations_are_all_detected() {
        // A scratch workspace seeded with one violation per rule kind; the
        // analyzer must find every one of them.
        let ws = Scratch::new();
        ws.write(
            "crates/core/src/methods.rs",
            concat!(
                "use std::time::SystemTime;\n",     // R1
                "use std::collections::HashMap;\n", // R9
                "use std::sync::Mutex;\n",          // R12
                "pub fn pick(xs: &[f64]) -> usize {\n",
                "    xs.iter().enumerate()\n",
                "        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())\n", // R2
                "        .map(|(i, _)| i).unwrap_or(0)\n",
                "}\n",
                "pub fn warn() { eprintln!(\"slow convergence\"); }\n", // R4
                "#[derive(Debug)]\n",
                "pub enum SearchError { Budget }\n",   // R3
                "pub struct Row { pub power: f64 }\n", // R6
                "fn score(&self) -> f64 {\n",
                "    let e = expected_improvement_at(m, s, best);\n", // R7
                "    e * self.acquisition_weight(z)\n",
                "}\n",
                "fn fork() { let r = StdRng::seed_from_u64(1); }\n", // R8
                "fn refork() { fork(); }\n",                         // R11
                "fn tick() -> u64 { let _t = SystemTime::now(); 0 }\n",
                "fn tock() -> u64 { tick() }\n", // R10
                "fn accumulate(xs: &[f64]) -> f64 {\n",
                "    let mut acc = 0.0;\n",
                "    for x in xs { acc += x; }\n", // R14
                "    acc\n",
                "}\n",
                // R16: a grant that suppresses nothing.
                "// analyze::allow(R1)\n",
                "pub fn quiet_tick() {}\n",
                // R17: a workspace Result discarded with `let _ =`.
                "pub fn persist_trace() -> Result<(), u8> { Ok(()) }\n",
                "pub fn on_exit() { let _ = persist_trace(); }\n",
                // R18: arms drawing 1 vs 0 values from the shared stream.
                "fn jitter(&mut self, hot: bool) -> f64 {\n",
                "    if hot { self.rng.random_range(0.0..1.0) } else { 0.0 }\n",
                "}\n",
            ),
        );
        // R5: a declared guard site present but without the marker.
        ws.write("crates/core/src/model.rs", "pub fn fit() {}\n");
        // R13: an options struct with an undeclared knob (and no header
        // file at all). R15: a commit root with an unprovable index.
        ws.write(
            "crates/core/src/executor.rs",
            concat!(
                "pub struct ExecutorOptions {\n    pub workers: usize,\n    pub mystery_knob: u64,\n}\n",
                "pub fn commit(&mut self) {\n",
                "    self.samples.push(self.tasks[self.cursor]);\n",
                "}\n",
            ),
        );
        // R19 fires on the missing determinism certificate (trace crates
        // are analyzed but no determinism-certificate.json is committed).

        let report = analyze_workspace(&ws.root).unwrap();
        for rule in Rule::ALL {
            assert!(
                report.findings_for(rule).count() >= 1,
                "rule {} did not fire on its seeded violation; findings: {:?}",
                rule.id(),
                report.findings
            );
        }
    }

    #[test]
    fn allow_marker_suppresses_seeded_violation() {
        let ws = Scratch::new();
        ws.write(
            "crates/nn/src/lib.rs",
            "// analyze::allow(R4)\npub fn log() { eprintln!(\"x\"); }\n",
        );
        let report = analyze_workspace(&ws.root).unwrap();
        assert!(report.is_clean(), "findings: {:?}", report.findings);
    }

    #[test]
    fn findings_are_sorted_and_json_is_wellformed() {
        let ws = Scratch::new();
        ws.write(
            "crates/linalg/src/b.rs",
            "pub fn f() { println!(\"b\"); }\n",
        );
        ws.write(
            "crates/linalg/src/a.rs",
            "pub fn g() { println!(\"a\"); }\npub fn h() { dbg!(1); }\n",
        );
        let report = analyze_workspace(&ws.root).unwrap();
        let files: Vec<_> = report.findings.iter().map(|f| f.file.clone()).collect();
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);

        let json = report.to_json();
        assert!(json.contains("\"rule\": \"R4\""));
        assert!(json.contains("\"files_scanned\": 2"));
        // Balanced braces is a cheap well-formedness smoke check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        // Determinism regression: two full analyses of the same tree must
        // serialise identically in every format.
        let ws = Scratch::new();
        ws.write(
            "crates/core/src/lib.rs",
            "pub struct R { pub power: f64 }\npub fn f() { println!(\"x\"); }\n",
        );
        ws.write(
            "crates/nn/src/lib.rs",
            "fn g() { let r = StdRng::seed_from_u64(1); }\n",
        );
        let a = analyze_workspace(&ws.root).unwrap();
        let b = analyze_workspace(&ws.root).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(sarif::to_sarif(&a), sarif::to_sarif(&b));
        assert_eq!(
            baseline::Baseline::from_report(&a).to_json(),
            baseline::Baseline::from_report(&b).to_json()
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn workspace_root_discovery() {
        let ws = Scratch::new();
        ws.write("Cargo.toml", "[workspace]\nmembers = []\n");
        ws.write("crates/gp/src/lib.rs", "pub fn f() {}\n");
        let nested = ws.root.join("crates/gp/src");
        assert_eq!(find_workspace_root(&nested), Some(ws.root.clone()));
    }

    #[test]
    fn real_workspace_matches_baseline() {
        // The tier-1 gate: the actual repository must match its committed
        // findings baseline exactly — no new findings, no stale grants.
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = match find_workspace_root(&here) {
            Some(r) => r,
            None => panic!("workspace root not found above {}", here.display()),
        };
        let report = analyze_workspace(&root).unwrap();
        let base = baseline::Baseline::load(&root.join(baseline::BASELINE_FILE)).unwrap();
        let drift = base.diff(&report);
        assert!(
            drift.is_empty(),
            "static-analysis drift against {}:\n{}\ncurrent findings:\n{}",
            baseline::BASELINE_FILE,
            drift.describe(),
            report
                .findings
                .iter()
                .map(|f| format!("  [{}] {}:{} {}", f.rule.id(), f.file, f.line, f.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned >= 10, "scanned too few files");
    }
}
