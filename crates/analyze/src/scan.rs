//! Source-file model for the analyzer.
//!
//! Parses a Rust source file just deeply enough for reliable line-level
//! pattern rules: comments and string literals are blanked out (so a
//! forbidden token inside an error message never counts), `#[cfg(test)]`
//! regions are marked (test code is exempt from most rules), and
//! `// analyze::allow(<rule>)` escape-hatch markers are collected.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::{Error, Result};

/// One scanned line of source.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw text, untouched.
    pub raw: String,
    /// The text with comments and string/char literals blanked to spaces.
    /// Pattern rules match against this.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Rule ids (`"R1"`…) allowed on this line via the escape hatch.
    pub allowed: HashSet<String>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// The scanned lines, in order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Loads and scans one file. `root` is the workspace root used to
    /// relativise the path in findings.
    pub fn load(root: &Path, path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_path_buf();
        Ok(Self::from_source(rel_path, &text))
    }

    /// Scans source text (exposed for unit tests).
    pub fn from_source(rel_path: PathBuf, text: &str) -> Self {
        let stripped = strip_comments_and_strings(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let code_lines: Vec<&str> = stripped.lines().collect();

        // Pass 1: brace depth at the start of each line + cfg(test) regions.
        let mut in_test_flags = vec![false; raw_lines.len()];
        let mut depth: i64 = 0;
        // Depth at which the innermost active #[cfg(test)] region opened;
        // None when outside any test region.
        let mut test_region_depth: Option<i64> = None;
        let mut pending_cfg_test = false;
        for (i, code) in code_lines.iter().enumerate() {
            let entering_depth = depth;
            let opens = code.matches('{').count() as i64;
            let closes = code.matches('}').count() as i64;

            if let Some(d) = test_region_depth {
                in_test_flags[i] = true;
                // Region ends when the closing brace returns us to its depth.
                if entering_depth + opens - closes <= d {
                    // The line containing the closing brace is still "test".
                    if entering_depth - closes < d || closes > 0 {
                        test_region_depth =
                            if entering_depth + opens - closes <= d && closes >= opens {
                                None
                            } else {
                                test_region_depth
                            };
                    }
                    if entering_depth + opens - closes <= d {
                        test_region_depth = None;
                    }
                }
            } else if pending_cfg_test {
                // The attribute applies to the next item; once we see its
                // opening brace the region starts.
                in_test_flags[i] = true;
                if opens > closes {
                    test_region_depth = Some(entering_depth);
                    pending_cfg_test = false;
                } else if !code.trim().is_empty() && !code.trim_start().starts_with("#[") {
                    // An item without a body (e.g. `mod tests;`): the
                    // attribute consumed, no region to track.
                    pending_cfg_test = false;
                }
            }

            if test_region_depth.is_none() && code.contains("cfg(test)") && code.contains("#[") {
                in_test_flags[i] = true;
                pending_cfg_test = true;
            }

            depth = entering_depth + opens - closes;
        }

        // Pass 2: allow markers. A marker covers its own line and the next.
        let mut allows: Vec<HashSet<String>> = vec![HashSet::new(); raw_lines.len()];
        for (i, raw) in raw_lines.iter().enumerate() {
            if let Some(ids) = parse_allow_marker(raw) {
                for id in &ids {
                    allows[i].insert(id.clone());
                }
                if i + 1 < raw_lines.len() {
                    for id in ids {
                        allows[i + 1].insert(id);
                    }
                }
            }
        }

        let lines = raw_lines
            .iter()
            .enumerate()
            .map(|(i, raw)| Line {
                number: i + 1,
                raw: (*raw).to_string(),
                code: code_lines.get(i).copied().unwrap_or("").to_string(),
                in_test: in_test_flags[i],
                allowed: std::mem::take(&mut allows[i]),
            })
            .collect();
        SourceFile { rel_path, lines }
    }
}

/// Extracts rule ids from an `analyze::allow(R1, R4)` marker, if present.
fn parse_allow_marker(line: &str) -> Option<Vec<String>> {
    let idx = line.find("analyze::allow(")?;
    let rest = &line[idx + "analyze::allow(".len()..];
    let close = rest.find(')')?;
    let ids = rest[..close]
        .split(',')
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// Blanks comments, string literals and char literals to spaces, preserving
/// line structure so line numbers survive. Handles `//`, `/* */` (nested),
/// `"…"` with escapes, raw strings `r"…"` / `r#"…"#`, and char literals
/// (without mistaking lifetimes for them).
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }

    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"…" or r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with ' a
                    // character or escape later; a lifetime never does.
                    let close_at = if next == Some('\\') {
                        // escaped char: '\x7f', '\n', '\'', …
                        (i + 2..chars.len().min(i + 8)).find(|&j| chars[j] == '\'')
                    } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                        Some(i + 2)
                    } else {
                        None
                    };
                    if let Some(end) = close_at {
                        for _ in i..=end {
                            out.push(' ');
                        }
                        i = end + 1;
                        continue;
                    }
                    out.push(c); // lifetime tick
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(nesting) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = if nesting == 1 {
                        State::Code
                    } else {
                        State::BlockComment(nesting - 1)
                    };
                    continue;
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = State::BlockComment(nesting + 1);
                    continue;
                } else {
                    out.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    out.push(' ');
                    state = State::Code;
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let all_hashes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if all_hashes {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += hashes + 1;
                        state = State::Code;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rust_files(dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|source| Error::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| Error::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("x.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let a = \"thread_rng\"; // thread_rng\nlet b = 1;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].raw.contains("thread_rng"));
        assert!(f.lines[1].code.contains("let b"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("a /* x\ny */ b\n");
        assert!(f.lines[0].code.starts_with('a'));
        assert!(!f.lines[1].code.contains('y'));
        assert!(f.lines[1].code.contains('b'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let s = r#\"println!(\"hi\")\"#; call();\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let f = scan("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }\n");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[0].code.contains('y'));
        // The quote char literal must not open a string state.
        assert!(f.lines[0].code.contains("let d"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let text = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let f = scan(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the test module is live");
    }

    #[test]
    fn nested_braces_inside_test_module() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { if x { y(); } }\n}\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn allow_marker_covers_line_and_next() {
        let text = "// analyze::allow(R1)\nuse x::thread_rng;\nuse y::z;\n";
        let f = scan(text);
        assert!(f.lines[0].allowed.contains("R1"));
        assert!(f.lines[1].allowed.contains("R1"));
        assert!(f.lines[2].allowed.is_empty());
    }

    #[test]
    fn allow_marker_multiple_rules() {
        let f = scan("let x = 1; // analyze::allow(R2, r4)\n");
        assert!(f.lines[0].allowed.contains("R2"));
        assert!(f.lines[0].allowed.contains("R4"));
    }
}
