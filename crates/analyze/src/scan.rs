//! Source-file model for the analyzer.
//!
//! Parses a Rust source file just deeply enough for reliable token-level
//! rules: comments and string literals are blanked out (so a forbidden
//! token inside an error message never counts), the remaining text is
//! tokenized (see [`crate::token`]), `#[cfg(test)]` regions are marked
//! from the token stream (test code is exempt from most rules), and
//! `// analyze::allow(<rule>)` escape-hatch markers are collected.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::token::{matching_close, tokenize, Token};
use crate::{Error, Result};

/// One scanned line of source.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw text, untouched.
    pub raw: String,
    /// The text with comments and string/char literals blanked to spaces.
    /// Pattern rules match against this.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Rule ids (`"R1"`…) allowed on this line via the escape hatch.
    pub allowed: HashSet<String>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// The scanned lines, in order.
    pub lines: Vec<Line>,
    /// The token stream of the stripped source (comments/strings blanked
    /// before lexing, so their contents never produce tokens).
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Loads and scans one file. `root` is the workspace root used to
    /// relativise the path in findings.
    pub fn load(root: &Path, path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let rel_path = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        Ok(Self::from_source(rel_path, &text))
    }

    /// Scans source text (exposed for unit tests).
    pub fn from_source(rel_path: PathBuf, text: &str) -> Self {
        let stripped = strip_comments_and_strings(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let code_lines: Vec<&str> = stripped.lines().collect();
        let tokens = tokenize(&stripped);

        let in_test_flags = test_region_lines(&tokens, raw_lines.len());

        // Allow markers: a marker covers its own line and the next.
        let mut allows: Vec<HashSet<String>> = vec![HashSet::new(); raw_lines.len()];
        for (i, raw) in raw_lines.iter().enumerate() {
            if let Some(ids) = parse_allow_marker(raw) {
                for id in &ids {
                    allows[i].insert(id.clone());
                }
                if i + 1 < raw_lines.len() {
                    for id in ids {
                        allows[i + 1].insert(id);
                    }
                }
            }
        }

        let lines = raw_lines
            .iter()
            .enumerate()
            .map(|(i, raw)| Line {
                number: i + 1,
                raw: (*raw).to_string(),
                code: code_lines.get(i).copied().unwrap_or("").to_string(),
                in_test: in_test_flags.get(i).copied().unwrap_or(false),
                allowed: std::mem::take(&mut allows[i]),
            })
            .collect();
        SourceFile {
            rel_path,
            lines,
            tokens,
        }
    }

    /// Whether `line` (1-based) sits inside a `#[cfg(test)]` region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.in_test)
    }

    /// Whether `rule_id` is allowed on `line` (1-based) via the escape
    /// hatch.
    pub fn line_allowed(&self, line: usize, rule_id: &str) -> bool {
        self.lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.allowed.contains(rule_id))
    }

    /// A token's line is exempt from a rule when it is test code or the
    /// rule is explicitly allowed there.
    pub fn token_exempt(&self, token: &Token, rule_id: &str) -> bool {
        self.line_in_test(token.line) || self.line_allowed(token.line, rule_id)
    }

    /// The raw text of a 1-based line, trimmed, for finding excerpts.
    pub fn excerpt_at(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| crate::rules::excerpt(&l.raw))
            .unwrap_or_default()
    }
}

/// Computes, from the token stream, which lines fall inside a
/// `#[cfg(test)]` region: the attribute itself, any stacked attributes,
/// and the annotated item through its closing brace (or terminating
/// semicolon for body-less items). Token-based matching handles the cases
/// a line scanner silently misses: the attribute and the item's opening
/// brace on one line (`#[cfg(test)] mod t { … }`), stacked attributes,
/// and brace counts confused by braces in (already-blanked) strings.
///
/// `#[cfg(...)]` groups mentioning `not` (e.g. `#[cfg(not(test))]`) are
/// *not* test regions: that code is live in production builds and must
/// stay checked.
fn test_region_lines(tokens: &[Token], line_count: usize) -> Vec<bool> {
    let mut flags = vec![false; line_count];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(tokens, i + 1, "[", "]") else {
            break;
        };
        let group = &tokens[i + 2..close];
        let is_cfg_test = group.iter().any(|t| t.is_ident("cfg"))
            && group.iter().any(|t| t.is_ident("test"))
            && !group.iter().any(|t| t.is_ident("not"));
        if !is_cfg_test {
            i = close + 1;
            continue;
        }

        let start_line = tokens[i].line;
        // Skip stacked attributes on the same item.
        let mut j = close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            match matching_close(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item extends to its matching close brace, or to the first
        // semicolon for body-less items (`mod tests;`, `use …;`).
        let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct(";") {
                end_line = tokens[k].line;
                break;
            }
            if tokens[k].is_punct("{") {
                match matching_close(tokens, k, "{", "}") {
                    Some(c) => {
                        end_line = tokens[c].line;
                        k = c;
                    }
                    None => {
                        // Unbalanced (mid-edit source): mark to EOF.
                        end_line = line_count;
                    }
                }
                break;
            }
            k += 1;
        }
        for line in start_line..=end_line.min(line_count) {
            flags[line - 1] = true;
        }
        i = k.max(j) + 1;
    }
    flags
}

/// Extracts rule ids from an `analyze::allow(R1, R4)` marker, if present.
pub(crate) fn parse_allow_marker(line: &str) -> Option<Vec<String>> {
    let idx = line.find("analyze::allow(")?;
    let rest = &line[idx + "analyze::allow(".len()..];
    let close = rest.find(')')?;
    let ids = rest[..close]
        .split(',')
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// Blanks comments, string literals and char literals to spaces, preserving
/// line structure so line numbers survive. Handles `//`, `/* */` (nested),
/// `"…"` with escapes, raw strings `r"…"` / `r#"…"#` (and their `br`
/// byte-string forms), and char literals (without mistaking lifetimes for
/// them).
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }

    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"…" or r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with ' a
                    // character or escape later; a lifetime never does.
                    let close_at = if next == Some('\\') {
                        // escaped char: '\x7f', '\n', '\'', …
                        (i + 2..chars.len().min(i + 8)).find(|&j| chars[j] == '\'')
                    } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                        Some(i + 2)
                    } else {
                        None
                    };
                    if let Some(end) = close_at {
                        for _ in i..=end {
                            out.push(' ');
                        }
                        i = end + 1;
                        continue;
                    }
                    out.push(c); // lifetime tick
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(nesting) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = if nesting == 1 {
                        State::Code
                    } else {
                        State::BlockComment(nesting - 1)
                    };
                    continue;
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = State::BlockComment(nesting + 1);
                    continue;
                } else {
                    out.push(' ');
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    out.push(' ');
                    state = State::Code;
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let all_hashes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if all_hashes {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += hashes + 1;
                        state = State::Code;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rust_files(dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|source| Error::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| Error::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("x.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let a = \"thread_rng\"; // thread_rng\nlet b = 1;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].raw.contains("thread_rng"));
        assert!(f.lines[1].code.contains("let b"));
        assert!(!f.tokens.iter().any(|t| t.text == "thread_rng"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("a /* x\ny */ b\n");
        assert!(f.lines[0].code.starts_with('a'));
        assert!(!f.lines[1].code.contains('y'));
        assert!(f.lines[1].code.contains('b'));
    }

    #[test]
    fn nested_block_comments_fully_blanked() {
        // A nested `/* /* */ */` must not resurface code after the inner
        // close: everything through the *outer* close is comment.
        let f = scan("a /* x /* y */ println!(\"z\") */ b\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains('b'));
        // Multi-line nesting.
        let g = scan("/* outer\n/* inner */\nstill_comment\n*/ live();\n");
        assert!(!g.lines[2].code.contains("still_comment"));
        assert!(g.lines[3].code.contains("live"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let s = r#\"println!(\"hi\")\"#; call();\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn multi_hash_raw_strings_are_blanked() {
        // `r##"…"##` may contain a `"#` without closing; only `"##` closes.
        let f = scan("let s = r##\"a \"# b println!()\"##; live();\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains("live()"));
    }

    #[test]
    fn multiline_raw_string_preserves_line_numbers() {
        let f = scan("let s = r#\"first\nthread_rng()\nlast\"#;\nafter();\n");
        assert_eq!(f.lines.len(), 4);
        assert!(!f.lines[1].code.contains("thread_rng"));
        assert!(f.lines[3].code.contains("after"));
        let after = f.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let f = scan("let a = b\"dbg!\"; let c = br#\"eprintln!\"#; live();\n");
        assert!(!f.lines[0].code.contains("dbg"));
        assert!(!f.lines[0].code.contains("eprintln"));
        assert!(f.lines[0].code.contains("live()"));
    }

    #[test]
    fn raw_identifiers_survive_stripping() {
        let f = scan("let r#match = 1; use_it(r#match);\n");
        assert!(f.lines[0].code.contains("match"));
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let f = scan("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }\n");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[0].code.contains('y'));
        // The quote char literal must not open a string state.
        assert!(f.lines[0].code.contains("let d"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let text =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let f = scan(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the test module is live");
    }

    #[test]
    fn cfg_test_inline_mod_on_one_line() {
        // The attribute, the mod and its body on a single line — a silent
        // false-negative source for the old line scanner (the pending
        // attribute was only applied from the *next* line on).
        let text = "#[cfg(test)] mod tests { fn t() { thread_rng(); } }\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[0].in_test, "inline test mod must be marked");
        assert!(!f.lines[1].in_test);
        // Attribute and opening brace on one line, body below.
        let g = scan("#[cfg(test)] mod tests {\n    fn t() {}\n}\nfn live() {}\n");
        assert!(g.lines[0].in_test);
        assert!(g.lines[1].in_test);
        assert!(g.lines[2].in_test);
        assert!(!g.lines[3].in_test);
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let text = "#[cfg(test)]\n#[allow(clippy::float_cmp)]\nmod tests {\n    fn t() {}\n}\nfn live() {}\n";
        let f = scan(text);
        for i in 0..5 {
            assert!(f.lines[i].in_test, "line {} must be test", i + 1);
        }
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let f = scan("#[cfg(not(test))]\nfn live() { x(); }\n");
        assert!(!f.lines[1].in_test, "cfg(not(test)) code is live");
    }

    #[test]
    fn cfg_test_bodyless_item() {
        let f = scan("#[cfg(test)]\nmod tests;\nfn live() {}\n");
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_test_regions() {
        // A stray `}` inside a string used to be invisible to the line
        // scanner too (strings are blanked), but `{` counts from *raw*
        // text would end the region early. Token-based matching is immune.
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { let s = \"}}}\"; }\n}\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn nested_braces_inside_test_module() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { if x { y(); } }\n}\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn allow_marker_covers_line_and_next() {
        let text = "// analyze::allow(R1)\nuse x::thread_rng;\nuse y::z;\n";
        let f = scan(text);
        assert!(f.lines[0].allowed.contains("R1"));
        assert!(f.lines[1].allowed.contains("R1"));
        assert!(f.lines[2].allowed.is_empty());
    }

    #[test]
    fn allow_marker_multiple_rules() {
        let f = scan("let x = 1; // analyze::allow(R2, r4)\n");
        assert!(f.lines[0].allowed.contains("R2"));
        assert!(f.lines[0].allowed.contains("R4"));
    }
}
