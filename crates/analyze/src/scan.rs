//! Source-file model for the analyzer.
//!
//! Parses a Rust source file just deeply enough for reliable token-level
//! rules: comments and string literals are blanked out (so a forbidden
//! token inside an error message never counts), the remaining text is
//! tokenized (see [`crate::token`]), `#[cfg(test)]` regions are marked
//! from the token stream (test code is exempt from most rules), and
//! `// analyze::allow(<rule>)` escape-hatch markers are collected.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashSet};
use std::path::{Path, PathBuf};

use crate::token::{matching_close, tokenize, Token};
use crate::{Error, Result};

/// One scanned line of source.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw text, untouched.
    pub raw: String,
    /// The text with comments and string/char literals blanked to spaces.
    /// Pattern rules match against this.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Rule ids (`"R1"`…) allowed on this line via the escape hatch.
    pub allowed: HashSet<String>,
}

/// One `// analyze::allow(…)` escape-hatch marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-based line the marker sits on (it covers this line and the next).
    pub line: usize,
    /// The rule ids the marker grants, uppercased.
    pub ids: Vec<String>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// The scanned lines, in order.
    pub lines: Vec<Line>,
    /// The token stream of the stripped source (comments/strings blanked
    /// before lexing, so their contents never produce tokens).
    pub tokens: Vec<Token>,
    /// Every allow marker in the file, in line order.
    pub markers: Vec<AllowMarker>,
    /// `(marker line, rule id)` pairs consumed by a rule during analysis
    /// — a marker that suppressed at least one would-be finding. R16
    /// flags the rest as stale. Interior mutability because recording
    /// happens inside the `&self` exemption queries every rule calls.
    used_allows: RefCell<BTreeSet<(usize, String)>>,
}

impl SourceFile {
    /// Loads and scans one file. `root` is the workspace root used to
    /// relativise the path in findings.
    pub fn load(root: &Path, path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let rel_path = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        Ok(Self::from_source(rel_path, &text))
    }

    /// Scans source text (exposed for unit tests).
    pub fn from_source(rel_path: PathBuf, text: &str) -> Self {
        let (stripped, comments) = split_code_and_comments(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let code_lines: Vec<&str> = stripped.lines().collect();
        let comment_lines: Vec<&str> = comments.lines().collect();
        let tokens = tokenize(&stripped);

        let in_test_flags = test_region_lines(&tokens, raw_lines.len());

        // Allow markers: a marker covers its own line and the next.
        let mut allows: Vec<HashSet<String>> = vec![HashSet::new(); raw_lines.len()];
        let mut markers = Vec::new();
        for (i, comment) in comment_lines.iter().enumerate() {
            if let Some(ids) = parse_allow_marker(comment) {
                for id in &ids {
                    allows[i].insert(id.clone());
                }
                if i + 1 < raw_lines.len() {
                    for id in &ids {
                        allows[i + 1].insert(id.clone());
                    }
                }
                markers.push(AllowMarker { line: i + 1, ids });
            }
        }

        let lines = raw_lines
            .iter()
            .enumerate()
            .map(|(i, raw)| Line {
                number: i + 1,
                raw: (*raw).to_string(),
                code: code_lines.get(i).copied().unwrap_or("").to_string(),
                in_test: in_test_flags.get(i).copied().unwrap_or(false),
                allowed: std::mem::take(&mut allows[i]),
            })
            .collect();
        SourceFile {
            rel_path,
            lines,
            tokens,
            markers,
            used_allows: RefCell::new(BTreeSet::new()),
        }
    }

    /// Whether `line` (1-based) sits inside a `#[cfg(test)]` region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.in_test)
    }

    /// Whether `rule_id` is allowed on `line` (1-based) via the escape
    /// hatch. A positive answer marks the granting marker(s) as *used*,
    /// which is what keeps them off R16's stale list.
    pub fn line_allowed(&self, line: usize, rule_id: &str) -> bool {
        let hit = self
            .lines
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.allowed.contains(rule_id));
        if hit {
            let mut used = self.used_allows.borrow_mut();
            for m in &self.markers {
                if (m.line == line || m.line + 1 == line) && m.ids.iter().any(|i| i == rule_id) {
                    used.insert((m.line, rule_id.to_string()));
                }
            }
        }
        hit
    }

    /// Whether any marker in the file grants `rule_id` (file-scope rules
    /// like R5 use this). Like [`Self::line_allowed`], a positive answer
    /// marks the granting marker(s) as used.
    pub fn any_line_allows(&self, rule_id: &str) -> bool {
        let mut hit = false;
        let mut used = self.used_allows.borrow_mut();
        for m in &self.markers {
            if m.ids.iter().any(|i| i == rule_id) {
                used.insert((m.line, rule_id.to_string()));
                hit = true;
            }
        }
        hit
    }

    /// Whether the marker at `marker_line` was consumed for `rule_id`
    /// during analysis (R16's staleness query).
    pub fn allow_used(&self, marker_line: usize, rule_id: &str) -> bool {
        self.used_allows
            .borrow()
            .contains(&(marker_line, rule_id.to_string()))
    }

    /// A token's line is exempt from a rule when it is test code or the
    /// rule is explicitly allowed there.
    pub fn token_exempt(&self, token: &Token, rule_id: &str) -> bool {
        self.line_in_test(token.line) || self.line_allowed(token.line, rule_id)
    }

    /// The raw text of a 1-based line, trimmed, for finding excerpts.
    pub fn excerpt_at(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| crate::rules::excerpt(&l.raw))
            .unwrap_or_default()
    }
}

/// Computes, from the token stream, which lines fall inside a
/// `#[cfg(test)]` region: the attribute itself, any stacked attributes,
/// and the annotated item through its closing brace (or terminating
/// semicolon for body-less items). Token-based matching handles the cases
/// a line scanner silently misses: the attribute and the item's opening
/// brace on one line (`#[cfg(test)] mod t { … }`), stacked attributes,
/// and brace counts confused by braces in (already-blanked) strings.
///
/// `#[cfg(...)]` groups mentioning `not` (e.g. `#[cfg(not(test))]`) are
/// *not* test regions: that code is live in production builds and must
/// stay checked.
fn test_region_lines(tokens: &[Token], line_count: usize) -> Vec<bool> {
    let mut flags = vec![false; line_count];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(tokens, i + 1, "[", "]") else {
            break;
        };
        let group = &tokens[i + 2..close];
        let is_cfg_test = group.iter().any(|t| t.is_ident("cfg"))
            && group.iter().any(|t| t.is_ident("test"))
            && !group.iter().any(|t| t.is_ident("not"));
        if !is_cfg_test {
            i = close + 1;
            continue;
        }

        let start_line = tokens[i].line;
        // Skip stacked attributes on the same item.
        let mut j = close + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            match matching_close(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item extends to its matching close brace, or to the first
        // semicolon for body-less items (`mod tests;`, `use …;`).
        let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct(";") {
                end_line = tokens[k].line;
                break;
            }
            if tokens[k].is_punct("{") {
                match matching_close(tokens, k, "{", "}") {
                    Some(c) => {
                        end_line = tokens[c].line;
                        k = c;
                    }
                    None => {
                        // Unbalanced (mid-edit source): mark to EOF.
                        end_line = line_count;
                    }
                }
                break;
            }
            k += 1;
        }
        for line in start_line..=end_line.min(line_count) {
            flags[line - 1] = true;
        }
        i = k.max(j) + 1;
    }
    flags
}

/// Extracts rule ids from an `analyze::allow(R1, R4)` marker, if present.
///
/// Two guards keep prose from becoming policy: doc-comment lines (`///`,
/// `//!`) never carry markers — rustdoc that *mentions* the escape hatch
/// must not silently grant it — and every id must be rule-shaped (`R`
/// plus digits), so source that merely contains the marker string (the
/// analyzer's own parser, say) doesn't register garbage grants.
pub(crate) fn parse_allow_marker(line: &str) -> Option<Vec<String>> {
    let lead = line.trim_start();
    if lead.starts_with("///") || lead.starts_with("//!") {
        return None;
    }
    let idx = line.find("analyze::allow(")?;
    let rest = &line[idx + "analyze::allow(".len()..];
    let close = rest.find(')')?;
    let ids = rest[..close]
        .split(',')
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| is_rule_shaped(s))
        .collect::<Vec<_>>();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// `R` followed by one or more digits — the only id shape markers accept.
pub(crate) fn is_rule_shaped(id: &str) -> bool {
    let mut chars = id.chars();
    chars.next() == Some('R') && {
        let rest: Vec<char> = chars.collect();
        !rest.is_empty() && rest.iter().all(|c| c.is_ascii_digit())
    }
}

/// Splits source text into a *code* stream and a *comments* stream, both
/// position-preserving (same line structure, same column offsets).
///
/// In the code stream, comments and string/char-literal contents become
/// spaces, so tokenization and line-based rules can never fire inside
/// them. In the comments stream only comment text survives (including
/// its `//`, `//!`, `///`, `/*` introducers) — everything else becomes
/// spaces — so `analyze::allow` markers are parsed from *comments only*:
/// a string literal that merely mentions the marker (the analyzer's own
/// finding messages, say) must not register a grant.
fn split_code_and_comments(text: &str) -> (String, String) {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }

    let mut out = String::with_capacity(text.len());
    let mut com = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    com.push('/');
                    com.push('/');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    com.push('/');
                    com.push('*');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                    com.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"…" or r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                            com.push(' ');
                        }
                        i = j + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                    com.push(' ');
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with ' a
                    // character or escape later; a lifetime never does.
                    let close_at = if next == Some('\\') {
                        // Escaped char. The escape payload starts at i+2, so
                        // the close search must begin at i+3 — starting at
                        // i+2 made `'\''` blank the wrong span (the escaped
                        // quote matched first, leaving a stray tick that
                        // tokenized as a bogus lifetime).
                        match chars.get(i + 2) {
                            // '\u{…}': up to six hex digits, then `}` then
                            // the closing quote. A fixed 8-char window cut
                            // long escapes like '\u{1F600}' short, leaking
                            // the literal's braces into stripped code.
                            Some('u') if chars.get(i + 3) == Some(&'{') => (i + 4
                                ..chars.len().min(i + 12))
                                .find(|&j| chars[j] == '}')
                                .filter(|&j| chars.get(j + 1) == Some(&'\''))
                                .map(|j| j + 1),
                            // '\n', '\'', '\\', '\x7f', …
                            Some(_) => (i + 3..chars.len().min(i + 9)).find(|&j| chars[j] == '\''),
                            None => None,
                        }
                    } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                        Some(i + 2)
                    } else {
                        None
                    };
                    if let Some(end) = close_at {
                        for _ in i..=end {
                            out.push(' ');
                            com.push(' ');
                        }
                        i = end + 1;
                        continue;
                    }
                    out.push(c); // lifetime tick
                    com.push(' ');
                }
                '\n' => {
                    out.push('\n');
                    com.push('\n');
                }
                _ => {
                    out.push(c);
                    com.push(' ');
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                    com.push('\n');
                } else {
                    out.push(' ');
                    com.push(c);
                }
            }
            State::BlockComment(nesting) => {
                if c == '\n' {
                    out.push('\n');
                    com.push('\n');
                } else if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    com.push('*');
                    com.push('/');
                    i += 2;
                    state = if nesting == 1 {
                        State::Code
                    } else {
                        State::BlockComment(nesting - 1)
                    };
                    continue;
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    out.push(' ');
                    com.push('/');
                    com.push('*');
                    i += 2;
                    state = State::BlockComment(nesting + 1);
                    continue;
                } else {
                    out.push(' ');
                    com.push(c);
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    com.push(' ');
                    if next.is_some() {
                        let nl = if next == Some('\n') { '\n' } else { ' ' };
                        out.push(nl);
                        com.push(nl);
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    out.push(' ');
                    com.push(' ');
                    state = State::Code;
                }
                '\n' => {
                    out.push('\n');
                    com.push('\n');
                }
                _ => {
                    out.push(' ');
                    com.push(' ');
                }
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let all_hashes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if all_hashes {
                        for _ in 0..=hashes {
                            out.push(' ');
                            com.push(' ');
                        }
                        i += hashes + 1;
                        state = State::Code;
                        continue;
                    }
                    out.push(' ');
                    com.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                    com.push('\n');
                } else {
                    out.push(' ');
                    com.push(' ');
                }
            }
        }
        i += 1;
    }
    (out, com)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rust_files(dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|source| Error::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| Error::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("x.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let a = \"thread_rng\"; // thread_rng\nlet b = 1;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].raw.contains("thread_rng"));
        assert!(f.lines[1].code.contains("let b"));
        assert!(!f.tokens.iter().any(|t| t.text == "thread_rng"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("a /* x\ny */ b\n");
        assert!(f.lines[0].code.starts_with('a'));
        assert!(!f.lines[1].code.contains('y'));
        assert!(f.lines[1].code.contains('b'));
    }

    #[test]
    fn nested_block_comments_fully_blanked() {
        // A nested `/* /* */ */` must not resurface code after the inner
        // close: everything through the *outer* close is comment.
        let f = scan("a /* x /* y */ println!(\"z\") */ b\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains('b'));
        // Multi-line nesting.
        let g = scan("/* outer\n/* inner */\nstill_comment\n*/ live();\n");
        assert!(!g.lines[2].code.contains("still_comment"));
        assert!(g.lines[3].code.contains("live"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let s = r#\"println!(\"hi\")\"#; call();\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn multi_hash_raw_strings_are_blanked() {
        // `r##"…"##` may contain a `"#` without closing; only `"##` closes.
        let f = scan("let s = r##\"a \"# b println!()\"##; live();\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(f.lines[0].code.contains("live()"));
    }

    #[test]
    fn multiline_raw_string_preserves_line_numbers() {
        let f = scan("let s = r#\"first\nthread_rng()\nlast\"#;\nafter();\n");
        assert_eq!(f.lines.len(), 4);
        assert!(!f.lines[1].code.contains("thread_rng"));
        assert!(f.lines[3].code.contains("after"));
        let after = f.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let f = scan("let a = b\"dbg!\"; let c = br#\"eprintln!\"#; live();\n");
        assert!(!f.lines[0].code.contains("dbg"));
        assert!(!f.lines[0].code.contains("eprintln"));
        assert!(f.lines[0].code.contains("live()"));
    }

    #[test]
    fn raw_identifiers_survive_stripping() {
        let f = scan("let r#match = 1; use_it(r#match);\n");
        assert!(f.lines[0].code.contains("match"));
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let f = scan("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }\n");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[0].code.contains('y'));
        // The quote char literal must not open a string state.
        assert!(f.lines[0].code.contains("let d"));
    }

    #[test]
    fn escaped_quote_char_literal_leaves_no_stray_tick() {
        // `'\''` used to blank the wrong span (the escaped quote matched
        // the close search), leaving a stray `'` that tokenized as a
        // bogus lifetime and shifted every later token.
        let f = scan("let q = '\\''; let d = '\\\\'; fn g<'a>(x: &'a str) {}\n");
        use crate::token::TokenKind;
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"], "tokens: {:?}", f.tokens);
        assert!(f.lines[0].code.contains("let d"));
    }

    #[test]
    fn long_unicode_char_literal_is_fully_blanked() {
        // A fixed 8-char close window cut '\u{1F600}' short and leaked
        // the literal's braces into stripped code, corrupting brace
        // balance for every body-range consumer.
        let f = scan("let e = '\\u{1F600}'; fn live() { x(); }\n");
        assert!(!f.lines[0].code.contains('{') || f.lines[0].code.contains("live() { x(); }"));
        assert_eq!(
            f.lines[0].code.matches('{').count(),
            f.lines[0].code.matches('}').count()
        );
        assert!(f.lines[0].code.contains("fn live"));
        let toks: Vec<&str> = f.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(!toks.contains(&"1F600"), "literal leaked: {toks:?}");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let text =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let f = scan(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the test module is live");
    }

    #[test]
    fn cfg_test_inline_mod_on_one_line() {
        // The attribute, the mod and its body on a single line — a silent
        // false-negative source for the old line scanner (the pending
        // attribute was only applied from the *next* line on).
        let text = "#[cfg(test)] mod tests { fn t() { thread_rng(); } }\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[0].in_test, "inline test mod must be marked");
        assert!(!f.lines[1].in_test);
        // Attribute and opening brace on one line, body below.
        let g = scan("#[cfg(test)] mod tests {\n    fn t() {}\n}\nfn live() {}\n");
        assert!(g.lines[0].in_test);
        assert!(g.lines[1].in_test);
        assert!(g.lines[2].in_test);
        assert!(!g.lines[3].in_test);
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let text = "#[cfg(test)]\n#[allow(clippy::float_cmp)]\nmod tests {\n    fn t() {}\n}\nfn live() {}\n";
        let f = scan(text);
        for i in 0..5 {
            assert!(f.lines[i].in_test, "line {} must be test", i + 1);
        }
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let f = scan("#[cfg(not(test))]\nfn live() { x(); }\n");
        assert!(!f.lines[1].in_test, "cfg(not(test)) code is live");
    }

    #[test]
    fn cfg_test_bodyless_item() {
        let f = scan("#[cfg(test)]\nmod tests;\nfn live() {}\n");
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_test_regions() {
        // A stray `}` inside a string used to be invisible to the line
        // scanner too (strings are blanked), but `{` counts from *raw*
        // text would end the region early. Token-based matching is immune.
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { let s = \"}}}\"; }\n}\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn nested_braces_inside_test_module() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { if x { y(); } }\n}\nfn live() {}\n";
        let f = scan(text);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn allow_marker_covers_line_and_next() {
        let text = "// analyze::allow(R1)\nuse x::thread_rng;\nuse y::z;\n";
        let f = scan(text);
        assert!(f.lines[0].allowed.contains("R1"));
        assert!(f.lines[1].allowed.contains("R1"));
        assert!(f.lines[2].allowed.is_empty());
    }

    #[test]
    fn allow_marker_multiple_rules() {
        let f = scan("let x = 1; // analyze::allow(R2, r4)\n");
        assert!(f.lines[0].allowed.contains("R2"));
        assert!(f.lines[0].allowed.contains("R4"));
        assert_eq!(f.markers.len(), 1);
        assert_eq!(f.markers[0].line, 1);
    }

    #[test]
    fn doc_comment_mentions_are_not_markers() {
        // Rustdoc that *describes* the escape hatch must not grant it.
        let f = scan(
            "/// write `// analyze::allow(R8)` here\nuse x::thread_rng;\n//! analyze::allow(R1)\n",
        );
        assert!(f.markers.is_empty());
        assert!(f.lines[1].allowed.is_empty());
    }

    #[test]
    fn malformed_ids_do_not_register() {
        // Code that merely contains the marker string (the analyzer's own
        // parser) must not register garbage grants.
        let f =
            scan("let idx = line.find(\"analyze::allow(\")?;\n// analyze::allow(banana, R2x)\n");
        assert!(f.markers.is_empty());
    }

    #[test]
    fn line_allowed_records_marker_usage() {
        let f = scan("// analyze::allow(R4)\nuse x;\nuse y;\n");
        assert!(!f.allow_used(1, "R4"));
        assert!(f.line_allowed(2, "R4"));
        assert!(f.allow_used(1, "R4"));
        assert!(!f.allow_used(1, "R1"));
        assert!(!f.line_allowed(3, "R4"));
    }

    #[test]
    fn any_line_allows_records_usage() {
        let f = scan("fn f() {}\n// analyze::allow(R5)\nfn g() {}\n");
        assert!(f.any_line_allows("R5"));
        assert!(f.allow_used(2, "R5"));
        assert!(!f.any_line_allows("R9"));
    }

    #[test]
    fn marker_inside_string_literal_is_not_a_grant() {
        // The analyzer's own finding messages mention the escape hatch in
        // string literals; those must never register markers.
        let f = scan("fn msg() -> &'static str {\n    \"carry analyze::allow(R15)\"\n}\n");
        assert!(f.markers.is_empty(), "{:?}", f.markers);
        let g = scan("fn ok() {}\n// real grant: analyze::allow(R15)\nfn idx() {}\n");
        assert_eq!(g.markers.len(), 1);
        assert_eq!(g.markers[0].line, 2);
    }
}
