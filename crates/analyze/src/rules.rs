//! The five analyzer rules (R1–R5).
//!
//! Each rule is a line- or file-level check over a [`SourceFile`] whose
//! comments and strings have already been blanked. Rules only fire in
//! library-crate code outside `#[cfg(test)]` regions, and every rule
//! honours the `// analyze::allow(<rule>)` escape hatch.

use crate::scan::SourceFile;
use crate::{Finding, Rule};

/// Sites that must carry a finiteness guard (R5): numerical boundaries
/// where a NaN/Inf slipping through would silently poison downstream
/// results. Paths are workspace-relative; the marker must appear in
/// non-test code of that file.
pub const GUARD_SITES: &[(&str, &str)] = &[
    (
        "crates/linalg/src/cholesky.rs",
        "Cholesky factorization entry",
    ),
    ("crates/linalg/src/lstsq.rs", "least-squares solver entry"),
    ("crates/gp/src/regressor.rs", "GP posterior boundary"),
    ("crates/core/src/model.rs", "constraint-model boundary"),
];

/// The marker R5 looks for at each guard site.
pub const FINITE_GUARD_MARKER: &str = "debug_assert_finite!";

/// Substrings that indicate ambient, non-reproducible entropy (R1).
const ENTROPY_PATTERNS: &[&str] = &[
    "thread_rng",
    "from_os_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "SystemTime",
    "Instant::now",
];

/// Print-family macros forbidden in library crates (R4).
const PRINT_PATTERNS: &[&str] = &["println!", "print!", "eprintln!", "eprint!", "dbg!"];

/// Applies every line-level rule (R1–R4) to one file.
pub fn apply_line_rules(file: &SourceFile, findings: &mut Vec<Finding>) {
    check_entropy(file, findings);
    check_float_eq(file, findings);
    check_error_enums(file, findings);
    check_prints(file, findings);
}

/// R5: the file is a declared guard site and must contain the
/// `debug_assert_finite!` marker in live (non-test) code.
pub fn check_finite_guard(file: &SourceFile, what: &str, findings: &mut Vec<Finding>) {
    let present = file
        .lines
        .iter()
        .any(|l| !l.in_test && l.code.contains(FINITE_GUARD_MARKER));
    let allowed = file
        .lines
        .iter()
        .any(|l| l.allowed.contains(Rule::R5MissingFiniteGuard.id()));
    if !present && !allowed {
        findings.push(Finding {
            rule: Rule::R5MissingFiniteGuard,
            file: file.rel_path.display().to_string(),
            line: 1,
            excerpt: String::new(),
            message: format!(
                "{what}: no `{FINITE_GUARD_MARKER}` guard found; NaN/Inf can cross this numerical boundary unchecked"
            ),
        });
    }
}

fn check_entropy(file: &SourceFile, findings: &mut Vec<Finding>) {
    for line in &file.lines {
        if line.in_test || line.allowed.contains(Rule::R1NondeterministicEntropy.id()) {
            continue;
        }
        for pat in ENTROPY_PATTERNS {
            if line.code.contains(pat) {
                findings.push(Finding {
                    rule: Rule::R1NondeterministicEntropy,
                    file: file.rel_path.display().to_string(),
                    line: line.number,
                    excerpt: excerpt(&line.raw),
                    message: format!(
                        "`{pat}` introduces ambient entropy/time into a deterministic search path; seed all randomness explicitly"
                    ),
                });
                break;
            }
        }
    }
}

fn check_float_eq(file: &SourceFile, findings: &mut Vec<Finding>) {
    for line in &file.lines {
        if line.in_test || line.allowed.contains(Rule::R2RawFloatEq.id()) {
            continue;
        }
        if line.code.contains("partial_cmp")
            && (line.code.contains(".unwrap()") || line.code.contains(".expect("))
        {
            findings.push(Finding {
                rule: Rule::R2RawFloatEq,
                file: file.rel_path.display().to_string(),
                line: line.number,
                excerpt: excerpt(&line.raw),
                message: "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` for objective/constraint ordering".to_string(),
            });
            continue;
        }
        if let Some(tok) = nonzero_float_literal_comparison(&line.code) {
            findings.push(Finding {
                rule: Rule::R2RawFloatEq,
                file: file.rel_path.display().to_string(),
                line: line.number,
                excerpt: excerpt(&line.raw),
                message: format!(
                    "raw `==`/`!=` against float literal `{tok}` is bit-exact and brittle; compare with a tolerance or use `total_cmp` (exact-zero checks are exempt)"
                ),
            });
        }
    }
}

fn check_error_enums(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allowed.contains(Rule::R3ErrorEnumExhaustive.id()) {
            continue;
        }
        let trimmed = line.code.trim_start();
        let is_pub_error_enum = trimmed.strip_prefix("pub enum ").is_some_and(|rest| {
            rest.split(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .is_some_and(|name| name.contains("Error"))
        });
        if !is_pub_error_enum {
            continue;
        }
        // Walk back through the attribute/doc block looking for the marker.
        let mut has_marker = false;
        for back in file.lines[..idx].iter().rev().take(16) {
            let t = back.code.trim_start();
            let attr_or_doc = t.starts_with("#[")
                || t.starts_with(')') // tail of a multi-line derive list
                || t.starts_with(']')
                || t.is_empty()
                || back.raw.trim_start().starts_with("///")
                || back.raw.trim_start().starts_with("//");
            if back.code.contains("non_exhaustive") {
                has_marker = true;
                break;
            }
            if !attr_or_doc {
                break;
            }
        }
        if !has_marker {
            findings.push(Finding {
                rule: Rule::R3ErrorEnumExhaustive,
                file: file.rel_path.display().to_string(),
                line: line.number,
                excerpt: excerpt(&line.raw),
                message: "public error enum is missing `#[non_exhaustive]`; adding a variant later would be a breaking change".to_string(),
            });
        }
    }
}

fn check_prints(file: &SourceFile, findings: &mut Vec<Finding>) {
    for line in &file.lines {
        if line.in_test || line.allowed.contains(Rule::R4PrintInLibrary.id()) {
            continue;
        }
        for pat in PRINT_PATTERNS {
            if contains_macro(&line.code, pat) {
                findings.push(Finding {
                    rule: Rule::R4PrintInLibrary,
                    file: file.rel_path.display().to_string(),
                    line: line.number,
                    excerpt: excerpt(&line.raw),
                    message: format!(
                        "`{pat}` in library code; stdout/stderr are reserved for the cli and bench crates"
                    ),
                });
                break;
            }
        }
    }
}

/// True when `pat` (a `name!` macro) occurs as its own token — i.e. not as
/// the suffix of a longer identifier (`eprintln!` must not match inside a
/// hypothetical `my_eprintln!`, and `print!` must not fire on `println!`,
/// which is reported separately).
fn contains_macro(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

/// Finds a float-literal operand of `==` / `!=` that is not an exact zero.
/// Returns the offending literal token, if any.
fn nonzero_float_literal_comparison(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        if two == "==" || two == "!=" {
            // Skip `<=`, `>=`, `===`-like runs and pattern arms (`=>`).
            let prev = code[..i].chars().next_back();
            let next = code[i + 2..].chars().next();
            let is_cmp = prev != Some('<')
                && prev != Some('>')
                && prev != Some('=')
                && prev != Some('!')
                && next != Some('=');
            if is_cmp {
                for tok in [left_token(&code[..i]), right_token(&code[i + 2..])]
                    .into_iter()
                    .flatten()
                {
                    if is_float_literal(&tok) && !is_zero_literal(&tok) {
                        return Some(tok);
                    }
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    None
}

fn left_token(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '.' || c == '_'))
        .map_or(0, |p| p + 1);
    let tok = &trimmed[start..];
    if tok.is_empty() {
        None
    } else {
        Some(tok.to_string())
    }
}

fn right_token(s: &str) -> Option<String> {
    let trimmed = s.trim_start();
    let tok: String = trimmed
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '.' || *c == '_' || *c == '-')
        .collect();
    if tok.is_empty() {
        None
    } else {
        Some(tok)
    }
}

fn is_float_literal(tok: &str) -> bool {
    let t = tok
        .trim_start_matches('-')
        .trim_end_matches("f64")
        .trim_end_matches("f32");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    t.contains('.') && t.trim_end_matches('.').parse::<f64>().is_ok()
}

fn is_zero_literal(tok: &str) -> bool {
    let t = tok
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('.');
    t.parse::<f64>().is_ok_and(|v| v.to_bits() == 0 || v.to_bits() == (-0.0f64).to_bits())
}

fn excerpt(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 120 {
        let cut = t
            .char_indices()
            .take_while(|(i, _)| *i < 117)
            .last()
            .map_or(0, |(i, c)| i + c.len_utf8());
        format!("{}...", &t[..cut])
    } else {
        t.to_string()
    }
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("crates/x/src/lib.rs"), text)
    }

    fn run(text: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        apply_line_rules(&scan(text), &mut f);
        f
    }

    #[test]
    fn r1_fires_on_thread_rng() {
        let f = run("let mut rng = rand::thread_rng();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R1NondeterministicEntropy);
    }

    #[test]
    fn r1_ignores_strings_comments_and_tests() {
        assert!(run("let s = \"thread_rng\"; // thread_rng\n").is_empty());
        assert!(run("#[cfg(test)]\nmod tests {\n  fn t() { thread_rng(); }\n}\n").is_empty());
    }

    #[test]
    fn r1_escape_hatch() {
        let f = run("// analyze::allow(R1)\nlet t = SystemTime::now();\n");
        assert!(f.is_empty());
    }

    #[test]
    fn r2_fires_on_partial_cmp_unwrap() {
        let f = run("xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R2RawFloatEq);
    }

    #[test]
    fn r2_fires_on_nonzero_float_literal_eq() {
        let f = run("if x == 0.5 { y(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R2RawFloatEq);
        assert!(run("if 1.0 == x { y(); }\n").len() == 1);
    }

    #[test]
    fn r2_exempts_exact_zero_and_integers() {
        assert!(run("if x == 0.0 { y(); }\n").is_empty());
        assert!(run("if x != 0.0f32 { y(); }\n").is_empty());
        assert!(run("if n == 10 { y(); }\n").is_empty());
        assert!(run("if x <= 0.5 { y(); }\n").is_empty());
        assert!(run("match x { 0 => a, _ => b }\n").is_empty());
    }

    #[test]
    fn r3_fires_on_exhaustive_pub_error_enum() {
        let f = run("#[derive(Debug)]\npub enum ParseError {\n    Bad,\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R3ErrorEnumExhaustive);
    }

    #[test]
    fn r3_accepts_non_exhaustive() {
        let src = "/// Docs.\n#[derive(Debug)]\n#[non_exhaustive]\npub enum Error {\n    Bad,\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn r3_ignores_non_error_enums_and_private() {
        assert!(run("pub enum Mode { A, B }\n").is_empty());
        assert!(run("enum InternalError { X }\n").is_empty());
    }

    #[test]
    fn r4_fires_on_println() {
        let f = run("println!(\"progress: {pct}\");\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R4PrintInLibrary);
    }

    #[test]
    fn r4_token_boundaries() {
        // `print!` must not fire merely because `println!` contains it as a
        // substring mid-identifier; and writeln! is fine.
        assert!(run("writeln!(buf, \"x\").ok();\n").is_empty());
        let f = run("eprintln!(\"warn\");\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn r5_missing_and_present() {
        let mut f = Vec::new();
        check_finite_guard(&scan("pub fn predict() {}\n"), "GP posterior", &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R5MissingFiniteGuard);

        let mut ok = Vec::new();
        check_finite_guard(
            &scan("pub fn predict() { debug_assert_finite!(\"gp\", &mean); }\n"),
            "GP posterior",
            &mut ok,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn r5_marker_in_test_code_does_not_count() {
        let src = "pub fn predict() {}\n#[cfg(test)]\nmod tests {\n  fn t() { debug_assert_finite!(\"x\", &v); }\n}\n";
        let mut f = Vec::new();
        check_finite_guard(&scan(src), "GP posterior", &mut f);
        assert_eq!(f.len(), 1);
    }
}
