//! A lightweight Rust tokenizer for the analyzer.
//!
//! Tokenizes *stripped* source text (comments and string/char literals
//! already blanked to spaces by [`crate::scan`]), so string contents can
//! never produce tokens. The token model is deliberately small — idents,
//! lifetimes, numeric literals and (joined) punctuation — which is enough
//! for every token-aware rule (R6–R8) and for the token-based rewrites of
//! R1–R5, without pulling in syn/rustc internals (this workspace builds
//! hermetically, so the analyzer must stay dependency-free).

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `power_w`, `f64`, …).
    Ident,
    /// Lifetime tick + name (`'a`). Char literals are blanked before
    /// tokenizing, so a surviving tick is always a lifetime.
    Lifetime,
    /// Integer literal (`42`, `0x9e37`, `1_000`).
    Int,
    /// Float literal (`1.5`, `3e-6`, `1.0f64`).
    Float,
    /// Punctuation, with the common multi-character operators joined
    /// (`::`, `->`, `==`, `<=`, `..=`, …).
    Punct,
}

/// One lexed token with its location.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// The token text, exactly as in the (stripped) source.
    pub text: String,
    /// 1-based line number.
    pub line: usize,
    /// 0-based *character* column of the token start within its line.
    /// Character (not byte) columns survive the strip pass, which blanks
    /// multi-byte characters to single spaces.
    pub col: usize,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Multi-character operators, longest first so maximal munch works.
const JOINED_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Tokenizes stripped source text. Never fails: unexpected characters
/// become single-character [`TokenKind::Punct`] tokens.
pub fn tokenize(stripped: &str) -> Vec<Token> {
    let chars: Vec<char> = stripped.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 0usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            col = 0;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }

        let start_col = col;
        if c == '_' || c.is_alphabetic() {
            let mut j = i;
            while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
                col: start_col,
            });
            col += j - i;
            i = j;
            continue;
        }
        if c == '\'' {
            // Char literals were blanked; a surviving tick starts a
            // lifetime (possibly bare, as in `&'_`).
            let mut j = i + 1;
            while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: chars[i..j].iter().collect(),
                line,
                col: start_col,
            });
            col += j - i;
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let (token, len) = lex_number(&chars[i..], line, start_col);
            col += len;
            i += len;
            tokens.push(token);
            continue;
        }

        // Punctuation: try the joined operators, longest first.
        let mut matched = None;
        for op in JOINED_PUNCT {
            let op_chars: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&op_chars) {
                matched = Some(op.len());
                break;
            }
        }
        let len = matched.unwrap_or(1);
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: chars[i..i + len].iter().collect(),
            line,
            col: start_col,
        });
        col += len;
        i += len;
    }
    split_generic_closers(tokens)
}

/// Splits `>>` (and `>>=`) tokens that close nested generics into
/// individual `>` tokens, so downstream consumers see `Vec<Vec<f64>>` as
/// two closing angles rather than one shift operator — and
/// `Vec<Vec<u8>>= v` as two closes plus a plain `=`, keeping the
/// assignment visible to def-use tracking. Only `>>`s inside a
/// *validated* generic region are split: a `<` preceded by an identifier,
/// `::` or another `>` whose angle depth balances before a `;`/`{`/`}`
/// statement boundary. Shift expressions never validate (`x >> 2` has no
/// pending open, and `a << b >> c` hits the statement end unbalanced), so
/// they keep their joined form.
fn split_generic_closers(tokens: Vec<Token>) -> Vec<Token> {
    let mut split = vec![false; tokens.len()];
    for i in 0..tokens.len() {
        if !tokens[i].is_punct("<") {
            continue;
        }
        let opens_generic = i > 0
            && (tokens[i - 1].kind == TokenKind::Ident
                || tokens[i - 1].is_punct("::")
                || tokens[i - 1].is_punct(">"));
        if !opens_generic {
            continue;
        }
        let mut depth = 1i32;
        let mut j = i + 1;
        let mut close = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct("<<") {
                depth += 2;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(">>") || t.is_punct(">>=") {
                depth -= 2;
            } else if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                break; // statement boundary: not a generics group
            }
            if depth <= 0 {
                close = Some(j);
                break;
            }
            j += 1;
        }
        let Some(close) = close else { continue };
        for (k, flag) in split.iter_mut().enumerate().take(close + 1).skip(i) {
            if tokens[k].is_punct(">>") || tokens[k].is_punct(">>=") {
                *flag = true;
            }
        }
    }
    if !split.iter().any(|&s| s) {
        return tokens;
    }
    let mut out = Vec::with_capacity(tokens.len() + 4);
    for (k, t) in tokens.into_iter().enumerate() {
        if !split[k] {
            out.push(t);
            continue;
        }
        let tail_eq = t.text == ">>=";
        for (off, text) in [(0usize, ">"), (1, ">")] {
            out.push(Token {
                kind: TokenKind::Punct,
                text: text.to_string(),
                line: t.line,
                col: t.col + off,
            });
        }
        if tail_eq {
            out.push(Token {
                kind: TokenKind::Punct,
                text: "=".to_string(),
                line: t.line,
                col: t.col + 2,
            });
        }
    }
    out
}

/// Lexes one numeric literal starting at `chars[0]` (an ASCII digit).
/// Returns the token and the number of characters consumed.
fn lex_number(chars: &[char], line: usize, col: usize) -> (Token, usize) {
    let hex =
        chars[0] == '0' && matches!(chars.get(1), Some('x') | Some('X') | Some('b') | Some('o'));
    // Skip past the base prefix so its letter isn't mistaken for a suffix.
    let mut j = if hex { 2 } else { 1 };
    let mut saw_dot = false;
    let mut saw_exp = false;
    while j < chars.len() {
        let c = chars[j];
        if c == '_' || c.is_ascii_digit() || (hex && c.is_ascii_hexdigit()) {
            j += 1;
            continue;
        }
        if !hex && (c == 'e' || c == 'E') && !saw_exp {
            // Exponent only if followed by a digit or a signed digit;
            // otherwise `e` starts a suffix/ident (`1e` is not a float,
            // and `2.0e` would be malformed anyway).
            match (chars.get(j + 1), chars.get(j + 2)) {
                (Some(d), _) if d.is_ascii_digit() => {
                    saw_exp = true;
                    j += 2;
                    continue;
                }
                (Some('+') | Some('-'), Some(d)) if d.is_ascii_digit() => {
                    saw_exp = true;
                    j += 3;
                    continue;
                }
                _ => break,
            }
        }
        if !hex && c == '.' && !saw_dot && !saw_exp {
            // A dot only continues the number when followed by a digit or
            // by a non-ident boundary (`1.` is a float; `1.max(2)` is an
            // integer then a method call; `0..n` is a range).
            match chars.get(j + 1) {
                Some(d) if d.is_ascii_digit() => {
                    saw_dot = true;
                    j += 2;
                    continue;
                }
                Some('.') => break, // range `..`
                Some(c2) if *c2 == '_' || c2.is_alphabetic() => break, // method call
                _ => {
                    saw_dot = true;
                    j += 1;
                    continue;
                }
            }
        }
        // Type suffix: f32/f64/u8/…/usize glued onto the literal.
        if c == 'f' || c == 'u' || c == 'i' {
            let mut k = j;
            while k < chars.len() && (chars[k] == '_' || chars[k].is_alphanumeric()) {
                k += 1;
            }
            let suffix: String = chars[j..k].iter().collect();
            if matches!(
                suffix.as_str(),
                "f32"
                    | "f64"
                    | "u8"
                    | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "usize"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
                    | "isize"
            ) {
                if suffix.starts_with('f') {
                    saw_dot = true; // float by suffix
                }
                j = k;
            }
            break;
        }
        break;
    }
    let text: String = chars[..j].iter().collect();
    let kind = if !hex && (saw_dot || saw_exp) {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    (
        Token {
            kind,
            text,
            line,
            col,
        },
        j,
    )
}

/// Finds the index of the matching close token for the open token at
/// `open_idx` (`tokens[open_idx]` must be `open`). Returns `None` when the
/// stream ends unbalanced.
pub fn matching_close(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
// Tests assert exact values that are constructed to be exactly
// representable; strict float equality is intended.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_keywords() {
        let ts = kinds("fn power_w(x: f64) -> f64");
        assert_eq!(ts[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(ts[1], (TokenKind::Ident, "power_w".into()));
        assert!(ts.iter().any(|t| t.1 == "->" && t.0 == TokenKind::Punct));
    }

    #[test]
    fn joined_operators() {
        let ts = kinds("a == b != c <= d >= e :: f -> g => h .. i ..= j");
        let puncts: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(
            puncts,
            ["==", "!=", "<=", ">=", "::", "->", "=>", "..", "..="]
        );
    }

    #[test]
    fn numbers_classified() {
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000")[0].0, TokenKind::Int);
        assert_eq!(kinds("0x9e37")[0], (TokenKind::Int, "0x9e37".into()));
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("3e-6")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.0f64")[0], (TokenKind::Float, "1.0f64".into()));
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("7u64")[0], (TokenKind::Int, "7u64".into()));
    }

    #[test]
    fn method_on_int_is_not_a_float() {
        let ts = kinds("1.max(2)");
        assert_eq!(ts[0], (TokenKind::Int, "1".into()));
        assert_eq!(ts[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ts[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn range_is_not_a_float() {
        let ts = kinds("0..n");
        assert_eq!(ts[0], (TokenKind::Int, "0".into()));
        assert_eq!(ts[1], (TokenKind::Punct, "..".into()));
    }

    #[test]
    fn trailing_dot_float() {
        let ts = kinds("1. + 2");
        assert_eq!(ts[0], (TokenKind::Float, "1.".into()));
    }

    #[test]
    fn lifetimes() {
        let ts = kinds("fn f<'a>(x: &'a str)");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "'a"));
    }

    #[test]
    fn lines_and_columns() {
        let ts = tokenize("ab cd\n  ef\n");
        assert_eq!((ts[0].line, ts[0].col), (1, 0));
        assert_eq!((ts[1].line, ts[1].col), (1, 3));
        assert_eq!((ts[2].line, ts[2].col), (2, 2));
    }

    #[test]
    fn nested_generic_close_is_split_into_two_angles() {
        // `Vec<Vec<f64>>` must close with two `>` tokens, not one `>>`
        // shift: angle-depth consumers (skip_angles, the CFG builder)
        // otherwise see an unbalanced group.
        let ts = kinds("let x: Vec<Vec<f64>> = make();");
        let closes = ts
            .iter()
            .filter(|(k, s)| *k == TokenKind::Punct && s == ">")
            .count();
        assert_eq!(closes, 2, "tokens: {ts:?}");
        assert!(!ts.iter().any(|(_, s)| s == ">>"));
    }

    #[test]
    fn nested_generic_close_glued_to_eq_keeps_the_assignment() {
        // Without the split, `Vec<Vec<u8>>=v` lexes a `>>=` that swallows
        // the `=`, hiding the assignment from def-use tracking.
        let ts = kinds("let x: Vec<Vec<u8>>=v;");
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Punct && s == "="));
        assert!(!ts.iter().any(|(_, s)| s == ">>=" || s == ">>"));
    }

    #[test]
    fn shift_operators_stay_joined() {
        let ts = kinds("let y = x >> 2; let z = a << b;");
        assert!(ts.iter().any(|(_, s)| s == ">>"));
        assert!(ts.iter().any(|(_, s)| s == "<<"));
        // A comparison chain is not a generic region either.
        let cmp = kinds("if a < b { c >> 1 } else { d }");
        assert!(cmp.iter().any(|(_, s)| s == ">>"));
    }

    #[test]
    fn qualified_path_double_close_is_split() {
        let ts = kinds("let n = <T as Iterator<Item = u8>>::next(it);");
        assert!(!ts.iter().any(|(_, s)| s == ">>"));
    }

    #[test]
    fn matching_close_finds_balanced_brace() {
        let ts = tokenize("fn f() { if x { y(); } }");
        let open = ts.iter().position(|t| t.is_punct("{")).unwrap();
        let close = matching_close(&ts, open, "{", "}").unwrap();
        assert_eq!(close, ts.len() - 1);
        assert!(matching_close(&tokenize("{ {"), 0, "{", "}").is_none());
    }
}
