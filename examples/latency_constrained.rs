//! Extension: adding an inference-latency budget on top of power/memory.
//!
//! The paper constrains power and memory; its related work (\[10\]
//! NeuralPower, \[14\] constrained-BO for runtime) motivates *runtime*
//! budgets too. This reproduction profiles latency alongside power/memory,
//! fits a third linear model, and enforces all three a priori — this
//! example searches for the most accurate CIFAR-10 network a GTX 1070 can
//! serve under 90 W, 1.25 GiB **and** 4 µs/example (batched inference amortises to microseconds per image; the cap sits at the ~30th percentile of the space's latency distribution, so it genuinely bites).
//!
//! Run with: `cargo run --release --example latency_constrained`

// Examples are terminal programs: printing and panicking on missing results
// are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::model::FeatureMap;
use hyperpower::profiler::{fit_models, Profiler};
use hyperpower::{
    Budget, Budgets, ConstraintOracle, Mebibytes, Method, Mode, Scenario, SearchSpace, Seconds,
    Session, Watts,
};
use hyperpower_gpu_sim::{Gpu, TrainingCostModel, VirtualClock};

fn main() -> Result<(), hyperpower::Error> {
    // Profile the platform once (power + memory + latency).
    let space = SearchSpace::cifar10();
    let scenario = Scenario::cifar10_gtx1070();
    let mut gpu = Gpu::new(scenario.device.clone(), 13);
    let mut clock = VirtualClock::new();
    let data = Profiler::new(100).profile(
        &space,
        &mut gpu,
        &mut clock,
        &TrainingCostModel::default(),
        17,
    )?;
    let models = fit_models(&data, 10, FeatureMap::Linear)?;
    let latency = models.latency.as_ref().expect("latency profiled");
    println!(
        "fitted models — power RMSPE {:.2}%, memory RMSPE {:.2}%, latency RMSPE {:.2}%",
        models.power.cv_rmspe() * 100.0,
        models
            .memory
            .as_ref()
            .map(|m| m.cv_rmspe())
            .unwrap_or(f64::NAN)
            * 100.0,
        latency.cv_rmspe() * 100.0
    );

    // Compare the paper's budgets with and without the latency cap.
    for (label, budgets) in [
        (
            "power + memory (paper)",
            Budgets::power_and_memory(Watts(90.0), Mebibytes::from_gib(1.25)),
        ),
        (
            "power + memory + 4 us latency",
            Budgets::power_and_memory(Watts(90.0), Mebibytes::from_gib(1.25))
                .with_latency(Seconds::from_millis(0.004)),
        ),
    ] {
        // Rebuild the session with the richer oracle by swapping budgets.
        let mut scenario = Scenario::cifar10_gtx1070();
        scenario.budgets = budgets;
        let mut session = Session::new(scenario, 13)?;
        let trace = session.run_seeded(
            Method::HwIeci,
            Mode::HyperPower,
            Budget::Evaluations(20),
            77,
        )?;
        match trace.best_feasible() {
            Some(best) => {
                let oracle: &ConstraintOracle = session.oracle();
                let z = session
                    .scenario()
                    .space
                    .structural_values(&best.config)
                    .expect("config from this space");
                println!(
                    "{label}: best {:.2}% error at {:.1} W, predicted latency {:.4} ms",
                    best.error * 100.0,
                    best.power_w,
                    oracle
                        .models()
                        .predict_latency(&z)
                        .map(|l| l.as_millis())
                        .unwrap_or(f64::NAN)
                );
            }
            None => println!("{label}: no feasible design found"),
        }
    }
    println!(
        "\nTightening the latency budget trades accuracy for speed: the optimizer is\n\
         pushed away from the wide-FC designs that amortise poorly at batch size 1."
    );
    Ok(())
}
