//! End-to-end run with *real* gradient-descent training.
//!
//! The paper-scale harnesses use the calibrated training simulator, but
//! the optimizer is agnostic: this example plugs the actual CNN substrate
//! (`hyperpower-nn` layers trained with SGD on a synthetic MNIST-like
//! dataset from `hyperpower-data`) into the same driver, proving the whole
//! code path — space decode → network build → train → evaluate → measure
//! power/memory → constraint check — works with real training.
//!
//! Kept small (tiny dataset, few epochs, few evaluations) so it finishes
//! in seconds on a laptop CPU.
//!
//! Run with: `cargo run --release --example real_training`

// Examples are terminal programs: printing and panicking on missing results
// are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::driver::{run_optimization, RunSetup};
use hyperpower::objective::RealTrainingObjective;
use hyperpower::{Budget, EarlyTermination, Method, Mode, Scenario, Session};
use hyperpower_data::synthetic_dataset;
use hyperpower_data::GeneratorOptions;
use hyperpower_gpu_sim::{Gpu, TrainingCostModel};

fn main() -> Result<(), hyperpower::Error> {
    // A small, easy MNIST-like dataset: 28x28 grayscale, 10 classes.
    let dataset = synthetic_dataset(
        GeneratorOptions {
            noise_level: 0.15,
            ..GeneratorOptions::mnist_like()
        },
        3,
        300, // training examples
        100, // test examples
    );
    println!(
        "dataset: {} train / {} test examples, shape {:?}",
        dataset.num_train(),
        dataset.num_test(),
        dataset.image_shape()
    );

    // Reuse the MNIST/GTX scenario for its space, budgets and fitted
    // constraint models...
    let scenario = Scenario::mnist_gtx1070();
    let session = Session::new(scenario.clone(), 11)?;

    // ...but evaluate candidates by actually training them.
    let objective = RealTrainingObjective::new(
        dataset,
        4,  // epochs per candidate
        32, // batch size
        TrainingCostModel::default(),
    );
    let mut gpu = Gpu::new(scenario.device.clone(), 23);

    println!("\nrunning HW-IECI with real SGD training (6 evaluations)...");
    let trace = run_optimization(RunSetup {
        space: &scenario.space,
        objective: &objective,
        gpu: &mut gpu,
        budgets: scenario.budgets,
        oracle: Some(session.oracle()),
        early_termination: Some(EarlyTermination {
            check_epoch: 2,
            error_threshold: 0.88,
        }),
        cost: TrainingCostModel::default(),
        method: Method::HwIeci,
        mode: Mode::HyperPower,
        budget: Budget::Evaluations(6),
        seed: 5,
        searcher_override: None,
    })?;

    println!("evaluations: {}", trace.evaluations());
    for s in &trace.samples {
        if let Some(err) = s.error {
            println!(
                "  sample {:>2}: error {:>5.1}%  power {:>5.1} W  feasible {}",
                s.index,
                err * 100.0,
                s.power_w,
                s.feasible
            );
        }
    }
    if let Some(best) = trace.best_feasible() {
        println!(
            "\nbest feasible (really trained) design: {:.1}% test error at {:.1} W",
            best.error * 100.0,
            best.power_w
        );

        // Retrain the winner with a step-decay schedule and checkpoint it —
        // what a practitioner does with the design the search found.
        use hyperpower_nn::{LearningRateSchedule, Network};
        let decoded = scenario.space.decode(&best.config)?;
        let mut net = Network::from_spec(&decoded.arch, 99)?;
        let schedule = LearningRateSchedule::StepDecay {
            every_epochs: 3,
            factor: 0.5,
        };
        let retrain_data = synthetic_dataset(
            GeneratorOptions {
                noise_level: 0.15,
                ..GeneratorOptions::mnist_like()
            },
            3,
            300,
            100,
        );
        for epoch in 1..=6 {
            let hyper = schedule.at_epoch(&decoded.hyper, epoch)?;
            net.train_epoch(&retrain_data, 32, &hyper);
        }
        let err = net.evaluate(&retrain_data, hyperpower_data::Split::Test);
        let mut checkpoint = Vec::new();
        net.save_weights(&mut checkpoint).expect("in-memory write");
        println!(
            "retrained winner with step-decay schedule: {:.1}% error; checkpoint is {} bytes",
            err * 100.0,
            checkpoint.len()
        );
    }
    Ok(())
}
