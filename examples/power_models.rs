//! Working directly with the predictive power/memory models.
//!
//! Shows the offline phase as a library user would drive it by hand:
//! profile the platform, fit the models, inspect coefficients, and use the
//! models to answer "what would this design cost?" questions *before any
//! training* — the paper's central insight (§3.2–3.3).
//!
//! Run with: `cargo run --release --example power_models`

// Examples are terminal programs: printing and panicking on missing results
// are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::model::FeatureMap;
use hyperpower::profiler::{fit_models, Profiler};
use hyperpower::{Config, SearchSpace};
use hyperpower_gpu_sim::{DeviceProfile, Gpu, TrainingCostModel, VirtualClock};

fn main() -> Result<(), hyperpower::Error> {
    let space = SearchSpace::cifar10();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), 1);
    let mut clock = VirtualClock::new();
    let cost = TrainingCostModel::default();

    // Offline: profile 100 random architectures (inference power + memory,
    // no training needed) and fit the linear models with 10-fold CV.
    let data = Profiler::new(100).profile(&space, &mut gpu, &mut clock, &cost, 9)?;
    let models = fit_models(&data, 10, FeatureMap::Linear)?;
    println!(
        "profiled {} configurations in {:.0} (virtual) seconds",
        data.len(),
        clock.seconds()
    );
    println!(
        "power model : RMSPE {:.2}% (residual std {:.2} W)",
        models.power.cv_rmspe() * 100.0,
        models.power.residual_std()
    );
    if let Some(mem) = &models.memory {
        println!(
            "memory model: RMSPE {:.2}% (residual std {:.1} MiB)",
            mem.cv_rmspe() * 100.0,
            mem.residual_std() / (1024.0 * 1024.0)
        );
    }

    // The fitted coefficients: one weight per structural hyper-parameter
    // (plus an intercept), paper Eq. 1.
    println!("\npower-model weights (watts per unit of each structural dimension):");
    let names: Vec<&str> = space
        .dimensions()
        .iter()
        .filter(|d| d.is_structural())
        .map(|d| d.name())
        .collect();
    print!("  intercept: {:+.3} W", models.power.weights()[0]);
    for (name, w) in names.iter().zip(&models.power.weights()[1..]) {
        print!("\n  {name:<16} {w:+.4}");
    }
    println!();

    // Use the models: compare three designs *a priori*.
    println!("\npredictions for three candidate designs (no training, no measurement):");
    let designs = [
        ("small conv-net", vec![0.05; 13]),
        ("balanced", vec![0.5; 13]),
        ("conv-heavy", {
            let mut u = vec![0.9; 13];
            u[9] = 0.2; // narrow FC
            u
        }),
    ];
    for (label, unit) in designs {
        let config = Config::new(unit)?;
        let z = space.structural_values(&config)?;
        let decoded = space.decode(&config)?;
        let predicted = models.predict_power(&z).get();
        let actual = gpu.analyze(&decoded.arch).power.get();
        println!("  {label:<15} predicted {predicted:>6.1} W   (ground truth {actual:>6.1} W)");
    }
    Ok(())
}
