//! Quickstart: power- and memory-constrained hyper-parameter optimization
//! in a dozen lines.
//!
//! Sets up the paper's MNIST / GTX 1070 scenario (85 W power budget,
//! 1.15 GiB memory budget), profiles the platform, fits the predictive
//! models, and runs HW-IECI — the paper's best method — for 15 function
//! evaluations.
//!
//! Run with: `cargo run --release --example quickstart`

// Examples are terminal programs: printing and panicking on missing results
// are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Budget, Method, Mode, Scenario, Session};

fn main() -> Result<(), hyperpower::Error> {
    // 1. Pick a scenario: platform + search space + budgets.
    let scenario = Scenario::mnist_gtx1070();
    println!(
        "scenario: {} — budgets: {} / {:.2} GiB, {}-dim search space",
        scenario.name,
        scenario.budgets.power.unwrap_or_default(),
        scenario.budgets.memory.unwrap_or_default().as_gib(),
        scenario.space.dim()
    );

    // 2. Create the session. This performs the paper's offline phase:
    //    profile 100 random architectures on the (simulated) GPU and fit
    //    the linear power/memory models with 10-fold cross-validation.
    let mut session = Session::new(scenario, 42)?;
    println!(
        "power model RMSPE: {:.2}%   memory model RMSPE: {:.2}%",
        session.models().power.cv_rmspe() * 100.0,
        session
            .models()
            .memory
            .as_ref()
            .map(|m| m.cv_rmspe() * 100.0)
            .unwrap_or(f64::NAN)
    );

    // 3. Optimize with the constraint-aware acquisition (HW-IECI).
    let trace = session.run(Method::HwIeci, Mode::HyperPower, Budget::Evaluations(15))?;

    // 4. Inspect the result.
    let best = trace
        .best_feasible()
        .expect("HW-IECI finds a feasible design");
    println!(
        "\nbest feasible design after {} evaluations ({} samples queried):",
        trace.evaluations(),
        trace.queried()
    );
    println!("  test error : {:.2}%", best.error * 100.0);
    println!("  power      : {:.1} W", best.power_w);
    if let Some(mem) = best.memory_bytes {
        println!("  memory     : {:.3} GiB", mem as f64 / (1u64 << 30) as f64);
    }
    println!(
        "  found after: {:.2} h of (virtual) optimization time",
        best.timestamp_s / 3600.0
    );
    Ok(())
}
