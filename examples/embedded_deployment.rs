//! Embedded-deployment scenario: find the most accurate CIFAR-10 network
//! that an NVIDIA Tegra TX1 can serve within a 12 W power envelope.
//!
//! This is the workload the paper's introduction motivates: an ML
//! practitioner targeting a battery/thermally limited edge device cannot
//! eyeball which hyper-parameters stay inside the power envelope (Fig. 1),
//! and can't afford to train hundreds of candidates to find out. The
//! example compares all four search methods under the same (virtual) time
//! budget and shows why constraint-awareness matters.
//!
//! Run with: `cargo run --release --example embedded_deployment`

// Examples are terminal programs: printing and panicking on missing results
// are the point, not a lint violation.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower::{Budget, Method, Mode, Scenario, Session};

fn main() -> Result<(), hyperpower::Error> {
    let scenario = Scenario::cifar10_tegra_tx1();
    println!(
        "target platform: {} — power budget {} (no memory API on this board)",
        scenario.device.name,
        scenario.budgets.power.unwrap_or_default()
    );
    println!("search space: {} hyper-parameters\n", scenario.space.dim());

    let mut session = Session::new(scenario, 7)?;
    let budget = Budget::VirtualHours(session.scenario().time_budget_hours);

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>11} {:>12}",
        "method", "mode", "queried", "best error", "power [W]", "found at [h]"
    );
    for method in Method::ALL {
        for mode in [Mode::Default, Mode::HyperPower] {
            let trace = session.run_seeded(method, mode, budget, 77)?;
            match trace.best_feasible() {
                Some(best) => println!(
                    "{:<12} {:>6} {:>10} {:>11.2}% {:>11.2} {:>12.2}",
                    method.to_string(),
                    short_mode(mode),
                    trace.queried(),
                    best.error * 100.0,
                    best.power_w,
                    best.timestamp_s / 3600.0
                ),
                None => println!(
                    "{:<12} {:>6} {:>10} {:>12} {:>11} {:>12}",
                    method.to_string(),
                    short_mode(mode),
                    trace.queried(),
                    "--",
                    "--",
                    "--"
                ),
            }
        }
    }
    println!(
        "\n'HP' rows use the HyperPower enhancements (predictive power model as an a-priori\n\
         constraint + early termination of diverging runs); 'def' rows are the published\n\
         constraint-unaware baselines. The HP rows query more candidates in the same time\n\
         and never waste training on designs the device cannot serve."
    );
    Ok(())
}

fn short_mode(mode: Mode) -> &'static str {
    match mode {
        Mode::Default => "def",
        Mode::HyperPower => "HP",
    }
}
