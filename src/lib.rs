//! Umbrella crate for the HyperPower reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can reach every layer:
//!
//! * [`hyperpower`] — the paper's contribution: constrained hyper-parameter
//!   optimization (search spaces, predictive models, the four methods,
//!   drivers, scenarios and reports),
//! * [`gp`] — Gaussian-process regression and acquisition functions,
//! * [`nn`] — the CNN training substrate and the calibrated training
//!   simulator,
//! * [`data`] — synthetic MNIST-like / CIFAR-like datasets,
//! * [`gpu_sim`] — the GPU power/memory/latency simulator, virtual clock
//!   and cost models,
//! * [`linalg`] — the dense linear-algebra kernels underneath it all.
//!
//! # Quickstart
//!
//! ```
//! use hyperpower_repro::hyperpower::{Budget, Method, Mode, Scenario, Session};
//!
//! # fn main() -> Result<(), hyperpower_repro::hyperpower::Error> {
//! let mut session = Session::new(Scenario::mnist_tegra_tx1(), 1)?;
//! let trace = session.run(Method::HwIeci, Mode::HyperPower, Budget::Evaluations(5))?;
//! assert_eq!(trace.evaluations(), 5);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harnesses that regenerate every table and figure of the paper.

pub use hyperpower;
pub use hyperpower_data as data;
pub use hyperpower_gp as gp;
pub use hyperpower_gpu_sim as gpu_sim;
pub use hyperpower_linalg as linalg;
pub use hyperpower_nn as nn;
