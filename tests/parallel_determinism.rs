//! The executor's headline invariant: worker threads never change results.
//!
//! * With one simulated GPU (the default), the serialized trace is
//!   **byte-identical** for workers ∈ {1, 2, 4, 8} at a fixed seed — the
//!   thread pool is pure mechanism.
//! * With several simulated GPUs, the (semantically different) batch
//!   schedule is still byte-identical across worker counts.
//! * `propose_batch(k = 1)` with no pending points degenerates to
//!   `propose` for every searcher — the executor relies on this to make
//!   workers=1 the semantic reference.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use hyperpower::golden::encode_trace;
use hyperpower::methods::{BoSearcher, ConstraintWeighting, GridSearch, RandomSearch};
use hyperpower::{Budget, Config, ExecutorOptions, Method, Mode, Scenario, Searcher, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xD47E_2018;

fn run_encoded(
    session: &mut Session,
    method: Method,
    budget: Budget,
    options: &ExecutorOptions,
) -> String {
    let trace = session
        .run_seeded_with(method, Mode::HyperPower, budget, SEED, options)
        .expect("run");
    encode_trace(&trace)
}

#[test]
fn single_gpu_trace_is_byte_identical_across_worker_counts() {
    let mut session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
    // Rand has Independent conditioning (the executor actually pipelines a
    // lookahead block); HW-IECI is Dependent (lookahead 1, but evaluation
    // still hops threads). Both must be invariant.
    for (method, budget) in [
        (Method::Rand, Budget::Evaluations(6)),
        (Method::Rand, Budget::VirtualHours(0.1)),
        (Method::HwIeci, Budget::Evaluations(4)),
    ] {
        let reference = run_encoded(
            &mut session,
            method,
            budget,
            &ExecutorOptions::default().with_workers(1),
        );
        for workers in [2, 4, 8] {
            let parallel = run_encoded(
                &mut session,
                method,
                budget,
                &ExecutorOptions::default().with_workers(workers),
            );
            assert_eq!(
                reference, parallel,
                "{method} / {budget:?}: trace changed at workers={workers}"
            );
        }
    }
}

#[test]
fn multi_gpu_schedule_is_byte_identical_across_worker_counts() {
    let mut session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
    let gpus = 3;
    for (method, budget) in [
        (Method::Rand, Budget::Evaluations(7)),
        (Method::HwIeci, Budget::Evaluations(5)),
    ] {
        let reference = run_encoded(
            &mut session,
            method,
            budget,
            &ExecutorOptions::default()
                .with_workers(1)
                .with_simulated_gpus(gpus),
        );
        for workers in [2, 4] {
            let parallel = run_encoded(
                &mut session,
                method,
                budget,
                &ExecutorOptions::default()
                    .with_workers(workers)
                    .with_simulated_gpus(gpus),
            );
            assert_eq!(
                reference, parallel,
                "{method} / {budget:?}: {gpus}-GPU schedule changed at workers={workers}"
            );
        }
    }
}

#[test]
fn multi_gpu_commits_in_completion_time_order() {
    let mut session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
    let trace = session
        .run_seeded_with(
            Method::Rand,
            Mode::HyperPower,
            Budget::Evaluations(8),
            SEED,
            &ExecutorOptions::default().with_simulated_gpus(4),
        )
        .expect("run");
    assert_eq!(trace.evaluations(), 8);
    let mut prev = f64::NEG_INFINITY;
    for (i, s) in trace.samples.iter().enumerate() {
        assert_eq!(s.index, i, "indices must be contiguous");
        assert!(
            s.timestamp_s >= prev,
            "sample {i} committed out of time order: {} < {prev}",
            s.timestamp_s
        );
        prev = s.timestamp_s;
    }
}

#[test]
fn propose_batch_of_one_equals_propose_for_every_searcher() {
    let space = hyperpower::SearchSpace::mnist();
    let history = hyperpower::methods::History::new();
    type SearcherFactory = fn() -> Box<dyn Searcher>;
    let factories: Vec<(&str, SearcherFactory)> = vec![
        ("random", || Box::new(RandomSearch)),
        ("grid", || Box::new(GridSearch::new(3))),
        ("bo-ei", || {
            Box::new(BoSearcher::new(ConstraintWeighting::None, None))
        }),
    ];
    for (name, make) in factories {
        let batch = make()
            .propose_batch(&space, &history, 1, &mut StdRng::seed_from_u64(11))
            .expect("batch");
        let single = make()
            .propose(&space, &history, &mut StdRng::seed_from_u64(11))
            .expect("single");
        assert_eq!(batch.len(), 1, "{name}: k=1 batch must hold one config");
        let same = batch[0]
            .unit()
            .iter()
            .zip(single.unit())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{name}: propose_batch(1) != propose");
    }
}

#[test]
fn propose_batch_of_one_equals_propose_with_fitted_surrogate() {
    // The empty-history variant above degrades BO to a random seed before
    // the surrogate ever fits; this one feeds the searcher enough
    // observations that `propose` actually runs the batched GP scoring
    // path, and the k=1 batch must still match `propose` bit-for-bit.
    let space = hyperpower::SearchSpace::mnist();
    let mut history = hyperpower::methods::History::new();
    let mut warm = StdRng::seed_from_u64(23);
    for i in 0..6 {
        let c = Config::random(&mut warm, space.dim());
        history.push(c, 0.2 + 0.05 * i as f64);
    }
    let batch = BoSearcher::new(ConstraintWeighting::None, None)
        .propose_batch(&space, &history, 1, &mut StdRng::seed_from_u64(29))
        .expect("batch");
    let single = BoSearcher::new(ConstraintWeighting::None, None)
        .propose(&space, &history, &mut StdRng::seed_from_u64(29))
        .expect("single");
    assert_eq!(batch.len(), 1);
    let same = batch[0]
        .unit()
        .iter()
        .zip(single.unit())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "fitted BO: propose_batch(1) != propose");
}

#[test]
fn batched_posterior_matches_pointwise_at_workspace_level() {
    // The executor's determinism story leans on `posterior_batch` being
    // per-point `predict` bit-for-bit (the BO searcher scores its grid in
    // blocks). The gp crate pins this property in isolation; this check
    // pins it against a surrogate fitted exactly the way the searcher fits
    // one — through the jitter ladder on history-shaped data.
    use hyperpower_gp::{fit_gp_hyperparams_laddered, FitOptions, Matern52};
    use hyperpower_linalg::Matrix;

    let d = 3;
    let n = 17;
    let mut rng = StdRng::seed_from_u64(0x917E_0001);
    let x = Matrix::from_fn(n, d, |_, _| rand::RngExt::random_range(&mut rng, 0.0..1.0));
    let y: Vec<f64> = (0..n)
        .map(|_| rand::RngExt::random_range(&mut rng, 0.1..0.9))
        .collect();
    let fitted = fit_gp_hyperparams_laddered(
        Matern52::new(0.5).into_kernel(),
        &x,
        &y,
        FitOptions::default(),
        2,
    )
    .expect("ladder fit")
    .fitted;
    for block in 1..=8usize {
        let queries = Matrix::from_fn(block, d, |_, _| {
            rand::RngExt::random_range(&mut rng, 0.0..1.0)
        });
        let (means, variances) = fitted.gp.posterior_batch(&queries).expect("batch");
        for q in 0..block {
            let p = fitted.gp.predict(queries.row(q)).expect("pointwise");
            assert_eq!(
                means[q].to_bits(),
                p.mean.to_bits(),
                "block {block}, query {q}: mean bits diverged"
            );
            assert_eq!(
                variances[q].to_bits(),
                p.variance.to_bits(),
                "block {block}, query {q}: variance bits diverged"
            );
        }
    }
}

#[test]
fn constant_liar_batch_proposes_distinct_points() {
    // A k-batch from the BO searcher must not collapse onto one point:
    // the constant-liar pending handling spreads the acquisition.
    let mut session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
    // Seed the searcher's history through a short run, then batch-propose.
    let _ = session
        .run_seeded(
            Method::HwIeci,
            Mode::HyperPower,
            Budget::Evaluations(4),
            SEED,
        )
        .expect("warmup run");
    let space = session.scenario().space.clone();
    let mut searcher = BoSearcher::new(ConstraintWeighting::None, None);
    let mut history = hyperpower::methods::History::new();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let c = searcher
            .propose(&space, &history, &mut rng)
            .expect("warmup");
        let err = 0.3 + 0.1 * (history.len() as f64);
        history.push(c, err);
    }
    let batch: Vec<Config> = searcher
        .propose_batch(&space, &history, 3, &mut rng)
        .expect("batch");
    assert_eq!(batch.len(), 3);
    for i in 0..batch.len() {
        for j in (i + 1)..batch.len() {
            assert_ne!(
                batch[i].unit(),
                batch[j].unit(),
                "batch points {i} and {j} collapsed"
            );
        }
    }
}
