//! Integration test: the optimizer drives *real* SGD training (not the
//! simulator) through the same public API — space decode, network build,
//! training epochs, early termination, hardware measurement, constraint
//! checks.

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower::driver::{run_optimization, RunSetup};
use hyperpower::objective::RealTrainingObjective;
use hyperpower::{Budget, EarlyTermination, Method, Mode, Scenario, Session};
use hyperpower_data::{synthetic_dataset, GeneratorOptions};
use hyperpower_gpu_sim::{Gpu, TrainingCostModel};

fn tiny_mnist_like() -> hyperpower_data::Dataset {
    synthetic_dataset(
        GeneratorOptions {
            noise_level: 0.15,
            ..GeneratorOptions::mnist_like()
        },
        1,
        120,
        60,
    )
}

#[test]
fn real_training_objective_through_full_driver() {
    let scenario = Scenario::mnist_gtx1070();
    let session = Session::new(scenario.clone(), 2).expect("session");
    let objective =
        RealTrainingObjective::new(tiny_mnist_like(), 3, 32, TrainingCostModel::default());
    let mut gpu = Gpu::new(scenario.device.clone(), 3);

    let trace = run_optimization(RunSetup {
        space: &scenario.space,
        objective: &objective,
        gpu: &mut gpu,
        budgets: scenario.budgets,
        oracle: Some(session.oracle()),
        early_termination: Some(EarlyTermination {
            check_epoch: 2,
            error_threshold: 0.88,
        }),
        cost: TrainingCostModel::default(),
        method: Method::Rand,
        mode: Mode::HyperPower,
        budget: Budget::Evaluations(3),
        seed: 4,
        searcher_override: None,
    })
    .expect("run succeeds");

    assert_eq!(trace.evaluations(), 3);
    for s in &trace.samples {
        if let Some(e) = s.error {
            assert!((0.0..=1.0).contains(&e));
        }
    }
}

#[test]
fn real_training_learns_above_chance() {
    // With a few epochs on an easy dataset, at least one evaluated
    // candidate must clearly beat chance (90% error) — evidence the
    // networks actually learn through this path.
    let scenario = Scenario::mnist_gtx1070();
    let objective =
        RealTrainingObjective::new(tiny_mnist_like(), 4, 16, TrainingCostModel::default());
    let mut gpu = Gpu::new(scenario.device.clone(), 5);

    let trace = run_optimization(RunSetup {
        space: &scenario.space,
        objective: &objective,
        gpu: &mut gpu,
        budgets: scenario.budgets,
        oracle: None,
        early_termination: None,
        cost: TrainingCostModel::default(),
        method: Method::Rand,
        mode: Mode::Default,
        budget: Budget::Evaluations(3),
        seed: 6,
        searcher_override: None,
    })
    .expect("run succeeds");

    let best = trace
        .samples
        .iter()
        .filter_map(|s| s.error)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best < 0.75,
        "best real-training error {best} not above chance"
    );
}
