//! Fault injection, retry/backoff, quarantine and crash-resume tests.
//!
//! The executor's robustness contract, end to end:
//!
//! * the **inert profile changes nothing** — running with
//!   `FaultProfile::none()` (or with checkpointing enabled) is
//!   byte-identical to not having the fault subsystem at all;
//! * a **fixed fault profile is deterministic** — traces are byte-identical
//!   across worker-thread counts, and every emitted trace stays
//!   schema-valid;
//! * **panics are typed** — a panicking objective surfaces as
//!   [`Error::WorkerPanic`] with the proposal index and payload, not as a
//!   poisoned thread;
//! * **early termination beats the watchdog** — a trial that terminated
//!   early is a completed observation even when the full training would
//!   have overrun the timeout (the timeout is recorded as a secondary
//!   cause);
//! * **terminal failures quarantine** — a configuration that exhausts its
//!   retries circuit-breaks: re-proposals are rejected at model-eval cost;
//! * **runs resume** — a run killed mid-flight leaves a checkpoint, and
//!   resuming it yields the same final trace bytes as the uninterrupted
//!   run, at any worker count.
//!
//! The CI fault matrix drives this suite (and the golden suite) with
//! `HYPERPOWER_FAULT_PROFILE` ∈ {none, flaky-sensor, oom-heavy,
//! drifting-hw} × `HYPERPOWER_WORKERS` ∈ {1, 4} ×
//! `HYPERPOWER_RECALIBRATE` ∈ {unset, 1}; see `.github/workflows/ci.yml`.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use hyperpower::driver::RunSetup;
use hyperpower::golden::{diff_text, encode_trace, parse};
use hyperpower::methods::History;
use hyperpower::recovery::LIAR_ERROR;
use hyperpower::space::Decoded;
use hyperpower::{
    Budget, Budgets, CheckpointConfig, Config, EarlyTermination, Error, EvaluationResult,
    ExecutorOptions, Method, Mode, Objective, RetryPolicy, SampleKind, Scenario, SearchSpace,
    Searcher, Session, Trace, TrialFailure,
};
use hyperpower_gpu_sim::{DeviceProfile, FaultProfile, Gpu, TrainingCostModel};
use rand::rngs::StdRng;

const SEED: u64 = 0x5EED_FA17;

/// The profile under test for a suite invocation: the CI fault matrix sets
/// `HYPERPOWER_FAULT_PROFILE`; locally the default exercises flaky-sensor.
fn matrix_profile() -> FaultProfile {
    match std::env::var("HYPERPOWER_FAULT_PROFILE") {
        Ok(name) => FaultProfile::parse(&name)
            .unwrap_or_else(|| panic!("unknown HYPERPOWER_FAULT_PROFILE '{name}'")),
        Err(_) => FaultProfile::flaky_sensor(),
    }
}

/// The CI matrix's third axis: `HYPERPOWER_RECALIBRATE=1` turns the
/// self-healing layer on (drift monitor, online refits, adaptive margins)
/// for the matrix invariants, proving they also hold while the constraint
/// models are being rewritten mid-run.
fn matrix_options() -> ExecutorOptions {
    match std::env::var("HYPERPOWER_RECALIBRATE") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("on") => ExecutorOptions::default()
            .with_recalibrate(true)
            .with_drift_threshold(0.05)
            .with_safety_margin(0.05),
        _ => ExecutorOptions::default(),
    }
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/fault-scratch");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn run_session(options: &ExecutorOptions) -> Trace {
    let mut session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
    session
        .run_seeded_with(
            Method::Rand,
            Mode::HyperPower,
            Budget::Evaluations(6),
            SEED,
            options,
        )
        .expect("run")
}

// ---------------------------------------------------------------------------
// Test objectives
// ---------------------------------------------------------------------------

/// Deterministic stub: error and training time are pure functions of the
/// evaluation seed (like the real simulated objective, minus the cost).
struct StubObjective {
    train_secs_base: f64,
    terminated_early: bool,
}

impl StubObjective {
    fn new() -> Self {
        StubObjective {
            train_secs_base: 400.0,
            terminated_early: false,
        }
    }
}

impl Objective for StubObjective {
    fn evaluate(
        &self,
        _decoded: &Decoded,
        _early: Option<&EarlyTermination>,
        seed: u64,
    ) -> hyperpower::Result<EvaluationResult> {
        Ok(EvaluationResult {
            error: 0.05 + 0.9 * ((seed % 997) as f64 / 997.0),
            diverged: false,
            terminated_early: self.terminated_early,
            train_secs: self.train_secs_base + (seed % 13) as f64 * 25.0,
        })
    }

    fn full_epochs(&self) -> usize {
        10
    }
}

/// Panics when asked to evaluate one specific proposal — deterministic at
/// any worker count (the panic is keyed on the evaluation seed, which is a
/// pure function of the proposal index).
struct PanicOnQuery {
    inner: StubObjective,
    target_seed: u64,
}

impl PanicOnQuery {
    /// `query` uses the executor's documented derivation
    /// `eval_seed = run_seed × 0x9e37_79b9_7f4a_7c15 + query`.
    fn new(run_seed: u64, query: u64) -> Self {
        PanicOnQuery {
            inner: StubObjective::new(),
            target_seed: run_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(query),
        }
    }
}

impl Objective for PanicOnQuery {
    fn evaluate(
        &self,
        decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> hyperpower::Result<EvaluationResult> {
        assert!(
            seed != self.target_seed,
            "simulated crash: poisoned proposal"
        );
        self.inner.evaluate(decoded, early, seed)
    }

    fn full_epochs(&self) -> usize {
        self.inner.full_epochs()
    }
}

/// Stub that panics once its call budget is spent — the "kill -9" stand-in
/// for crash-resume tests (and the worker-panic regression).
struct ChaosObjective {
    inner: StubObjective,
    calls: AtomicUsize,
    panic_after: usize,
}

impl ChaosObjective {
    fn new(panic_after: usize) -> Self {
        ChaosObjective {
            inner: StubObjective::new(),
            calls: AtomicUsize::new(0),
            panic_after,
        }
    }
}

impl Objective for ChaosObjective {
    fn evaluate(
        &self,
        decoded: &Decoded,
        early: Option<&EarlyTermination>,
        seed: u64,
    ) -> hyperpower::Result<EvaluationResult> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        assert!(
            call < self.panic_after,
            "simulated crash: objective call budget exhausted"
        );
        self.inner.evaluate(decoded, early, seed)
    }

    fn full_epochs(&self) -> usize {
        self.inner.full_epochs()
    }
}

/// Always proposes the same configuration (for quarantine tests).
struct FixedSearcher(Config);

impl Searcher for FixedSearcher {
    fn propose(
        &mut self,
        _space: &SearchSpace,
        _history: &History,
        _rng: &mut StdRng,
    ) -> hyperpower::Result<Config> {
        Ok(self.0.clone())
    }
}

/// Runs the stub objective through the real executor with full control over
/// options (no profiling/oracle, so every proposal is evaluated).
fn run_stub(
    objective: &dyn Objective,
    budget: Budget,
    options: &ExecutorOptions,
    searcher: Option<Box<dyn Searcher>>,
) -> hyperpower::Result<Trace> {
    let space = SearchSpace::mnist();
    let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), SEED);
    hyperpower::run_optimization_with(
        RunSetup {
            space: &space,
            objective,
            gpu: &mut gpu,
            budgets: Budgets::default(),
            oracle: None,
            early_termination: Some(EarlyTermination::default()),
            cost: TrainingCostModel::default(),
            method: Method::Rand,
            mode: Mode::HyperPower,
            budget,
            seed: SEED,
            searcher_override: searcher,
        },
        options,
    )
}

// ---------------------------------------------------------------------------
// Inert profile and matrix invariants
// ---------------------------------------------------------------------------

#[test]
fn inert_profile_and_checkpointing_change_no_bytes() {
    let baseline = encode_trace(&run_session(&ExecutorOptions::default()));
    let explicit_none = encode_trace(&run_session(
        &ExecutorOptions::default().with_fault_profile(FaultProfile::none()),
    ));
    assert_eq!(baseline, explicit_none);

    // Observing the run through a checkpoint sink must not perturb it.
    let ckpt = scratch_path("inert.ckpt");
    let with_sink = encode_trace(&run_session(
        &ExecutorOptions::default().with_checkpoint(CheckpointConfig::every_commit(ckpt.clone())),
    ));
    assert_eq!(baseline, with_sink);
    assert!(ckpt.exists(), "checkpoint file written");
}

#[test]
fn matrix_profile_trace_is_worker_invariant_and_schema_valid() {
    let profile = matrix_profile();
    for gpus in [1usize, 2] {
        let reference = encode_trace(&run_session(
            &matrix_options()
                .with_fault_profile(profile.clone())
                .with_simulated_gpus(gpus),
        ));
        let parallel = encode_trace(&run_session(
            &matrix_options()
                .with_fault_profile(profile.clone())
                .with_simulated_gpus(gpus)
                .with_workers(4),
        ));
        assert_eq!(reference, parallel, "workers must not change the trace");
        // And the same profile + seed replays exactly.
        let replay = encode_trace(&run_session(
            &matrix_options()
                .with_fault_profile(profile.clone())
                .with_simulated_gpus(gpus),
        ));
        assert_eq!(reference, replay, "fault schedule must replay exactly");
        parse(&reference).expect("faulted trace stays schema-valid");
        assert!(diff_text(&reference, &parallel).is_empty());
    }
}

// ---------------------------------------------------------------------------
// Worker-panic capture
// ---------------------------------------------------------------------------

#[test]
fn panicking_objective_becomes_typed_worker_panic() {
    // Poison proposal 2: at every worker count the typed error names the
    // same proposal and carries the panic payload.
    for workers in [1usize, 4] {
        let objective = PanicOnQuery::new(SEED, 2);
        let err = run_stub(
            &objective,
            Budget::Evaluations(8),
            &ExecutorOptions::default().with_workers(workers),
            None,
        )
        .expect_err("panicking objective must fail the run");
        match err {
            Error::WorkerPanic { query, message } => {
                assert_eq!(
                    query, 2,
                    "first panicking proposal wins (workers={workers})"
                );
                assert!(
                    message.contains("simulated crash"),
                    "payload preserved, got: {message}"
                );
            }
            other => panic!("expected WorkerPanic, got: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Early termination vs. watchdog timeout
// ---------------------------------------------------------------------------

/// A profile that injects nothing but arms a finite watchdog.
fn watchdog_only(timeout_s: f64) -> FaultProfile {
    FaultProfile {
        name: "watchdog".into(),
        timeout_s,
        ..FaultProfile::none()
    }
}

#[test]
fn early_termination_wins_over_timeout() {
    let objective = StubObjective {
        train_secs_base: 5000.0, // far past the watchdog below
        terminated_early: true,
    };
    let trace = run_stub(
        &objective,
        Budget::Evaluations(3),
        &ExecutorOptions::default().with_fault_profile(watchdog_only(1000.0)),
        None,
    )
    .expect("run");
    assert_eq!(trace.evaluations(), 3);
    for s in &trace.samples {
        // The trial completed (early termination preempts the watchdog),
        // with the overrun recorded as a secondary cause — not a failure.
        assert_eq!(s.kind, SampleKind::EarlyTerminated);
        assert!(s.error.is_some());
        assert_eq!(s.failure, Some(TrialFailure::Timeout));
        assert_eq!(s.retries, 0);
    }
}

#[test]
fn timeout_without_early_termination_is_terminal() {
    let objective = StubObjective {
        train_secs_base: 5000.0,
        terminated_early: false,
    };
    let trace = run_stub(
        &objective,
        Budget::Evaluations(2),
        &ExecutorOptions::default().with_fault_profile(watchdog_only(1000.0)),
        None,
    )
    .expect("run");
    for s in &trace.samples {
        assert_eq!(s.kind, SampleKind::Failed);
        assert_eq!(s.failure, Some(TrialFailure::Timeout));
        assert!(s.error.is_none());
        assert!(!s.feasible);
        // Default policy: 2 retries, all reaped by the watchdog.
        assert_eq!(s.retries, 2);
        assert_eq!(s.faults, vec![TrialFailure::Timeout; 3]);
    }
}

// ---------------------------------------------------------------------------
// Quarantine circuit breaker
// ---------------------------------------------------------------------------

#[test]
fn exhausted_retries_quarantine_the_configuration() {
    let profile = FaultProfile {
        name: "crash-always".into(),
        crash_prob: 1.0,
        ..FaultProfile::none()
    };
    let objective = StubObjective::new();
    let config = Config::new(vec![0.5; 6]).expect("config");
    let trace = run_stub(
        &objective,
        Budget::VirtualHours(0.5),
        &ExecutorOptions::default()
            .with_fault_profile(profile)
            .with_retry(RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            }),
        Some(Box::new(FixedSearcher(config))),
    )
    .expect("run");

    let first = &trace.samples[0];
    assert_eq!(first.kind, SampleKind::Failed);
    assert_eq!(first.failure, Some(TrialFailure::Crash));
    assert_eq!(first.retries, 1);
    assert_eq!(first.faults, vec![TrialFailure::Crash; 2]);

    // Every re-proposal of the failed config is circuit-broken: rejected
    // at model-eval cost, never trained again.
    assert!(trace.samples.len() > 1, "run continued past the failure");
    for s in &trace.samples[1..] {
        assert_eq!(s.kind, SampleKind::Rejected);
        assert_eq!(s.failure, Some(TrialFailure::Quarantined));
    }
    assert_eq!(trace.evaluations(), 1, "the config trains exactly once");
}

// ---------------------------------------------------------------------------
// Kill-and-resume
// ---------------------------------------------------------------------------

/// Kills a run after `panic_after` objective calls, then resumes it from
/// the checkpoint and asserts the final trace is byte-identical to an
/// uninterrupted run. `resume_workers`/`gpus` prove resume is free to pick
/// a different thread count and honours the virtual schedule.
fn kill_and_resume_case(name: &str, panic_after: usize, resume_workers: usize, gpus: usize) {
    let profile = FaultProfile::flaky_sensor();
    let budget = Budget::Evaluations(10);
    let options = ExecutorOptions::default()
        .with_fault_profile(profile.clone())
        .with_simulated_gpus(gpus);

    // Reference: uninterrupted run.
    let reference = encode_trace(
        &run_stub(&StubObjective::new(), budget, &options, None).expect("uninterrupted run"),
    );

    // Interrupted run: crash mid-flight, leaving a checkpoint behind.
    let ckpt = scratch_path(name);
    let _ = std::fs::remove_file(&ckpt);
    let chaos = ChaosObjective::new(panic_after);
    let err = run_stub(
        &chaos,
        budget,
        &options
            .clone()
            .with_checkpoint(CheckpointConfig::every_commit(ckpt.clone())),
        None,
    )
    .expect_err("chaos objective must kill the run");
    assert!(matches!(err, Error::WorkerPanic { .. }), "got: {err}");
    assert!(ckpt.exists(), "interrupted run left a checkpoint");

    // Resume: committed results replay from the cache; only the remainder
    // re-evaluates. The fresh-call allowance proves the cache is used.
    let fresh_calls_needed = 10 - panic_after.min(10);
    let resumed_objective = ChaosObjective::new(fresh_calls_needed + gpus);
    let resumed = run_stub(
        &resumed_objective,
        budget,
        &options
            .clone()
            .with_workers(resume_workers)
            .with_resume_from(ckpt.clone()),
        None,
    )
    .expect("resumed run");
    assert_eq!(
        reference,
        encode_trace(&resumed),
        "resumed trace must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn killed_run_resumes_bit_identically_single_gpu() {
    kill_and_resume_case("kill_single.ckpt", 4, 1, 1);
}

#[test]
fn killed_run_resumes_bit_identically_multi_gpu_and_more_workers() {
    kill_and_resume_case("kill_multi.ckpt", 5, 4, 2);
}

#[test]
fn resume_rejects_a_mismatched_run() {
    let budget = Budget::Evaluations(4);
    let ckpt = scratch_path("mismatch.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let options =
        ExecutorOptions::default().with_checkpoint(CheckpointConfig::every_commit(ckpt.clone()));
    run_stub(&StubObjective::new(), budget, &options, None).expect("checkpointed run");

    // Same checkpoint, different budget: the header check must refuse.
    let err = run_stub(
        &StubObjective::new(),
        Budget::Evaluations(9),
        &ExecutorOptions::default().with_resume_from(ckpt),
        None,
    )
    .expect_err("mismatched resume must fail");
    assert!(matches!(err, Error::ResumeMismatch(_)), "got: {err}");
}

#[test]
fn orphaned_checkpoint_tmp_is_swept_on_open() {
    let budget = Budget::Evaluations(4);
    let ckpt = scratch_path("orphan.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let options =
        ExecutorOptions::default().with_checkpoint(CheckpointConfig::every_commit(ckpt.clone()));
    let reference = encode_trace(
        &run_stub(&StubObjective::new(), budget, &options, None).expect("checkpointed run"),
    );

    // Simulate a crash between the temp write and the rename: a stale,
    // half-written `*.tmp` stranded beside the (complete) checkpoint.
    let tmp = ckpt.with_extension("tmp");
    std::fs::write(&tmp, "{ \"schema\": \"hyperpower-checkpoint-v1\", torn").expect("stale tmp");

    // Resume must sweep the orphan on open and replay from the real
    // checkpoint, bit-identically.
    let resumed = run_stub(
        &StubObjective::new(),
        budget,
        &ExecutorOptions::default().with_resume_from(ckpt.clone()),
        None,
    )
    .expect("resume despite an orphaned tmp");
    assert_eq!(
        reference,
        encode_trace(&resumed),
        "orphaned tmp must not perturb a resumed run"
    );
    assert!(!tmp.exists(), "RunCheckpoint::load sweeps the orphaned tmp");

    // A fresh checkpointing run sweeps it on sink creation too.
    std::fs::write(&tmp, "stale").expect("stale tmp");
    run_stub(&StubObjective::new(), budget, &options, None).expect("fresh checkpointed run");
    assert!(!tmp.exists(), "CheckpointSink::new sweeps the orphaned tmp");
}

// ---------------------------------------------------------------------------
// Self-healing: drift recalibration, margins, and the degradation ladder
// ---------------------------------------------------------------------------

/// Options that turn the whole self-healing layer on, aggressively enough
/// to engage within a short run under `drifting-hw`.
fn healing_options(gpus: usize) -> ExecutorOptions {
    ExecutorOptions::default()
        .with_fault_profile(FaultProfile::drifting_hw())
        .with_simulated_gpus(gpus)
        .with_recalibrate(true)
        .with_drift_threshold(0.05)
        .with_safety_margin(0.1)
}

#[test]
fn recalibrating_run_is_worker_invariant_under_drifting_hw() {
    let run = |gpus: usize, workers: usize| {
        let mut session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
        encode_trace(
            &session
                .run_seeded_with(
                    Method::Rand,
                    Mode::HyperPower,
                    Budget::Evaluations(16),
                    SEED,
                    &healing_options(gpus).with_workers(workers),
                )
                .expect("run"),
        )
    };
    let mut recalibrated_anywhere = false;
    for gpus in [1usize, 2] {
        let reference = run(gpus, 1);
        let parallel = run(gpus, 4);
        assert_eq!(
            reference, parallel,
            "recalibrating trace must be worker-invariant (gpus={gpus})"
        );
        let trace = parse(&reference).expect("recalibrating trace stays schema-valid");
        drop(trace);
        recalibrated_anywhere |= reference.contains("\"recalibrated\"");
    }
    assert!(
        recalibrated_anywhere,
        "drifting-hw never engaged a recalibration — thresholds too loose for the test"
    );
}

#[test]
fn recalibrating_killed_run_resumes_bit_identically() {
    // Same kill-and-resume contract as above, but with the drift monitor
    // rewriting the constraint models mid-run: the replayed prefix must
    // reconstruct the monitor (and margins) bit-exactly.
    let session = Session::new(Scenario::mnist_gtx1070(), SEED).expect("session");
    let oracle = session.oracle().clone();
    let budget = Budget::Evaluations(16);
    let run_healing = |objective: &dyn Objective, options: &ExecutorOptions| {
        let space = SearchSpace::mnist();
        let mut gpu = Gpu::new(DeviceProfile::gtx_1070(), SEED);
        hyperpower::run_optimization_with(
            RunSetup {
                space: &space,
                objective,
                gpu: &mut gpu,
                budgets: oracle.budgets(),
                oracle: Some(&oracle),
                early_termination: Some(EarlyTermination::default()),
                cost: TrainingCostModel::default(),
                method: Method::Rand,
                mode: Mode::HyperPower,
                budget,
                seed: SEED,
                searcher_override: None,
            },
            options,
        )
    };
    let options = healing_options(1);
    let reference =
        encode_trace(&run_healing(&StubObjective::new(), &options).expect("uninterrupted run"));

    let ckpt = scratch_path("kill_recalibrating.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let err = run_healing(
        &ChaosObjective::new(5),
        &options
            .clone()
            .with_checkpoint(CheckpointConfig::every_commit(ckpt.clone())),
    )
    .expect_err("chaos objective must kill the run");
    assert!(matches!(err, Error::WorkerPanic { .. }), "got: {err}");
    assert!(ckpt.exists(), "interrupted run left a checkpoint");

    let resumed = run_healing(
        &ChaosObjective::new(100),
        &options
            .clone()
            .with_workers(4)
            .with_resume_from(ckpt.clone()),
    )
    .expect("resumed run");
    assert_eq!(
        reference,
        encode_trace(&resumed),
        "resumed recalibrating trace must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn forced_gp_failure_degrades_through_ladder_to_rand_walk() {
    use hyperpower::methods::{BoSearcher, ConstraintWeighting};
    use hyperpower::DegradationEvent;

    // Poison the surrogate's noise floor: every rung of the jitter ladder
    // fails, so every GP proposal must degrade to a Rand-Walk step — and
    // the run completes with each downgrade as a typed trace event.
    let mut searcher = BoSearcher::new(ConstraintWeighting::None, None);
    searcher.fit_options.min_noise_variance = f64::NAN;
    let trace = run_stub(
        &StubObjective::new(),
        Budget::Evaluations(8),
        &ExecutorOptions::default(),
        Some(Box::new(searcher)),
    )
    .expect("forced GP failure must not abort the run");
    assert_eq!(trace.evaluations(), 8);
    assert!(
        trace.degradation_count() > 0,
        "poisoned fits left no degradation events in the trace"
    );
    let all_fallbacks = trace
        .samples
        .iter()
        .flat_map(|s| s.degradations.iter())
        .all(|d| *d == DegradationEvent::RandWalkFallback);
    assert!(
        all_fallbacks,
        "a NaN noise floor cannot be rescued by jitter"
    );
    // Seed-phase proposals (before min_observations) never touch the GP.
    for s in &trace.samples[..3] {
        assert!(s.degradations.is_empty(), "seed proposals degraded");
    }
    // The encoded trace round-trips with the degradation keys present.
    let text = encode_trace(&trace);
    assert!(text.contains("rand-walk-fallback"));
    parse(&text).expect("degraded trace stays schema-valid");
}

#[test]
fn failed_samples_never_win() {
    // The liar contract: a terminally failed trial records no error and is
    // infeasible, so it can never be reported as the best design — the
    // worst-case LIAR_ERROR only steers the searcher away.
    let profile = FaultProfile {
        name: "crash-always".into(),
        crash_prob: 1.0,
        ..FaultProfile::none()
    };
    let trace = run_stub(
        &StubObjective::new(),
        Budget::Evaluations(3),
        &ExecutorOptions::default().with_fault_profile(profile),
        None,
    )
    .expect("run");
    assert!(trace
        .samples
        .iter()
        .all(|s| s.kind == SampleKind::Failed || s.failure == Some(TrialFailure::Quarantined)));
    assert!(trace.best_feasible().is_none());
    assert!((0.0..=1.0).contains(&LIAR_ERROR));
}
