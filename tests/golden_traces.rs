//! Golden-trace regression tests: full [`Trace`]s pinned bit-for-bit.
//!
//! Each fixture in `tests/golden/` is the complete JSON encoding (see
//! `hyperpower::golden`) of one small optimization run — every timestamp,
//! measurement, feasibility verdict and configuration coordinate — for one
//! of the paper's four methods under each budget kind. The executor's
//! determinism contract makes these byte-stable across worker-thread
//! counts, platforms and (absent an intentional semantic change) commits.
//!
//! # Regenerating fixtures
//!
//! After an *intentional* semantic change (new RNG consumption order, cost
//! model retune, …), re-bless the fixtures and review the diff like any
//! other code change:
//!
//! ```text
//! GOLDEN_BLESS=force cargo test --test golden_traces
//! git diff tests/golden/
//! ```
//!
//! `GOLDEN_BLESS=1` only writes *missing* fixtures; if blessing would
//! change the bytes of an existing one it fails with the full per-field
//! report instead (the golden-invariance gate). Only the explicit
//! `force` spelling may rewrite committed bytes.
//!
//! On failure, each test prints a per-field report (JSON path, expected
//! vs actual value, f64 bit patterns) and also writes it to
//! `target/golden-diff/<name>.txt` so CI can upload the reports as an
//! artifact.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;

use hyperpower::golden::{diff_text, encode_trace};
use hyperpower::{Budget, ExecutorOptions, Method, Mode, Scenario, Session, Trace};
use hyperpower_gpu_sim::FaultProfile;

/// One shared seed for all fixtures: any cross-method divergence is then a
/// method property, not a seed artifact.
const GOLDEN_SEED: u64 = 0x17120244;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn diff_report_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/golden-diff")
        .join(format!("{name}.txt"))
}

fn run_case(method: Method, budget: Budget) -> Trace {
    // MNIST / GTX 1070 keeps the fixtures small and exercises both budget
    // dimensions (power and memory); HyperPower mode exercises the
    // rejection path for the model-free methods.
    let mut session = Session::new(Scenario::mnist_gtx1070(), GOLDEN_SEED).expect("session setup");
    session
        .run_seeded(method, Mode::HyperPower, budget, GOLDEN_SEED)
        .expect("golden run")
}

/// Like [`run_case`], under a seeded fault-injection profile: retries,
/// sensor glitches and terminal failures are part of the pinned bytes.
fn run_faulted_case(method: Method, budget: Budget, profile: FaultProfile) -> Trace {
    let mut session = Session::new(Scenario::mnist_gtx1070(), GOLDEN_SEED).expect("session setup");
    session
        .run_seeded_with(
            method,
            Mode::HyperPower,
            budget,
            GOLDEN_SEED,
            &ExecutorOptions::default().with_fault_profile(profile),
        )
        .expect("golden faulted run")
}

fn check(name: &str, method: Method, budget: Budget) {
    check_encoded(name, encode_trace(&run_case(method, budget)));
}

fn check_encoded(name: &str, actual: String) {
    let path = fixture_path(name);

    let bless_var = std::env::var("GOLDEN_BLESS").unwrap_or_default();
    if !bless_var.is_empty() && bless_var != "0" {
        // Invariance gate: blessing must never *silently* rewrite a
        // fixture. If the bytes would change, fail with the same pointed
        // per-field report a plain test run gives, and require the
        // explicit `GOLDEN_BLESS=force` spelling to overwrite — so a
        // stray bless in a "nothing should change" PR shows up as a
        // failure, not a quiet diff.
        if bless_var != "force" {
            if let Ok(expected) = std::fs::read_to_string(&path) {
                let report = diff_text(&expected, &actual);
                if report.is_empty() {
                    return; // byte-identical: nothing to bless
                }
                panic!(
                    "GOLDEN_BLESS would change fixture '{name}' ({} mismatches):\n  {}\n\
                     \nIf this semantic change is intentional, re-bless with \
                     GOLDEN_BLESS=force and review the diff; otherwise the \
                     change violates the golden-invariance contract.",
                    report.len(),
                    report.join("\n  ")
                );
            }
        }
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &actual).expect("write fixture");
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate with \
             GOLDEN_BLESS=1 cargo test --test golden_traces",
            path.display()
        )
    });
    let report = diff_text(&expected, &actual);
    if report.is_empty() {
        return;
    }
    let text = format!(
        "golden trace '{name}' diverged ({} mismatches):\n  {}\n",
        report.len(),
        report.join("\n  ")
    );
    let report_path = diff_report_path(name);
    if let Some(dir) = report_path.parent() {
        // Best effort: the panic below carries the full report either way.
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(&report_path, &text);
    }
    panic!(
        "{text}\nIf this change is intentional, re-bless with \
         GOLDEN_BLESS=1 cargo test --test golden_traces and review the diff."
    );
}

/// Small budgets keep fixtures reviewable: 5 evaluations, or 0.1 virtual
/// hours (a handful of MNIST trainings).
const EVALS: Budget = Budget::Evaluations(5);
const HOURS: Budget = Budget::VirtualHours(0.1);

#[test]
fn golden_rand_evals() {
    check("rand_evals", Method::Rand, EVALS);
}

#[test]
fn golden_rand_hours() {
    check("rand_hours", Method::Rand, HOURS);
}

#[test]
fn golden_randwalk_evals() {
    check("randwalk_evals", Method::RandWalk, EVALS);
}

#[test]
fn golden_randwalk_hours() {
    check("randwalk_hours", Method::RandWalk, HOURS);
}

#[test]
fn golden_hwcwei_evals() {
    check("hwcwei_evals", Method::HwCwei, EVALS);
}

#[test]
fn golden_hwcwei_hours() {
    check("hwcwei_hours", Method::HwCwei, HOURS);
}

#[test]
fn golden_hwieci_evals() {
    check("hwieci_evals", Method::HwIeci, EVALS);
}

#[test]
fn golden_hwieci_hours() {
    check("hwieci_hours", Method::HwIeci, HOURS);
}

// Fault-injected fixtures: the flaky-sensor profile pins the whole
// recovery machinery — glitch re-measurements, retries with seeded
// backoff, and terminal failures with their liar commits — bit-for-bit.

#[test]
fn golden_rand_evals_flaky_sensor() {
    check_encoded(
        "rand_evals_flaky_sensor",
        encode_trace(&run_faulted_case(
            Method::Rand,
            EVALS,
            FaultProfile::flaky_sensor(),
        )),
    );
}

// Drifting-hardware fixtures: the sensor bias grows with virtual time and
// the self-healing layer is switched on, aggressively enough that drift
// detections, margin moves and the live-RMSPE telemetry are part of the
// pinned bytes. (A full recalibration needs more measured commits than a
// reviewable fixture holds; that path is pinned by the fault-injection
// suite's worker-invariance and kill-and-resume tests instead.)

fn run_healing_case(method: Method) -> Trace {
    let mut session = Session::new(Scenario::mnist_gtx1070(), GOLDEN_SEED).expect("session setup");
    session
        .run_seeded_with(
            method,
            Mode::HyperPower,
            EVALS,
            GOLDEN_SEED,
            &ExecutorOptions::default()
                .with_fault_profile(FaultProfile::drifting_hw())
                .with_recalibrate(true)
                .with_drift_threshold(0.02)
                .with_safety_margin(0.1),
        )
        .expect("golden healing run")
}

#[test]
fn golden_rand_evals_drifting_hw() {
    check_encoded(
        "rand_evals_drifting_hw",
        encode_trace(&run_healing_case(Method::Rand)),
    );
}

#[test]
fn golden_hwieci_evals_drifting_hw() {
    check_encoded(
        "hwieci_evals_drifting_hw",
        encode_trace(&run_healing_case(Method::HwIeci)),
    );
}

#[test]
fn golden_hwieci_evals_flaky_sensor() {
    check_encoded(
        "hwieci_evals_flaky_sensor",
        encode_trace(&run_faulted_case(
            Method::HwIeci,
            EVALS,
            FaultProfile::flaky_sensor(),
        )),
    );
}
