//! End-to-end integration tests: the full HyperPower pipeline across all
//! four device–dataset scenarios, with structural invariants on the
//! resulting traces.

// Helper functions shared by the #[test] fns below sit outside the scope of
// clippy.toml's allow-expect-in-tests; panicking on a broken invariant is
// exactly what test helpers should do.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use hyperpower::{Budget, Method, Mode, SampleKind, Scenario, Session, Trace};

fn assert_trace_invariants(trace: &Trace) {
    // Timestamps are strictly increasing and positive.
    let mut prev = 0.0;
    for s in &trace.samples {
        assert!(s.timestamp_s > prev, "timestamps must increase");
        prev = s.timestamp_s;
        // Rejected samples carry no error and are infeasible.
        match s.kind {
            SampleKind::Rejected => {
                assert!(s.error.is_none());
                assert!(!s.feasible);
            }
            _ => {
                let e = s.error.expect("evaluated samples have errors");
                assert!((0.0..=1.0).contains(&e), "error {e} out of range");
                assert!(s.power_w > 0.0);
            }
        }
    }
    assert!(trace.total_time_s >= prev);
    assert_eq!(
        trace.queried(),
        trace.samples.len(),
        "queried counts every sample"
    );
    assert!(trace.evaluations() <= trace.queried());
}

#[test]
fn all_four_scenarios_run_all_methods() {
    for (i, scenario) in Scenario::all_pairs().into_iter().enumerate() {
        let mut session = Session::new(scenario, 100 + i as u64).expect("session");
        for method in Method::ALL {
            for mode in [Mode::Default, Mode::HyperPower] {
                let trace = session
                    .run_seeded(method, mode, Budget::Evaluations(4), 50)
                    .expect("run succeeds");
                assert_eq!(trace.evaluations(), 4);
                assert_eq!(trace.method, method);
                assert_eq!(trace.mode, mode);
                assert_trace_invariants(&trace);
            }
        }
    }
}

#[test]
fn default_mode_queries_equal_evaluations() {
    let mut session = Session::new(Scenario::cifar10_gtx1070(), 3).expect("session");
    let trace = session
        .run_seeded(Method::Rand, Mode::Default, Budget::Evaluations(6), 9)
        .expect("run succeeds");
    // Constraint-unaware: nothing is rejected up front.
    assert_eq!(trace.queried(), trace.evaluations());
}

#[test]
fn hyperpower_rand_rejects_predicted_violations() {
    // On CIFAR/GTX the feasible region is small, so random search must
    // discard a significant number of candidates via the models.
    let mut session = Session::new(Scenario::cifar10_gtx1070(), 4).expect("session");
    let trace = session
        .run_seeded(Method::Rand, Mode::HyperPower, Budget::Evaluations(5), 11)
        .expect("run succeeds");
    let rejected = trace.queried() - trace.evaluations();
    assert!(
        rejected >= 5,
        "expected substantial model rejections, got {rejected}"
    );
    assert_trace_invariants(&trace);
}

#[test]
fn hw_ieci_never_selects_predicted_violations() {
    // The paper's headline property: with the hard-indicator acquisition,
    // no selected sample is predicted constraint-violating.
    let mut session = Session::new(Scenario::cifar10_gtx1070(), 5).expect("session");
    let trace = session
        .run_seeded(
            Method::HwIeci,
            Mode::HyperPower,
            Budget::Evaluations(12),
            13,
        )
        .expect("run succeeds");
    let space = session.scenario().space.clone();
    let oracle = session.oracle().clone();
    for s in &trace.samples {
        assert_ne!(s.kind, SampleKind::Rejected, "IECI proposes in-acquisition");
        let z = space.structural_values(&s.config).expect("valid config");
        assert!(
            oracle.predicted_feasible(&z),
            "HW-IECI selected a predicted-violating sample at index {}",
            s.index
        );
    }
}

#[test]
fn time_budget_respects_deadline_with_overshoot_for_last_sample() {
    let mut session = Session::new(Scenario::mnist_gtx1070(), 6).expect("session");
    for mode in [Mode::Default, Mode::HyperPower] {
        let trace = session
            .run_seeded(Method::Rand, mode, Budget::VirtualHours(1.0), 21)
            .expect("run succeeds");
        assert!(trace.total_time_s >= 3600.0, "budget must be exhausted");
        // Overshoot is bounded by one full training run (< 1 h on MNIST).
        assert!(trace.total_time_s < 3600.0 * 2.0);
    }
}

#[test]
fn hyperpower_queries_at_least_as_many_samples_in_time_budget() {
    let mut session = Session::new(Scenario::cifar10_gtx1070(), 7).expect("session");
    let default = session
        .run_seeded(Method::Rand, Mode::Default, Budget::VirtualHours(3.0), 31)
        .expect("run succeeds");
    let hyper = session
        .run_seeded(
            Method::Rand,
            Mode::HyperPower,
            Budget::VirtualHours(3.0),
            31,
        )
        .expect("run succeeds");
    assert!(
        hyper.queried() > default.queried(),
        "HyperPower {} vs default {}",
        hyper.queried(),
        default.queried()
    );
}

#[test]
fn tegra_traces_have_no_memory_measurements() {
    let mut session = Session::new(Scenario::mnist_tegra_tx1(), 8).expect("session");
    let trace = session
        .run_seeded(Method::Rand, Mode::HyperPower, Budget::Evaluations(3), 41)
        .expect("run succeeds");
    for s in &trace.samples {
        assert!(s.memory_bytes.is_none(), "Tegra has no memory API");
    }
    assert!(session.models().memory.is_none());
}

#[test]
fn best_feasible_is_consistent_with_samples() {
    let mut session = Session::new(Scenario::mnist_gtx1070(), 9).expect("session");
    let trace = session
        .run_seeded(Method::HwCwei, Mode::HyperPower, Budget::Evaluations(8), 51)
        .expect("run succeeds");
    if let Some(best) = trace.best_feasible() {
        // No feasible evaluated sample has a lower error.
        for s in &trace.samples {
            if s.feasible {
                if let Some(e) = s.error {
                    assert!(e >= best.error);
                }
            }
        }
    }
}
