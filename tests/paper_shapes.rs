//! Statistical shape tests: the qualitative results the paper's evaluation
//! rests on must hold in this reproduction. These are the load-bearing
//! claims behind Tables 1–5 and Figures 1, 3, 4 and 6 (the full harnesses
//! live in `crates/bench`).

// Test-support code: strategies build exact values and assert round-trips
// bit-for-bit; panicking helpers are correct in a test harness.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use hyperpower::{Budget, Config, Method, Mode, Scenario, Session};
use hyperpower_gpu_sim::{analyze, Gpu};
use hyperpower_nn::sim::TrainingSimulator;
use hyperpower_nn::TrainingHyper;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table 1 shape: all fitted models stay below 12% RMSPE (the paper
/// reports <7%; our ground truth is deliberately non-linear, so we allow
/// slightly more slack while staying in the clearly-usable range).
#[test]
fn model_rmspe_within_usable_range() {
    for scenario in Scenario::all_pairs() {
        let name = scenario.name.clone();
        let session = Session::new(scenario, 1).expect("session");
        let power = session.models().power.cv_rmspe();
        assert!(power < 0.12, "{name}: power RMSPE {:.1}%", power * 100.0);
        if let Some(mem) = &session.models().memory {
            assert!(
                mem.cv_rmspe() < 0.12,
                "{name}: memory RMSPE {:.1}%",
                mem.cv_rmspe() * 100.0
            );
        }
    }
}

/// Figure 1 shape: iso-accuracy configurations span tens of watts on the
/// GTX 1070 (the paper reports up to 55 W).
#[test]
fn iso_accuracy_power_spread_is_large() {
    let scenario = Scenario::cifar10_gtx1070();
    let sim = TrainingSimulator::new(scenario.dataset.clone());
    let hyper = TrainingHyper::new(0.012, 0.9, 1e-3).expect("valid");
    let mut rng = StdRng::seed_from_u64(2);
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); 40];
    for _ in 0..400 {
        let config = Config::random(&mut rng, scenario.space.dim());
        let decoded = scenario.space.decode(&config).expect("valid");
        let err = sim.asymptotic_error(&decoded.arch, &hyper);
        let power = analyze(&scenario.device, &decoded.arch).power.get();
        let bucket = ((err * 100.0) as usize).min(39);
        buckets[bucket].push(power);
    }
    let max_spread = buckets
        .iter()
        .filter(|b| b.len() >= 3)
        .map(|b| {
            b.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - b.iter().copied().fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max);
    assert!(
        max_spread > 25.0,
        "iso-accuracy power spread only {max_spread:.1} W"
    );
}

/// §3.2 shape: power is invariant to training progress (the measurements
/// of an architecture do not drift as its weights change).
#[test]
fn power_is_training_invariant() {
    let scenario = Scenario::mnist_tegra_tx1();
    let mut gpu = Gpu::new(scenario.device.clone(), 3);
    let config = Config::new(vec![0.6; 6]).expect("in range");
    let decoded = scenario.space.decode(&config).expect("valid");
    let truth = gpu.analyze(&decoded.arch).power;
    // 20 "checkpoints": all measurements within sensor noise of the truth.
    for _ in 0..20 {
        let m = gpu.measure_power(&decoded.arch);
        assert!((m - truth).get().abs() < 5.0 * scenario.device.power_noise_w);
    }
}

/// Figure 4 / Table 2 shape on the headline pair (CIFAR-10, GTX 1070):
/// HyperPower Rand beats default Rand on best feasible error under the
/// same time budget, and queries far more samples.
#[test]
fn hyperpower_rand_dominates_default_on_cifar_gtx() {
    let scenario = Scenario::cifar10_gtx1070();
    let chance = scenario.dataset.chance_error;
    let mut session = Session::new(scenario, 4).expect("session");
    let mut default_best = Vec::new();
    let mut hyper_best = Vec::new();
    let mut default_queried = 0usize;
    let mut hyper_queried = 0usize;
    for run in 0..3u64 {
        let d = session
            .run_seeded(Method::Rand, Mode::Default, Budget::VirtualHours(5.0), run)
            .expect("run");
        let h = session
            .run_seeded(
                Method::Rand,
                Mode::HyperPower,
                Budget::VirtualHours(5.0),
                run,
            )
            .expect("run");
        default_best.push(d.best_feasible().map(|b| b.error).unwrap_or(chance));
        hyper_best.push(h.best_feasible().map(|b| b.error).unwrap_or(chance));
        default_queried += d.queried();
        hyper_queried += h.queried();
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&hyper_best) < mean(&default_best) - 0.05,
        "HyperPower {:.3} vs default {:.3}",
        mean(&hyper_best),
        mean(&default_best)
    );
    assert!(
        hyper_queried > default_queried * 5,
        "sample increase only {hyper_queried}/{default_queried}"
    );
    // HyperPower's best error lands in the paper's CIFAR regime.
    assert!(
        mean(&hyper_best) < 0.30,
        "best error {:.3}",
        mean(&hyper_best)
    );
}

/// Figure 6 shape: with the enhancements on, a method reaches its first
/// feasible design much earlier in wall-clock time.
#[test]
fn enhancements_reach_feasible_region_faster() {
    let scenario = Scenario::cifar10_gtx1070();
    let mut session = Session::new(scenario, 5).expect("session");
    let mut wins = 0;
    for run in 0..3u64 {
        let d = session
            .run_seeded(
                Method::Rand,
                Mode::Default,
                Budget::VirtualHours(5.0),
                70 + run,
            )
            .expect("run");
        let h = session
            .run_seeded(
                Method::Rand,
                Mode::HyperPower,
                Budget::VirtualHours(5.0),
                70 + run,
            )
            .expect("run");
        let first = |t: &hyperpower::Trace| t.best_error_by_time().first().map(|(ts, _)| *ts);
        match (first(&d), first(&h)) {
            (Some(dt), Some(ht)) if ht < dt => wins += 1,
            (None, Some(_)) => wins += 1,
            _ => {}
        }
    }
    assert!(
        wins >= 2,
        "HyperPower reached feasibility first in only {wins}/3 runs"
    );
}

/// Early-termination shape: in HyperPower mode some samples are
/// early-terminated and they cost a small fraction of a full run.
#[test]
fn early_termination_fires_and_saves_time() {
    let scenario = Scenario::mnist_gtx1070();
    let mut session = Session::new(scenario, 6).expect("session");
    // Enough evaluations that some divergent configurations show up.
    let trace = session
        .run_seeded(Method::Rand, Mode::HyperPower, Budget::Evaluations(40), 90)
        .expect("run");
    let terminated: Vec<_> = trace
        .samples
        .iter()
        .filter(|s| s.kind == hyperpower::SampleKind::EarlyTerminated)
        .collect();
    assert!(
        !terminated.is_empty(),
        "expected at least one early-terminated run in 40 evaluations"
    );
    for s in terminated {
        let e = s.error.expect("evaluated");
        assert!(e > 0.8, "terminated runs are at chance level, got {e}");
    }
}
