//! Tier-1 gate: the custom static-analysis pass must hold over the whole
//! workspace on every commit.
//!
//! `hyperpower-analyze` checks invariants the compiler and clippy cannot
//! express — seeded randomness only (R1), no raw float equality against
//! non-zero literals (R2), `#[non_exhaustive]` public error enums (R3),
//! no printing from library crates (R4), `debug_assert_finite!` guards at
//! the declared numerical boundaries (R5), unit-of-measure discipline on
//! bare `f64` quantities (R6), constraint-before-objective ordering at
//! acquisition call sites (R7), seeded-root RNG threading (R8), ordered
//! collections in trace-affecting crates (R9), interprocedural wall-clock
//! (R10) and RNG-minting (R11) flow over the workspace call graph,
//! concurrency primitives confined to the executor boundary (R12),
//! checkpoint-header completeness against the executor's knobs (R13),
//! order-sensitive float reductions routed through blessed helpers (R14),
//! panic-free executor commit paths via CFG + reaching definitions (R15),
//! no stale allow markers (R16), no discarded workspace `Result`s or
//! mixed-unit arithmetic (R17), branch-balanced RNG draws (R18), and a
//! committed per-crate determinism certificate that matches the analysis
//! (R19). Running it as an ordinary test keeps `cargo test` the single
//! entry point for all correctness gates.
//!
//! Accepted legacy findings live in `analyze-baseline.json` at the
//! workspace root; the gate fails on drift in *either* direction (new
//! findings, or stale baseline entries that no longer fire and must be
//! re-recorded with `--write-baseline`). The determinism certificate
//! ratchets the same way: `determinism-certificate.json` is compared
//! byte-for-byte against what the current analysis would generate, so a
//! regressed fact (or an unrecorded improvement) fails tier-1 until the
//! file is re-recorded with `--write-certificate`.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower_analyze::baseline::{Baseline, BASELINE_FILE};
use hyperpower_analyze::certificate::CERTIFICATE_FILE;
use hyperpower_analyze::{analyze_workspace, find_workspace_root, generate_certificate, Rule};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace")
}

fn committed_baseline(root: &std::path::Path) -> Baseline {
    let path = root.join(BASELINE_FILE);
    if path.exists() {
        Baseline::load(&path).expect("committed baseline parses")
    } else {
        Baseline::default()
    }
}

#[test]
fn workspace_has_no_findings_outside_the_baseline() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace sources readable");
    let drift = committed_baseline(&root).diff(&report);
    assert!(
        drift.is_empty(),
        "static-analysis drift against {BASELINE_FILE}:\n{}\nfull report:\n{}",
        drift.describe(),
        report.to_json()
    );
}

#[test]
fn analyzer_scans_the_real_library_sources() {
    let report = analyze_workspace(&workspace_root()).expect("workspace sources readable");
    // All six library crates must actually be walked: a path refactor that
    // silently empties the scan would otherwise make the gate vacuous.
    assert!(
        report.files_scanned >= 40,
        "only {} files scanned — analyzer lost track of the source tree",
        report.files_scanned
    );
}

#[test]
fn analyzer_reports_every_rule_kind() {
    // The report must account for all nineteen rules even when clean, so
    // a rule silently dropped from the rule set is caught here.
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace sources readable");
    let drift = committed_baseline(&root).diff(&report);
    for rule in Rule::ALL {
        let outside_baseline: usize = drift
            .new
            .iter()
            .filter(|e| e.rule == rule.id())
            .map(|e| e.count)
            .sum();
        assert_eq!(
            outside_baseline,
            0,
            "rule {} has non-baseline findings on a clean workspace",
            rule.id()
        );
        // Touch the per-rule accessor too, so a rule dropped from the
        // report plumbing (not just the rule set) is caught.
        let _ = report.findings_for(rule).count();
    }
    assert_eq!(
        Rule::ALL.len(),
        19,
        "expected exactly nineteen analyzer rules"
    );
}

#[test]
fn determinism_certificate_is_committed_and_current() {
    let root = workspace_root();
    let generated = generate_certificate(&root)
        .expect("workspace sources readable")
        .expect("trace-affecting crates exist");
    let committed = std::fs::read_to_string(root.join(CERTIFICATE_FILE))
        .expect("determinism-certificate.json is committed at the repo root");
    assert_eq!(
        committed, generated,
        "determinism certificate is stale: re-record it with \
         `cargo run -p hyperpower-analyze -- --write-certificate`"
    );
}

#[test]
fn determinism_certificate_generation_is_byte_deterministic() {
    let root = workspace_root();
    let a = generate_certificate(&root)
        .expect("workspace sources readable")
        .expect("trace-affecting crates exist");
    let b = generate_certificate(&root)
        .expect("workspace sources readable")
        .expect("trace-affecting crates exist");
    assert_eq!(a, b, "two certificate generations over one tree diverged");
}
