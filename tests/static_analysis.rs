//! Tier-1 gate: the custom static-analysis pass must hold over the whole
//! workspace on every commit.
//!
//! `hyperpower-analyze` checks invariants the compiler and clippy cannot
//! express — seeded randomness only (R1), no raw float equality against
//! non-zero literals (R2), `#[non_exhaustive]` public error enums (R3),
//! no printing from library crates (R4), and `debug_assert_finite!`
//! guards at the declared numerical boundaries (R5). Running it as an
//! ordinary test keeps `cargo test` the single entry point for all
//! correctness gates.

// Test-support code: panicking on a broken invariant is the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hyperpower_analyze::{analyze_workspace, find_workspace_root, Rule};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace")
}

#[test]
fn workspace_passes_all_analyzer_rules() {
    let report = analyze_workspace(&workspace_root()).expect("workspace sources readable");
    assert!(
        report.is_clean(),
        "static-analysis violations:\n{}",
        report.to_json()
    );
}

#[test]
fn analyzer_scans_the_real_library_sources() {
    let report = analyze_workspace(&workspace_root()).expect("workspace sources readable");
    // All six library crates must actually be walked: a path refactor that
    // silently empties the scan would otherwise make the gate vacuous.
    assert!(
        report.files_scanned >= 40,
        "only {} files scanned — analyzer lost track of the source tree",
        report.files_scanned
    );
}

#[test]
fn analyzer_reports_every_rule_kind() {
    // The report must account for all five rules even when clean, so a
    // rule silently dropped from the rule set is caught here.
    let report = analyze_workspace(&workspace_root()).expect("workspace sources readable");
    for rule in Rule::ALL {
        assert_eq!(
            report.findings_for(rule).count(),
            0,
            "rule {} has findings on a clean workspace",
            rule.id()
        );
    }
    assert_eq!(Rule::ALL.len(), 5, "expected exactly five analyzer rules");
}
