//! Reproducibility guarantees: every randomised component of the pipeline
//! is seeded, so identical inputs must produce identical outputs — the
//! property that makes the experiment harnesses rerunnable.

// Determinism means bit-identical floats; exact comparison is the property
// under test here, not an accident.
#![allow(clippy::float_cmp)]

use hyperpower::{Budget, Method, Mode, Scenario, Session};
use hyperpower_data::cifar10_like;
use hyperpower_nn::sim::{DatasetProfile, TrainingSimulator};
use hyperpower_nn::{ArchSpec, LayerSpec, Network, Tensor, TrainingHyper};

#[test]
fn sessions_with_same_seed_fit_identical_models() {
    let a = Session::new(Scenario::mnist_gtx1070(), 77).expect("session");
    let b = Session::new(Scenario::mnist_gtx1070(), 77).expect("session");
    assert_eq!(a.models().power.weights(), b.models().power.weights());
    let (ma, mb) = (a.models().memory.as_ref(), b.models().memory.as_ref());
    assert_eq!(
        ma.map(|m| m.weights().to_vec()),
        mb.map(|m| m.weights().to_vec())
    );
}

#[test]
fn sessions_with_different_seeds_differ() {
    let a = Session::new(Scenario::mnist_gtx1070(), 1).expect("session");
    let b = Session::new(Scenario::mnist_gtx1070(), 2).expect("session");
    assert_ne!(a.models().power.weights(), b.models().power.weights());
}

#[test]
fn runs_are_reproducible_across_sessions() {
    let mut a = Session::new(Scenario::cifar10_tegra_tx1(), 5).expect("session");
    let mut b = Session::new(Scenario::cifar10_tegra_tx1(), 5).expect("session");
    for method in [Method::Rand, Method::HwIeci] {
        let ta = a
            .run_seeded(method, Mode::HyperPower, Budget::Evaluations(4), 33)
            .expect("run");
        let tb = b
            .run_seeded(method, Mode::HyperPower, Budget::Evaluations(4), 33)
            .expect("run");
        assert_eq!(ta, tb, "{method} traces must match");
    }
}

#[test]
fn different_run_seeds_explore_differently() {
    let mut session = Session::new(Scenario::mnist_tegra_tx1(), 6).expect("session");
    let a = session
        .run_seeded(Method::Rand, Mode::Default, Budget::Evaluations(5), 1)
        .expect("run");
    let b = session
        .run_seeded(Method::Rand, Mode::Default, Budget::Evaluations(5), 2)
        .expect("run");
    assert_ne!(a.samples[0].config, b.samples[0].config);
}

#[test]
fn datasets_and_networks_are_seed_deterministic() {
    assert_eq!(cifar10_like(9, 32, 16), cifar10_like(9, 32, 16));
    let spec = ArchSpec::new(
        (3, 8, 8),
        4,
        vec![
            LayerSpec::conv(4, 3),
            LayerSpec::pool(2),
            LayerSpec::dense(8),
        ],
    )
    .expect("valid");
    let mut na = Network::from_spec(&spec, 3).expect("builds");
    let mut nb = Network::from_spec(&spec, 3).expect("builds");
    let input = Tensor::zeros(2, 3, 8, 8);
    assert_eq!(na.forward(&input), nb.forward(&input));
}

#[test]
fn simulator_outcomes_are_seed_deterministic() {
    let sim = TrainingSimulator::new(DatasetProfile::cifar10());
    let spec = ArchSpec::new(
        (3, 32, 32),
        10,
        vec![
            LayerSpec::conv(40, 3),
            LayerSpec::pool(2),
            LayerSpec::dense(300),
        ],
    )
    .expect("valid");
    let hyper = TrainingHyper::new(0.01, 0.9, 1e-3).expect("valid");
    assert_eq!(
        sim.simulate(&spec, &hyper, 4),
        sim.simulate(&spec, &hyper, 4)
    );
    assert_ne!(
        sim.simulate(&spec, &hyper, 4).final_error,
        sim.simulate(&spec, &hyper, 5).final_error
    );
}
