# Developer entry points. Everything here is also runnable directly with
# cargo; the Makefile just names the standard bundles.

.PHONY: all build test check fmt clippy analyze sarif fix bench clean

all: build test check

build:
	cargo build --workspace --release

test:
	cargo test --workspace

# The full lint gate: formatting, clippy with the workspace deny set, the
# custom static-analysis pass (determinism + numerics + unit invariants,
# DESIGN.md §6a) with a SARIF artifact, then the test suite.
check: fmt clippy sarif test

fmt:
	cargo fmt --all -- --check

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

analyze:
	cargo run -p hyperpower-analyze

# Same gate as `analyze`, but also leaves a code-scanning artifact behind.
sarif:
	cargo run -p hyperpower-analyze -- --format sarif > analyze-results.sarif

# Mechanical cleanups: formatting, clippy's machine-applicable suggestions,
# and the analyzer's unit-suffix/allow-marker rewrites.
fix:
	cargo fmt --all
	cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged -- -D warnings
	cargo run -p hyperpower-analyze -- --fix

bench:
	cargo bench --workspace

clean:
	cargo clean
