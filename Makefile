# Developer entry points. Everything here is also runnable directly with
# cargo; the Makefile just names the standard bundles.

.PHONY: all build test check clippy analyze bench clean

all: build test check

build:
	cargo build --workspace --release

test:
	cargo test --workspace

# The full lint gate: clippy with the workspace deny set, then the custom
# static-analysis pass (determinism + numerics invariants, DESIGN.md §6a).
check: clippy analyze

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

analyze:
	cargo run -p hyperpower-analyze

bench:
	cargo bench --workspace

clean:
	cargo clean
