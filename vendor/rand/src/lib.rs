//! Offline stand-in for the `rand` crate.
//!
//! The HyperPower workspace is built in hermetic environments with no
//! crates.io access, so this vendored crate implements exactly the
//! deterministic subset of the `rand` 0.10 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, portable PRNG (xoshiro256++ seeded via
//!   SplitMix64),
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point,
//! * [`Rng`] / [`RngExt`] — `next_u64`, `random`, `random_range`,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! **Deliberately absent:** `thread_rng`, `from_os_rng`, `from_entropy` and
//! every other nondeterministic seeding path. All randomness in the
//! workspace must flow from explicit seeds (see `DESIGN.md`, rule R1 of the
//! static-analysis layer); omitting the OS-entropy constructors makes the
//! violation a compile error rather than a lint finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. The minimal core trait: everything else is
/// derived from `next_u64`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws one value uniformly from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range {low}..{high}");
        let v = low + unit_f64(rng) * (high - low);
        // Guard the rare rounding case where low + u*(high-low) == high.
        if v < high {
            v
        } else {
            low
        }
    }

    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "random_range: empty range {low}..={high}");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }

    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty integer range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling to avoid modulo bias.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty integer range");
                if low as i128 == <$t>::MIN as i128 && high as i128 == <$t>::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, low, (high as i128 + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// A type with a canonical "standard" distribution: uniform over all values
/// for integers/bools, uniform on `[0, 1)` for floats.
pub trait StandardUniform: Sized {
    /// Draws one value from the standard distribution.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardUniform for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one value from the type's standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of RNGs from explicit seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, expanding it into full generator
    /// state. Identical seeds always produce identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not cryptographically secure — it backs simulations and sampling,
    /// where portability and speed matter and adversarial prediction does
    /// not. The stream for a given seed is stable across platforms and
    /// releases, which the determinism test-suite relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_inclusive(rng, 0usize, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::SampleUniform::sample_half_open(rng, 0usize, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(super::Rng::next_u64(&mut a), super::Rng::next_u64(&mut b));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| super::Rng::next_u64(&mut a)).collect();
        let vb: Vec<u64> = (0..4).map(|_| super::Rng::next_u64(&mut b)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
            let x: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v: usize = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "not all values of 0..5 drawn");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}/10000 at p=0.25");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
