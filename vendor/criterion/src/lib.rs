//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches compile against
//! (`criterion_group!`, `criterion_main!`, [`Criterion::bench_function`],
//! [`Bencher::iter`]) with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Good enough to smoke-run benches and
//! spot order-of-magnitude regressions in hermetic environments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver, as handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility; the stand-in uses a fixed iteration
    /// count, so the requested sample size is ignored.
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Runs `f` as a named benchmark and prints a one-line timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.iterations
        };
        println!(
            "bench {id:<48} {:>12.3?}/iter ({} iters)",
            per_iter, bencher.iterations
        );
        self
    }
}

/// Measures closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over a small fixed number of iterations (after one
    /// warm-up call), accumulating wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        const ITERS: u32 = 10;
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += ITERS;
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
///
/// Both criterion invocation forms compile: the positional
/// `criterion_group!(name, target, ...)` shorthand and the configured
/// `criterion_group! { name = ...; config = ...; targets = ... }` form
/// (the config expression is evaluated and used as the driver).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| 1u64 + 1));
    }

    criterion_group!(trivial_group, trivial_bench);

    #[test]
    fn group_runs_without_panicking() {
        trivial_group();
    }

    #[test]
    fn bencher_accumulates_iterations() {
        let mut c = Criterion::default();
        c.bench_function("counts", |b| b.iter(|| std::hint::black_box(3 * 3)));
    }
}
