//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the HyperPower workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], and the [`proptest!`]/[`prop_assert!`]
//! macro family. Cases are generated from a per-test deterministic seed
//! (derived from the test's name), so failures are reproducible without an
//! external seed file.
//!
//! **Deliberately simplified:** no shrinking, no persistence, no
//! `ProptestConfig`. A failing case panics with its case index; rerunning
//! the test regenerates the identical sequence. The default case count is
//! 64, overridable with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies while generating a case.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for one test run from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The underlying seeded RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying up to 1000 times.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive cases",
            self.whence
        );
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A length specification for [`vec`]: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy that picks uniformly from the given non-empty `Vec`.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().random_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Runtime support used by the [`proptest!`] macro expansion.
pub mod runner {
    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-test seed: FNV-1a over the test's name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The commonly imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    // Mirrors upstream proptest's prelude, which re-exports the crate
    // itself as `prop` so paths like `prop::sample::select` resolve.
    pub use crate as prop;
    pub use crate::{collection, sample};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property; failure panics with the case's
/// diagnostic context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn` runs its body for many generated
/// cases, with inputs drawn from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let seed = $crate::runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let cases = $crate::runner::case_count();
                for case in 0..cases {
                    let mut __proptest_rng =
                        $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 0.0f64..1.0, n in 2usize..8) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((2..8).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(-1.0f64..1.0, 3usize..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn tuple_and_map_compose((a, b) in (0u32..10, 0u32..10).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 10);
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        let strat = (1usize..5).prop_flat_map(|n| collection::vec(0.0f64..1.0, n));
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let strat = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            crate::runner::seed_for("a::b"),
            crate::runner::seed_for("a::b")
        );
        assert_ne!(
            crate::runner::seed_for("a::b"),
            crate::runner::seed_for("a::c")
        );
    }
}
